//! The DEANNA-style eager joint-disambiguation baseline.
//!
//! DEANNA \[29\] resolves all mapping ambiguity **during question
//! understanding**: it builds a disambiguation graph whose nodes are
//! (phrase, candidate) pairs, scores pairwise *semantic coherence* between
//! candidates against the knowledge graph, and solves a joint integer
//! linear program selecting one candidate per phrase. Only then does it
//! emit (and evaluate) a single SPARQL query.
//!
//! This implementation keeps the question-analysis substrate identical to
//! gAnswer's (same dependency parser, relation extraction, linker and
//! paraphrase dictionary) so the measured difference is the
//! disambiguation strategy itself:
//!
//! * the joint selection is solved **exactly** by branch-and-bound over
//!   the candidate product space — exponential in the number of phrases,
//!   matching the NP-hard ILP of the paper's Table 12;
//! * coherence weights are computed on the fly with graph probes (the
//!   expensive part the paper highlights);
//! * evaluation runs the one selected SPARQL query; if it returns empty —
//!   because the jointly "coherent" mapping has no data support — the
//!   question simply fails, with no lazy fallback.

use gqa_core::arguments::ArgumentRules;
use gqa_core::mapping::{
    map_query, LiteralIndex, MappedQuery, MappingError, MappingOptions, VertexBinding,
};
use gqa_core::sqg::{self, SqgOptions};
use gqa_core::{coref, embedding};
use gqa_linker::Linker;
use gqa_nlp::question::QuestionAnalysis;
use gqa_nlp::DependencyParser;
use gqa_paraphrase::dict::ParaphraseDict;
use gqa_rdf::paths::{Dir, PathPattern};
use gqa_rdf::schema::Schema;
use gqa_rdf::{Store, Term};
use gqa_sparql::ast::{Query, QueryForm, TermAst, TriplePatternAst};
use std::time::{Duration, Instant};

/// Baseline configuration.
#[derive(Clone, Copy, Debug)]
pub struct DeannaConfig {
    /// Cap on candidates considered per phrase (DEANNA prunes too).
    pub max_candidates: usize,
    /// Weight of a coherence point relative to log-confidence units.
    pub coherence_weight: f64,
}

impl Default for DeannaConfig {
    fn default() -> Self {
        DeannaConfig { max_candidates: 6, coherence_weight: 1.0 }
    }
}

/// Outcome of one baseline run.
#[derive(Clone, Debug)]
pub struct DeannaResponse {
    /// Answer texts (IRI labels / literal lexical forms).
    pub answers: Vec<String>,
    /// Boolean verdict for yes/no questions.
    pub boolean: Option<bool>,
    /// The single SPARQL query the joint disambiguation produced.
    pub sparql: Option<String>,
    /// Question-understanding time — includes candidate generation, all
    /// coherence probes and the joint optimization (Figure 6's bar).
    pub understanding_time: Duration,
    /// SPARQL evaluation time.
    pub evaluation_time: Duration,
    /// Number of pairwise coherence probes executed.
    pub coherence_probes: usize,
    /// Number of joint assignments explored by branch-and-bound.
    pub assignments_explored: usize,
}

impl DeannaResponse {
    /// Total response time.
    pub fn total_time(&self) -> Duration {
        self.understanding_time + self.evaluation_time
    }

    fn empty(understanding_time: Duration) -> Self {
        DeannaResponse {
            answers: Vec::new(),
            boolean: None,
            sparql: None,
            understanding_time,
            evaluation_time: Duration::ZERO,
            coherence_probes: 0,
            assignments_explored: 0,
        }
    }
}

/// The baseline system.
pub struct Deanna<'s> {
    store: &'s Store,
    #[allow(dead_code)] // kept for API symmetry with GAnswer
    schema: Schema,
    linker: Linker,
    literals: LiteralIndex,
    dict: ParaphraseDict,
    parser: DependencyParser,
    /// Configuration.
    pub config: DeannaConfig,
}

/// One selectable unit of the disambiguation graph: a vertex or an edge of
/// the query structure with its candidate list.
enum Unit {
    Vertex { index: usize, cands: Vec<(gqa_rdf::TermId, f64, bool)> },
    Edge { index: usize, cands: Vec<(PathPattern, f64)> },
}

impl<'s> Deanna<'s> {
    /// Build the baseline over the same substrates as the main system.
    pub fn new(store: &'s Store, dict: ParaphraseDict, config: DeannaConfig) -> Self {
        let schema = Schema::new(store);
        let mut linker = Linker::new(store, &schema);
        linker.set_max_candidates(config.max_candidates);
        let literals = LiteralIndex::new(store);
        Deanna { store, schema, linker, literals, dict, parser: DependencyParser::new(), config }
    }

    /// Answer a question: eager joint disambiguation, then one SPARQL.
    pub fn answer(&self, question: &str) -> DeannaResponse {
        let t0 = Instant::now();

        // --- shared question analysis (same as gAnswer) -------------------
        let Some(tree) = self.parser.parse(question) else {
            return DeannaResponse::empty(t0.elapsed());
        };
        let analysis = QuestionAnalysis::of(&tree);
        if analysis.aggregation.is_some() {
            // DEANNA has no aggregation support either.
            return DeannaResponse::empty(t0.elapsed());
        }
        let embeddings = embedding::find_embeddings(&tree, &self.dict);
        let mut relations: Vec<_> = embeddings
            .iter()
            .filter_map(|e| gqa_core::arguments::find_arguments(&tree, e, ArgumentRules::all()))
            .collect();
        coref::resolve(&tree, &mut relations);
        // DEANNA generates its query triples strictly from detected
        // phrases: no implicit/wildcard edges, no target-only fallback.
        let graph = sqg::build(&tree, &relations, &analysis, SqgOptions { implicit_edges: false });
        if relations.is_empty() {
            return DeannaResponse::empty(t0.elapsed());
        }
        let mut mapped = match map_query(
            &graph,
            &self.linker,
            &self.literals,
            &self.dict,
            &MappingOptions::default(),
        ) {
            Ok(m) => m,
            Err(MappingError::UnlinkableMention { .. })
            | Err(MappingError::UnknownRelation { .. }) => {
                return DeannaResponse::empty(t0.elapsed());
            }
        };
        // §7: "existing systems, such as [33] and DEANNA [29], only
        // consider mapping the relation phrase to single predicates" —
        // multi-hop paraphrase paths are unavailable to this baseline.
        for e in &mut mapped.edges {
            e.list.retain(|(p, _)| p.len() == 1);
            if e.list.is_empty() && e.wildcard.is_none() {
                return DeannaResponse::empty(t0.elapsed());
            }
        }

        // --- disambiguation graph + joint ILP-style selection --------------
        let mut probes = 0usize;
        let mut explored = 0usize;
        let selection = self.joint_disambiguate(&mapped, &mut probes, &mut explored);
        let understanding_time = t0.elapsed();
        let Some(selection) = selection else {
            let mut r = DeannaResponse::empty(understanding_time);
            r.coherence_probes = probes;
            r.assignments_explored = explored;
            return r;
        };

        // --- generate the single SPARQL query and evaluate -----------------
        let t1 = Instant::now();
        let target = mapped.sqg.target();
        let is_boolean = target.is_none();
        let queries = self.generate_sparql(&mapped, &selection, target);
        let mut answers: Vec<String> = Vec::new();
        let mut boolean = is_boolean.then_some(false);
        for q in &queries {
            let rs = gqa_sparql::evaluate(self.store, q);
            if let Some(b) = rs.boolean {
                if b {
                    boolean = Some(true);
                }
            }
            for row in &rs.rows {
                let text = self.store.term(row[0]).label().into_owned();
                if !answers.contains(&text) {
                    answers.push(text);
                }
            }
        }
        DeannaResponse {
            answers,
            boolean,
            sparql: queries.first().map(|q| q.to_string()),
            understanding_time,
            evaluation_time: t1.elapsed(),
            coherence_probes: probes,
            assignments_explored: explored,
        }
    }

    /// Exact joint selection over the candidate product space: maximize
    /// Σ log-confidence + coherence. Branch-and-bound with an optimistic
    /// bound (best remaining unary scores + max coherence).
    fn joint_disambiguate(
        &self,
        q: &MappedQuery,
        probes: &mut usize,
        explored: &mut usize,
    ) -> Option<Vec<Option<usize>>> {
        let mut units: Vec<Unit> = Vec::new();
        for (i, v) in q.vertices.iter().enumerate() {
            if let VertexBinding::Candidates(c) = v {
                let cands = c
                    .iter()
                    .take(self.config.max_candidates)
                    .map(|x| (x.id, x.confidence, x.is_class))
                    .collect();
                units.push(Unit::Vertex { index: i, cands });
            }
        }
        for (i, e) in q.edges.iter().enumerate() {
            if e.wildcard.is_none() {
                let cands = e.list.iter().take(self.config.max_candidates).cloned().collect();
                units.push(Unit::Edge { index: i, cands });
            }
        }
        if units.is_empty() {
            // Nothing ambiguous: empty selection.
            return Some(vec![None; q.vertices.len() + q.edges.len()]);
        }

        // Branch and bound over unit choices.
        let n = units.len();
        let mut choice = vec![0usize; n];
        let mut best_choice: Option<Vec<usize>> = None;
        let mut best_score = f64::NEG_INFINITY;
        // Optimistic per-unit max unary score.
        let unary_max: Vec<f64> = units
            .iter()
            .map(|u| match u {
                Unit::Vertex { cands, .. } => {
                    cands.iter().map(|c| c.1.max(1e-9).ln()).fold(f64::NEG_INFINITY, f64::max)
                }
                Unit::Edge { cands, .. } => {
                    cands.iter().map(|c| c.1.max(1e-9).ln()).fold(f64::NEG_INFINITY, f64::max)
                }
            })
            .collect();
        let coh_w = self.config.coherence_weight;

        // Recursive exploration (explicit because of borrow rules).
        #[allow(clippy::too_many_arguments)]
        fn explore(
            this: &Deanna<'_>,
            q: &MappedQuery,
            units: &[Unit],
            unary_max: &[f64],
            coh_w: f64,
            depth: usize,
            choice: &mut Vec<usize>,
            score_so_far: f64,
            best_score: &mut f64,
            best_choice: &mut Option<Vec<usize>>,
            probes: &mut usize,
            explored: &mut usize,
        ) {
            if depth == units.len() {
                *explored += 1;
                if score_so_far > *best_score {
                    *best_score = score_so_far;
                    *best_choice = Some(choice.clone());
                }
                return;
            }
            // Optimistic bound: every remaining unit takes its best unary
            // score plus full coherence with every later unit.
            let remaining: f64 = unary_max[depth..].iter().sum::<f64>()
                + coh_w * ((units.len() - depth) * (units.len() - depth)) as f64;
            if score_so_far + remaining <= *best_score {
                return;
            }
            let k = match &units[depth] {
                Unit::Vertex { cands, .. } => cands.len(),
                Unit::Edge { cands, .. } => cands.len(),
            };
            for c in 0..k {
                choice[depth] = c;
                let unary = match &units[depth] {
                    Unit::Vertex { cands, .. } => cands[c].1.max(1e-9).ln(),
                    Unit::Edge { cands, .. } => cands[c].1.max(1e-9).ln(),
                };
                // Pairwise coherence with all previously chosen units.
                let mut coherence = 0.0;
                for d in 0..depth {
                    coherence +=
                        coh_w * this.coherence(q, &units[d], choice[d], &units[depth], c, probes);
                }
                explore(
                    this,
                    q,
                    units,
                    unary_max,
                    coh_w,
                    depth + 1,
                    choice,
                    score_so_far + unary + coherence,
                    best_score,
                    best_choice,
                    probes,
                    explored,
                );
            }
        }
        explore(
            self,
            q,
            &units,
            &unary_max,
            coh_w,
            0,
            &mut choice,
            0.0,
            &mut best_score,
            &mut best_choice,
            probes,
            explored,
        );

        let picked = best_choice?;
        // Expand to a per-vertex/per-edge selection table.
        let mut selection = vec![None; q.vertices.len() + q.edges.len()];
        for (u, &c) in units.iter().zip(&picked) {
            match u {
                Unit::Vertex { index, .. } => selection[*index] = Some(c),
                Unit::Edge { index, .. } => selection[q.vertices.len() + *index] = Some(c),
            }
        }
        Some(selection)
    }

    /// Pairwise semantic coherence of two chosen candidates, probed against
    /// the RDF graph (the costly on-the-fly computation the paper calls
    /// out). Entity–predicate: 1 if the entity touches the predicate;
    /// entity–entity: 1 if adjacent; predicate–predicate: 1 if they share a
    /// subject somewhere.
    fn coherence(
        &self,
        _q: &MappedQuery,
        a: &Unit,
        ca: usize,
        b: &Unit,
        cb: usize,
        probes: &mut usize,
    ) -> f64 {
        *probes += 1;
        match (a, b) {
            (Unit::Vertex { cands: va, .. }, Unit::Vertex { cands: vb, .. }) => {
                let (ua, _, class_a) = va[ca];
                let (ub, _, class_b) = vb[cb];
                if class_a || class_b {
                    return 0.5; // classes cohere weakly with everything
                }
                let adjacent = self.store.out_edges(ua).any(|t| t.o == ub)
                    || self.store.out_edges(ub).any(|t| t.o == ua);
                if adjacent {
                    1.0
                } else {
                    0.0
                }
            }
            (Unit::Vertex { cands, .. }, Unit::Edge { cands: ec, .. })
            | (Unit::Edge { cands: ec, .. }, Unit::Vertex { cands, .. }) => {
                let (u, _, is_class) = match a {
                    Unit::Vertex { cands, .. } => cands[ca],
                    _ => cands[cb],
                };
                let pattern = match a {
                    Unit::Edge { cands, .. } => &cands[ca].0,
                    _ => &ec[cb].0,
                };
                if is_class {
                    return 0.5;
                }
                let first = pattern.0[0].pred;
                let last = pattern.0[pattern.len() - 1].pred;
                let touches = self.store.out_edges_with(u, first).next().is_some()
                    || self.store.in_edges_with(u, first).next().is_some()
                    || self.store.out_edges_with(u, last).next().is_some()
                    || self.store.in_edges_with(u, last).next().is_some();
                if touches {
                    1.0
                } else {
                    0.0
                }
            }
            (Unit::Edge { cands: ea, .. }, Unit::Edge { cands: eb, .. }) => {
                let pa = ea[ca].0 .0[0].pred;
                let pb = eb[cb].0 .0[0].pred;
                // Do the two predicates co-occur on any subject?
                let shares = self
                    .store
                    .with_predicate(pa)
                    .take(500)
                    .any(|t| self.store.out_edges_with(t.s, pb).next().is_some());
                if shares {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Emit the SPARQL of the selected mapping. Since triple orientation is
    /// not part of the selection, all orientation combinations are emitted
    /// (bounded: 2^|E| with |E| ≤ 3 in the workload).
    fn generate_sparql(
        &self,
        q: &MappedQuery,
        selection: &[Option<usize>],
        target: Option<usize>,
    ) -> Vec<Query> {
        let nv = q.vertices.len();
        let node_ast = |vi: usize| -> TermAst {
            match (&q.vertices[vi], selection[vi]) {
                (VertexBinding::Candidates(c), Some(k)) if !c[k].is_class => {
                    match self.store.term(c[k].id) {
                        Term::Iri(s) => TermAst::Iri(s.to_string()),
                        lit => TermAst::Literal(lit.clone()),
                    }
                }
                // Classes and variables stay variables; classes add a type
                // constraint below.
                _ => TermAst::Var(format!("v{vi}")),
            }
        };

        // Base patterns: type constraints for class-selected vertices and
        // class-constrained variables.
        let mut base: Vec<TriplePatternAst> = Vec::new();
        for (vi, v) in q.vertices.iter().enumerate() {
            let class = match (v, selection[vi]) {
                (VertexBinding::Candidates(c), Some(k)) if c[k].is_class => Some(c[k].id),
                (VertexBinding::Variable { classes }, _) => classes.first().map(|&(c, _)| c),
                _ => None,
            };
            if let Some(c) = class {
                base.push(TriplePatternAst {
                    s: TermAst::Var(format!("v{vi}")),
                    p: TermAst::Iri("rdf:type".into()),
                    o: TermAst::Iri(self.store.term(c).as_iri().unwrap_or("?").to_owned()),
                });
            }
        }

        // Edge chains, parametrized by orientation bits.
        let oriented_edges: Vec<(usize, PathPattern)> = q
            .sqg
            .edges
            .iter()
            .enumerate()
            .map(|(ei, _)| {
                let pattern = match (&q.edges[ei].wildcard, selection[nv + ei]) {
                    (Some(_), _) | (_, None) => None,
                    (None, Some(k)) => Some(q.edges[ei].list[k].0.clone()),
                };
                (ei, pattern.unwrap_or_else(|| PathPattern(Box::new([]))))
            })
            .collect();
        let real_edges: Vec<&(usize, PathPattern)> =
            oriented_edges.iter().filter(|(_, p)| !p.is_empty()).collect();

        // Triple orientation is not part of the joint selection; DEANNA-style
        // systems emit the orientation alternatives as one UNION query.
        let combos = 1usize << real_edges.len().min(6);
        let mut union_groups: Vec<Vec<TriplePatternAst>> = Vec::new();
        for bits in 0..combos {
            let mut group: Vec<TriplePatternAst> = Vec::new();
            for (bi, (ei, pattern)) in real_edges.iter().enumerate() {
                let e = &q.sqg.edges[*ei];
                let p = if bits >> bi & 1 == 1 { pattern.reversed() } else { pattern.clone() };
                let mut prev = node_ast(e.from);
                for (k, step) in p.0.iter().enumerate() {
                    let next = if k + 1 == p.len() {
                        node_ast(e.to)
                    } else {
                        TermAst::Var(format!("i{ei}_{k}_{bits}"))
                    };
                    let pred =
                        TermAst::Iri(self.store.term(step.pred).as_iri().unwrap_or("?").to_owned());
                    let (s, o) = match step.dir {
                        Dir::Forward => (prev.clone(), next.clone()),
                        Dir::Backward => (next.clone(), prev.clone()),
                    };
                    group.push(TriplePatternAst { s, p: pred, o });
                    prev = next;
                }
            }
            if !group.is_empty() && !union_groups.contains(&group) {
                union_groups.push(group);
            }
        }
        // Wildcard edges: a free-predicate triple in the required part.
        let mut patterns = base;
        for (ei, e) in q.sqg.edges.iter().enumerate() {
            if q.edges[ei].wildcard.is_some() {
                patterns.push(TriplePatternAst {
                    s: node_ast(e.from),
                    p: TermAst::Var(format!("wp{ei}")),
                    o: node_ast(e.to),
                });
            }
        }
        if patterns.is_empty() && union_groups.is_empty() {
            return Vec::new();
        }
        let form = match target {
            Some(t) => QueryForm::Select { vars: vec![format!("v{t}")], distinct: true },
            None => QueryForm::Ask,
        };
        let union_groups = if union_groups.len() > 1 {
            union_groups
        } else {
            // A single orientation needs no UNION wrapper.
            for g in union_groups {
                patterns.extend(g);
            }
            Vec::new()
        };
        vec![Query {
            form,
            patterns,
            union_groups,
            filters: Vec::new(),
            order_by: None,
            limit: None,
            offset: 0,
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqa_datagen::minidbp::mini_dbpedia;
    use gqa_datagen::patty::{curated_literal_mappings, mini_phrase_dataset};
    use gqa_paraphrase::miner::{mine, MinerConfig};
    use gqa_paraphrase::ParaMapping;

    fn system(store: &Store) -> Deanna<'_> {
        let mut dict = mine(store, &mini_phrase_dataset(), &MinerConfig::default());
        for (phrase, pred) in curated_literal_mappings() {
            if let Some(p) = store.iri(pred) {
                dict.insert(
                    phrase.to_owned(),
                    vec![ParaMapping { path: PathPattern::single(p), tfidf: 1.0, confidence: 1.0 }],
                );
            }
        }
        Deanna::new(store, dict, DeannaConfig::default())
    }

    #[test]
    fn answers_an_unambiguous_question() {
        let store = mini_dbpedia();
        let sys = system(&store);
        let r = sys.answer("Who is the mayor of Berlin?");
        assert_eq!(r.answers, vec!["Klaus Wowereit"], "{:?}", r.sparql);
        assert!(r.sparql.is_some());
    }

    #[test]
    fn joint_disambiguation_does_probe_work() {
        let store = mini_dbpedia();
        let sys = system(&store);
        let r = sys.answer("Who was married to an actor that played in Philadelphia?");
        assert!(r.coherence_probes > 0, "{r:?}");
        assert!(r.assignments_explored > 0, "{r:?}");
    }

    #[test]
    fn boolean_questions() {
        let store = mini_dbpedia();
        let sys = system(&store);
        let yes = sys.answer("Is Michelle Obama the wife of Barack Obama?");
        assert_eq!(yes.boolean, Some(true), "{:?}", yes.sparql);
    }

    #[test]
    fn unanswerable_questions_return_empty() {
        let store = mini_dbpedia();
        let sys = system(&store);
        let r = sys.answer("In which UK city are the headquarters of the MI6?");
        assert!(r.answers.is_empty());
        let agg = sys.answer("How many companies are in Munich?");
        assert!(agg.answers.is_empty(), "DEANNA cannot aggregate either");
    }

    #[test]
    fn timings_cover_both_stages() {
        let store = mini_dbpedia();
        let sys = system(&store);
        let r = sys.answer("Who founded Intel?");
        assert!(r.total_time() >= r.understanding_time);
        assert!(!r.answers.is_empty(), "{:?}", r.sparql);
    }
}
