//! Subgraph matching of `Q^S` over the RDF graph (Definition 3) with
//! match scoring (Definition 6) and neighborhood pruning (§4.2.2).
//!
//! The search is a candidate-ordered backtracking (VF2-style exploration,
//! as Algorithm 3's step 9 prescribes): vertices with explicit candidate
//! lists are bound first, free variables are *derived* by walking candidate
//! predicates/paths from already-bound neighbors. Per Definition 3
//! condition 3, an edge is satisfied by a candidate predicate in **either
//! orientation**; predicate paths are tried both as mined and reversed.

use crate::mapping::{EdgeCandidates, MappedQuery, VertexBinding, VertexCandidate};
use gqa_fault::Exec;
use gqa_rdf::paths::{connects_with, instantiate_from_with, PathPattern};
use gqa_rdf::schema::Schema;
use gqa_rdf::{Store, TermId, Triple};
use rustc_hash::{FxHashMap, FxHashSet};

/// One subgraph match of `Q^S`.
#[derive(Clone, Debug, PartialEq)]
pub struct Match {
    /// Binding per `Q^S` vertex.
    pub bindings: Vec<TermId>,
    /// Confidence per vertex (`δ(arg_i, u_i)`, 1.0 for free variables).
    pub vertex_conf: Vec<f64>,
    /// The satisfying pattern and confidence per edge.
    pub edge_used: Vec<(PathPattern, f64)>,
    /// The Definition-6 score: `Σ log δ(arg, u) + Σ log δ(rel, P)`.
    pub score: f64,
}

/// Matcher limits and toggles.
#[derive(Clone, Copy, Debug)]
pub struct MatcherConfig {
    /// Stop after this many matches.
    pub max_matches: usize,
    /// Apply neighborhood-based candidate pruning (§4.2.2).
    pub neighborhood_pruning: bool,
    /// Cap on instances enumerated per class candidate.
    pub max_class_instances: usize,
    /// Cap on bindings derived per variable expansion.
    pub max_expansions: usize,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        MatcherConfig {
            max_matches: 10_000,
            neighborhood_pruning: true,
            max_class_instances: 50_000,
            max_expansions: 100_000,
        }
    }
}

/// Find every match (up to `cfg.max_matches`), optionally restricting one
/// vertex to a single candidate (the TA cursor hook).
pub fn find_matches(
    store: &Store,
    schema: &Schema,
    q: &MappedQuery,
    cfg: &MatcherConfig,
    restriction: Option<(usize, crate::mapping::VertexCandidate)>,
) -> Vec<Match> {
    find_matches_with(store, schema, q, cfg, restriction, &Exec::none())
}

/// [`find_matches`] under an execution context: the backtracking search
/// checks the frontier budget and deadline at every candidate tried and
/// charges approximate bytes per emitted match, so exhaustion truncates
/// the search to a partial (but valid) match set instead of unwinding.
pub fn find_matches_with(
    store: &Store,
    schema: &Schema,
    q: &MappedQuery,
    cfg: &MatcherConfig,
    restriction: Option<(usize, crate::mapping::VertexCandidate)>,
    exec: &Exec,
) -> Vec<Match> {
    let n = q.sqg.vertices.len();
    if n == 0 {
        return Vec::new();
    }
    let pruned;
    let q = if cfg.neighborhood_pruning {
        pruned = prune(store, q);
        &pruned
    } else {
        q
    };

    let mut state = State {
        store,
        schema,
        q,
        cfg,
        bound: vec![None; n],
        out: Vec::new(),
        seen: FxHashSet::default(),
        restriction,
        exec,
    };
    state.search();
    let mut out = state.out;
    out.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
    out
}

struct State<'a> {
    store: &'a Store,
    schema: &'a Schema,
    q: &'a MappedQuery,
    cfg: &'a MatcherConfig,
    bound: Vec<Option<(TermId, f64)>>,
    out: Vec<Match>,
    seen: FxHashSet<Vec<TermId>>,
    restriction: Option<(usize, crate::mapping::VertexCandidate)>,
    exec: &'a Exec,
}

impl State<'_> {
    fn search(&mut self) {
        if self.out.len() >= self.cfg.max_matches || self.exec.should_stop() {
            return;
        }
        let Some(v) = self.next_vertex() else {
            self.emit();
            return;
        };
        let candidates = self.candidate_bindings(v);
        for (id, conf) in candidates {
            if self.out.len() >= self.cfg.max_matches {
                return;
            }
            // Each candidate tried is one unit of search frontier.
            if !self.exec.charge_frontier(1) {
                return;
            }
            if !self.edges_ok(v, id) {
                continue;
            }
            self.bound[v] = Some((id, conf));
            self.search();
            self.bound[v] = None;
        }
    }

    /// Vertex selection: (1) a Candidates vertex adjacent to a bound one,
    /// (2) any Candidates vertex, (3) a variable adjacent to a bound one,
    /// (4) a class-constrained variable, (5) any variable.
    fn next_vertex(&self) -> Option<usize> {
        let n = self.q.sqg.vertices.len();
        let unbound: Vec<usize> = (0..n).filter(|&i| self.bound[i].is_none()).collect();
        if unbound.is_empty() {
            return None;
        }
        let adjacent_bound = |i: usize| {
            self.q
                .sqg
                .incident(i)
                .any(|(_, e)| self.bound[if e.from == i { e.to } else { e.from }].is_some())
        };
        let list_len = |i: usize| match &self.q.vertices[i] {
            VertexBinding::Candidates(c) => c.len(),
            VertexBinding::Variable { .. } => usize::MAX,
        };
        // (1)/(2)
        let fixed: Option<usize> = unbound
            .iter()
            .copied()
            .filter(|&i| !self.q.vertices[i].is_variable())
            .min_by_key(|&i| (!adjacent_bound(i) as usize, list_len(i)));
        if let Some(i) = fixed {
            // Prefer an adjacent one if the chosen is disconnected but an
            // adjacent variable exists? Keep simple: fixed first.
            if adjacent_bound(i)
                || !unbound.iter().any(|&j| self.q.vertices[j].is_variable() && adjacent_bound(j))
            {
                return Some(i);
            }
        }
        // (3)
        if let Some(i) =
            unbound.iter().copied().find(|&i| self.q.vertices[i].is_variable() && adjacent_bound(i))
        {
            return Some(i);
        }
        if let Some(i) = fixed {
            return Some(i);
        }
        // (4)
        if let Some(i) = unbound.iter().copied().find(|&i| {
            matches!(&self.q.vertices[i], VertexBinding::Variable { classes } if !classes.is_empty())
        }) {
            return Some(i);
        }
        // (5) — unconstrained, disconnected variable: unenumerable; picking
        // it yields no candidates and the query fails, which is correct.
        unbound.first().copied()
    }

    fn candidate_bindings(&self, v: usize) -> Vec<(TermId, f64)> {
        if let Some((rv, cand)) = &self.restriction {
            if *rv == v {
                return self.expand_candidate(cand.id, cand.confidence, cand.is_class);
            }
        }
        match &self.q.vertices[v] {
            VertexBinding::Candidates(list) => {
                let mut out = Vec::new();
                for c in list {
                    out.extend(self.expand_candidate(c.id, c.confidence, c.is_class));
                    if out.len() >= self.cfg.max_expansions {
                        break;
                    }
                }
                out
            }
            VertexBinding::Variable { classes } => {
                // Derive from a bound neighbor if possible.
                let gen_edge =
                    self.q.sqg.incident(v).find(|(_, e)| {
                        self.bound[if e.from == v { e.to } else { e.from }].is_some()
                    });
                let mut cands: Vec<(TermId, f64)> = match gen_edge {
                    Some((ei, e)) => {
                        let u = self.bound[if e.from == v { e.to } else { e.from }]
                            .expect("neighbor bound")
                            .0;
                        self.derive_via_edge(u, &self.q.edges[ei])
                    }
                    None => {
                        // No bound neighbor: enumerate class instances.
                        let mut out = Vec::new();
                        for &(c, _) in classes {
                            for &inst in self
                                .schema
                                .instances_of(c)
                                .iter()
                                .take(self.cfg.max_class_instances)
                            {
                                out.push((inst, 1.0));
                            }
                        }
                        out
                    }
                };
                // Class constraints (Def. 3 cond. 2).
                if !classes.is_empty() {
                    cands.retain(|(id, _)| {
                        classes.iter().any(|&(c, _)| self.schema.has_type(*id, c))
                    });
                    // Vertex confidence: the best matching class constraint.
                    for (id, conf) in &mut cands {
                        *conf = classes
                            .iter()
                            .filter(|&&(c, _)| self.schema.has_type(*id, c))
                            .map(|&(_, cc)| cc)
                            .fold(0.0, f64::max);
                    }
                }
                cands.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                cands.dedup_by_key(|(id, _)| *id);
                cands.truncate(self.cfg.max_expansions);
                cands
            }
        }
    }

    /// A Candidates-list entry: entities/literals bind directly; classes
    /// bind to their instances (Definition 3 condition 2).
    fn expand_candidate(&self, id: TermId, conf: f64, is_class: bool) -> Vec<(TermId, f64)> {
        if is_class {
            self.schema
                .instances_of(id)
                .iter()
                .take(self.cfg.max_class_instances)
                .map(|&inst| (inst, conf))
                .collect()
        } else {
            vec![(id, conf)]
        }
    }

    /// Bindings reachable from `u` through any candidate pattern of an
    /// edge, in either orientation; literals are valid endpoints of
    /// single-step patterns.
    fn derive_via_edge(&self, u: TermId, e: &EdgeCandidates) -> Vec<(TermId, f64)> {
        let mut out: Vec<(TermId, f64)> = Vec::new();
        let push = |id: TermId, out: &mut Vec<(TermId, f64)>| {
            if !out.iter().any(|(x, _)| *x == id) {
                out.push((id, 1.0));
            }
        };
        if let Some(_wc) = e.wildcard {
            for t in self.store.out_edges(u) {
                push(t.o, &mut out);
            }
            for t in self.store.in_edges(u) {
                push(t.s, &mut out);
            }
            return out;
        }
        for (pattern, _conf) in &e.list {
            if let Some(p) = pattern.as_single_predicate() {
                for o in self.store.objects(u, p) {
                    push(o, &mut out);
                }
                for s in self.store.subjects(p, u) {
                    push(s, &mut out);
                }
            } else if pattern.len() == 1 {
                // Single backward step.
                let p = pattern.0[0].pred;
                for o in self.store.objects(u, p) {
                    push(o, &mut out);
                }
                for s in self.store.subjects(p, u) {
                    push(s, &mut out);
                }
            } else {
                if self.store.term(u).is_iri() {
                    for inst in instantiate_from_with(
                        self.store,
                        u,
                        pattern,
                        self.cfg.max_expansions,
                        self.exec,
                    ) {
                        push(*inst.vertices.last().expect("nonempty"), &mut out);
                    }
                    for inst in instantiate_from_with(
                        self.store,
                        u,
                        &pattern.reversed(),
                        self.cfg.max_expansions,
                        self.exec,
                    ) {
                        push(*inst.vertices.last().expect("nonempty"), &mut out);
                    }
                }
            }
            if out.len() >= self.cfg.max_expansions {
                break;
            }
        }
        out
    }

    /// Do all edges between `v` (bound to `id`) and already-bound vertices
    /// hold?
    fn edges_ok(&self, v: usize, id: TermId) -> bool {
        for (ei, e) in self.q.sqg.incident(v) {
            let other = if e.from == v { e.to } else { e.from };
            let Some((u, _)) = self.bound[other] else { continue };
            if self.satisfy_edge(ei, id, u).is_none() {
                return false;
            }
        }
        true
    }

    /// Best `(pattern, confidence)` satisfying edge `ei` between `a` and
    /// `b` (either orientation), if any.
    fn satisfy_edge(&self, ei: usize, a: TermId, b: TermId) -> Option<(PathPattern, f64)> {
        let e = &self.q.edges[ei];
        if let Some(wc) = e.wildcard {
            // Any single predicate either way.
            let hit = self
                .store
                .out_edges(a)
                .find(|t| t.o == b)
                .or_else(|| self.store.out_edges(b).find(|t| t.o == a));
            return hit.map(|t| (PathPattern::single(t.p), wc));
        }
        for (pattern, conf) in &e.list {
            if pattern.len() == 1 {
                let p = pattern.0[0].pred;
                if self.store.contains(Triple::new(a, p, b))
                    || self.store.contains(Triple::new(b, p, a))
                {
                    return Some((pattern.clone(), *conf));
                }
            } else {
                if !self.store.term(a).is_iri() || !self.store.term(b).is_iri() {
                    continue;
                }
                if connects_with(self.store, a, b, pattern, self.exec).is_some()
                    || connects_with(self.store, a, b, &pattern.reversed(), self.exec).is_some()
                {
                    return Some((pattern.clone(), *conf));
                }
            }
        }
        None
    }

    /// All vertices bound: verify & score (Definition 6).
    fn emit(&mut self) {
        let bindings: Vec<TermId> = self.bound.iter().map(|b| b.expect("all bound").0).collect();
        if self.seen.contains(&bindings) {
            return;
        }
        let vertex_conf: Vec<f64> =
            self.bound.iter().map(|b| b.expect("bound").1.max(1e-9)).collect();
        let mut edge_used = Vec::with_capacity(self.q.sqg.edges.len());
        for (ei, e) in self.q.sqg.edges.iter().enumerate() {
            let a = bindings[e.from];
            let b = bindings[e.to];
            match self.satisfy_edge(ei, a, b) {
                Some(hit) => edge_used.push(hit),
                None => return, // unsatisfied edge: not a match
            }
        }
        let score: f64 = vertex_conf.iter().map(|c| c.ln()).sum::<f64>()
            + edge_used.iter().map(|(_, c)| c.max(1e-9).ln()).sum::<f64>();
        // Approximate bytes this match materializes: ids + confidences +
        // one pattern step per edge, plus struct overhead.
        let approx_bytes = bindings.len() * 16 + edge_used.len() * 48 + 64;
        if !self.exec.charge_bytes(approx_bytes) {
            return;
        }
        self.seen.insert(bindings.clone());
        self.out.push(Match { bindings, vertex_conf, edge_used, score });
    }
}

/// Neighborhood-based pruning (§4.2.2): drop an entity candidate that
/// cannot satisfy the first step of any candidate pattern of some incident
/// edge. Classes and wildcards are left alone.
pub fn prune(store: &Store, q: &MappedQuery) -> MappedQuery {
    let mut out = q.clone();
    for (vi, vb) in out.vertices.iter_mut().enumerate() {
        let VertexBinding::Candidates(list) = vb else { continue };
        list.retain(|c| keep_candidate(store, q, vi, c));
    }
    out
}

/// [`prune`] with the per-candidate checks sharded over `threads` scoped
/// workers. Each candidate's verdict is independent of every other
/// candidate, so the kept set — and hence the returned query — is
/// identical to [`prune`] at any thread count. `threads <= 1` *is*
/// [`prune`].
pub fn prune_sharded(store: &Store, q: &MappedQuery, threads: usize) -> MappedQuery {
    // Flatten every (vertex, candidate) pair into one job list so a single
    // long candidate list still spreads across all workers.
    let jobs: Vec<(usize, usize)> = q
        .vertices
        .iter()
        .enumerate()
        .filter_map(|(vi, vb)| match vb {
            VertexBinding::Candidates(list) => Some((vi, list.len())),
            VertexBinding::Variable { .. } => None,
        })
        .flat_map(|(vi, n)| (0..n).map(move |ci| (vi, ci)))
        .collect();
    let workers = threads.max(1).min(jobs.len().max(1));
    if workers <= 1 {
        return prune(store, q);
    }

    let candidate = |vi: usize, ci: usize| match &q.vertices[vi] {
        VertexBinding::Candidates(list) => &list[ci],
        VertexBinding::Variable { .. } => unreachable!("jobs only index candidate lists"),
    };
    let chunk = jobs.len().div_ceil(workers);
    let mut keep: Vec<bool> = Vec::with_capacity(jobs.len());
    crossbeam::scope(|scope| {
        let handles: Vec<_> = jobs
            .chunks(chunk)
            .map(|js| {
                scope.spawn(move |_| {
                    js.iter()
                        .map(|&(vi, ci)| keep_candidate(store, q, vi, candidate(vi, ci)))
                        .collect::<Vec<bool>>()
                })
            })
            .collect();
        for h in handles {
            keep.extend(h.join().expect("prune worker panicked"));
        }
    })
    .expect("prune scope");

    let verdicts: FxHashMap<(usize, usize), bool> = jobs.into_iter().zip(keep).collect();
    let mut out = q.clone();
    for (vi, vb) in out.vertices.iter_mut().enumerate() {
        let VertexBinding::Candidates(list) = vb else { continue };
        let mut ci = 0usize;
        list.retain(|_| {
            let k = verdicts[&(vi, ci)];
            ci += 1;
            k
        });
    }
    out
}

/// The §4.2.2 neighborhood test for one entity candidate `c` of vertex
/// `vi`: every incident edge must have *some* candidate pattern whose
/// first or last predicate step touches `c`. Classes and wildcard-adjacent
/// vertices are kept liberally. Pure given immutable inputs — the sharded
/// pruner calls it from worker threads.
fn keep_candidate(store: &Store, q: &MappedQuery, vi: usize, c: &VertexCandidate) -> bool {
    if c.is_class {
        return true;
    }
    q.sqg.incident(vi).all(|(ei, _)| {
        let e = &q.edges[ei];
        if e.wildcard.is_some() {
            return store.degree(c.id) > 0 || store.term(c.id).is_literal();
        }
        e.list.iter().any(|(pattern, _)| {
            let first = pattern.0[0].pred;
            let last = pattern.0[pattern.len() - 1].pred;
            has_incident_pred(store, c.id, first) || has_incident_pred(store, c.id, last)
        })
    })
}

fn has_incident_pred(store: &Store, v: TermId, p: TermId) -> bool {
    if store.term(v).is_iri() && store.out_edges_with(v, p).next().is_some() {
        return true;
    }
    store.in_edges_with(v, p).next().is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{EdgeCandidates, MappedQuery, VertexBinding, VertexCandidate};
    use crate::sqg::{SemanticQueryGraph, SqgEdge, SqgVertex};
    use gqa_rdf::{StoreBuilder, Term};

    /// The Figure-1 graph: who—spouse—actor—starring—Philadelphia with
    /// decoys.
    fn running_store() -> Store {
        let mut b = StoreBuilder::new();
        b.add_iri("dbr:Melanie_Griffith", "dbo:spouse", "dbr:Antonio_Banderas");
        b.add_iri("dbr:Antonio_Banderas", "rdf:type", "dbo:Actor");
        b.add_iri("dbr:Tom_Hanks", "rdf:type", "dbo:Actor");
        b.add_iri("dbr:Philadelphia_(film)", "dbo:starring", "dbr:Antonio_Banderas");
        b.add_iri("dbr:Philadelphia_(film)", "dbo:starring", "dbr:Tom_Hanks");
        b.add_iri("dbr:Philadelphia_(film)", "dbo:director", "dbr:Jonathan_Demme");
        b.add_iri("dbr:Philadelphia", "dbo:country", "dbr:United_States");
        b.add_iri("dbr:Allen_Iverson", "dbo:playForTeam", "dbr:Philadelphia_76ers");
        b.add_obj("dbr:Antonio_Banderas", "dbo:height", Term::dec_lit(1.74));
        b.build()
    }

    fn v(text: &str, is_wh: bool) -> SqgVertex {
        SqgVertex { node: 0, text: text.into(), is_wh, is_target: is_wh, is_proper: false }
    }

    /// Hand-built mapped query for the running example with full ambiguity.
    fn running_query(store: &Store) -> MappedQuery {
        let spouse = store.expect_iri("dbo:spouse");
        let starring = store.expect_iri("dbo:starring");
        let play_for = store.expect_iri("dbo:playForTeam");
        let director = store.expect_iri("dbo:director");
        let actor_class = store.expect_iri("dbo:Actor");
        let mut sqg = SemanticQueryGraph::default();
        sqg.vertices.push(v("who", true));
        sqg.vertices.push(v("actor", false));
        sqg.vertices.push(v("philadelphia", false));
        sqg.edges.push(SqgEdge { from: 0, to: 1, phrase: Some((0, "be married to".into())) });
        sqg.edges.push(SqgEdge { from: 1, to: 2, phrase: Some((1, "play in".into())) });
        MappedQuery {
            sqg,
            vertices: vec![
                VertexBinding::Variable { classes: vec![] },
                VertexBinding::Candidates(vec![VertexCandidate {
                    id: actor_class,
                    confidence: 1.0,
                    is_class: true,
                }]),
                VertexBinding::Candidates(vec![
                    VertexCandidate {
                        id: store.expect_iri("dbr:Philadelphia"),
                        confidence: 1.0,
                        is_class: false,
                    },
                    VertexCandidate {
                        id: store.expect_iri("dbr:Philadelphia_(film)"),
                        confidence: 1.0,
                        is_class: false,
                    },
                    VertexCandidate {
                        id: store.expect_iri("dbr:Philadelphia_76ers"),
                        confidence: 0.5,
                        is_class: false,
                    },
                ]),
            ],
            edges: vec![
                EdgeCandidates { list: vec![(PathPattern::single(spouse), 1.0)], wildcard: None },
                EdgeCandidates {
                    list: vec![
                        (PathPattern::single(starring), 0.9),
                        (PathPattern::single(play_for), 0.5),
                        (PathPattern::single(director), 0.45),
                    ],
                    wildcard: None,
                },
            ],
        }
    }

    #[test]
    fn running_example_disambiguates_to_the_film() {
        let store = running_store();
        let schema = Schema::new(&store);
        let q = running_query(&store);
        let matches = find_matches(&store, &schema, &q, &MatcherConfig::default(), None);
        assert_eq!(matches.len(), 1, "{matches:?}");
        let m = &matches[0];
        assert_eq!(m.bindings[0], store.expect_iri("dbr:Melanie_Griffith"));
        assert_eq!(m.bindings[1], store.expect_iri("dbr:Antonio_Banderas"));
        assert_eq!(
            m.bindings[2],
            store.expect_iri("dbr:Philadelphia_(film)"),
            "city & team are false alarms"
        );
        assert_eq!(m.edge_used[1].0.as_single_predicate(), Some(store.expect_iri("dbo:starring")));
    }

    #[test]
    fn either_edge_orientation_satisfies() {
        // spouse is stored Melanie→Antonio; query the other way round.
        let store = running_store();
        let schema = Schema::new(&store);
        let spouse = store.expect_iri("dbo:spouse");
        let mut sqg = SemanticQueryGraph::default();
        sqg.vertices.push(v("who", true));
        sqg.vertices.push(v("melanie", false));
        sqg.edges.push(SqgEdge { from: 1, to: 0, phrase: Some((0, "be married to".into())) });
        let q = MappedQuery {
            sqg,
            vertices: vec![
                VertexBinding::Variable { classes: vec![] },
                VertexBinding::Candidates(vec![VertexCandidate {
                    id: store.expect_iri("dbr:Melanie_Griffith"),
                    confidence: 1.0,
                    is_class: false,
                }]),
            ],
            edges: vec![EdgeCandidates {
                list: vec![(PathPattern::single(spouse), 1.0)],
                wildcard: None,
            }],
        };
        let matches = find_matches(&store, &schema, &q, &MatcherConfig::default(), None);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].bindings[0], store.expect_iri("dbr:Antonio_Banderas"));
    }

    #[test]
    fn wildcard_edges_accept_any_predicate_and_literals() {
        let store = running_store();
        let schema = Schema::new(&store);
        let mut sqg = SemanticQueryGraph::default();
        sqg.vertices.push(v("what", true));
        sqg.vertices.push(v("antonio", false));
        sqg.edges.push(SqgEdge { from: 1, to: 0, phrase: None });
        let q = MappedQuery {
            sqg,
            vertices: vec![
                VertexBinding::Variable { classes: vec![] },
                VertexBinding::Candidates(vec![VertexCandidate {
                    id: store.expect_iri("dbr:Antonio_Banderas"),
                    confidence: 1.0,
                    is_class: false,
                }]),
            ],
            edges: vec![EdgeCandidates { list: vec![], wildcard: Some(0.3) }],
        };
        let matches = find_matches(&store, &schema, &q, &MatcherConfig::default(), None);
        // Neighbors: Melanie (spouse, incoming), Actor (type), the film
        // (starring, incoming), and the height literal.
        assert!(matches.len() >= 4, "{matches:?}");
        assert!(
            matches.iter().any(|m| store.term(m.bindings[0]).is_literal()),
            "literal neighbor must be reachable"
        );
    }

    #[test]
    fn class_constrained_variable_filters_bindings() {
        let store = running_store();
        let schema = Schema::new(&store);
        let starring = store.expect_iri("dbo:starring");
        let mut sqg = SemanticQueryGraph::default();
        sqg.vertices.push(v("actors", true));
        sqg.vertices.push(v("philadelphia film", false));
        sqg.edges.push(SqgEdge { from: 0, to: 1, phrase: Some((0, "play in".into())) });
        let q = MappedQuery {
            sqg,
            vertices: vec![
                VertexBinding::Variable { classes: vec![(store.expect_iri("dbo:Actor"), 1.0)] },
                VertexBinding::Candidates(vec![VertexCandidate {
                    id: store.expect_iri("dbr:Philadelphia_(film)"),
                    confidence: 1.0,
                    is_class: false,
                }]),
            ],
            edges: vec![EdgeCandidates {
                list: vec![(PathPattern::single(starring), 0.9)],
                wildcard: None,
            }],
        };
        let matches = find_matches(&store, &schema, &q, &MatcherConfig::default(), None);
        assert_eq!(matches.len(), 2, "{matches:?}");
        let ids: Vec<_> = matches.iter().map(|m| m.bindings[0]).collect();
        assert!(ids.contains(&store.expect_iri("dbr:Antonio_Banderas")));
        assert!(ids.contains(&store.expect_iri("dbr:Tom_Hanks")));
        assert!(!ids.contains(&store.expect_iri("dbr:Jonathan_Demme")), "Demme is not an actor");
    }

    #[test]
    fn scores_order_matches_by_confidence_product() {
        let store = running_store();
        let schema = Schema::new(&store);
        let q = running_query(&store);
        let matches = find_matches(&store, &schema, &q, &MatcherConfig::default(), None);
        for m in &matches {
            let recomputed: f64 = m.vertex_conf.iter().map(|c| c.ln()).sum::<f64>()
                + m.edge_used.iter().map(|(_, c)| c.ln()).sum::<f64>();
            assert!((m.score - recomputed).abs() < 1e-9);
            assert!(m.score <= 0.0, "log-probabilities are non-positive");
        }
    }

    #[test]
    fn neighborhood_pruning_removes_impossible_candidates() {
        // Paper example: u5 (dbr:Philadelphia the city) has no starring /
        // playForTeam / director edge, so pruning removes it from C_v3.
        let store = running_store();
        let q = running_query(&store);
        let pruned = prune(&store, &q);
        match &pruned.vertices[2] {
            VertexBinding::Candidates(c) => {
                assert_eq!(c.len(), 2, "{c:?}");
                assert!(!c.iter().any(|x| x.id == store.expect_iri("dbr:Philadelphia")));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn restriction_pins_a_vertex_to_one_candidate() {
        let store = running_store();
        let schema = Schema::new(&store);
        let q = running_query(&store);
        let bad = crate::mapping::VertexCandidate {
            id: store.expect_iri("dbr:Philadelphia_76ers"),
            confidence: 0.5,
            is_class: false,
        };
        let matches = find_matches(&store, &schema, &q, &MatcherConfig::default(), Some((2, bad)));
        assert!(matches.is_empty(), "no match goes through the 76ers");
    }

    #[test]
    fn path_pattern_edges_match_multi_hop() {
        let mut b = StoreBuilder::new();
        b.add_iri("gp", "hasChild", "uncle");
        b.add_iri("gp", "hasChild", "parent");
        b.add_iri("parent", "hasChild", "nephew");
        let store = b.build();
        let schema = Schema::new(&store);
        let child = store.expect_iri("hasChild");
        let uncle_path = PathPattern(Box::new([
            gqa_rdf::PathStep { pred: child, dir: gqa_rdf::Dir::Backward },
            gqa_rdf::PathStep { pred: child, dir: gqa_rdf::Dir::Forward },
            gqa_rdf::PathStep { pred: child, dir: gqa_rdf::Dir::Forward },
        ]));
        let mut sqg = SemanticQueryGraph::default();
        sqg.vertices.push(v("who", true));
        sqg.vertices.push(v("nephew", false));
        sqg.edges.push(SqgEdge { from: 0, to: 1, phrase: Some((0, "uncle of".into())) });
        let q = MappedQuery {
            sqg,
            vertices: vec![
                VertexBinding::Variable { classes: vec![] },
                VertexBinding::Candidates(vec![VertexCandidate {
                    id: store.expect_iri("nephew"),
                    confidence: 1.0,
                    is_class: false,
                }]),
            ],
            edges: vec![EdgeCandidates { list: vec![(uncle_path, 0.8)], wildcard: None }],
        };
        let matches = find_matches(&store, &schema, &q, &MatcherConfig::default(), None);
        assert_eq!(matches.len(), 1, "{matches:?}");
        assert_eq!(matches[0].bindings[0], store.expect_iri("uncle"));
    }

    #[test]
    fn empty_query_has_no_matches() {
        let store = running_store();
        let schema = Schema::new(&store);
        let q = MappedQuery { sqg: SemanticQueryGraph::default(), vertices: vec![], edges: vec![] };
        assert!(find_matches(&store, &schema, &q, &MatcherConfig::default(), None).is_empty());
    }
}
