//! Thread-count policy for the online answering path.
//!
//! One small config steers every parallel section (TA probe fan-out,
//! sharded pruning, batch answering): [`Concurrency`]. `threads = 1` takes
//! the exact pre-parallel code paths — not "parallel with one worker" —
//! so turning parallelism off is a true no-op, and parallel runs are
//! verified result-identical to it by property tests.
//!
//! Resolution order for the default: explicit value from the caller
//! (`--threads` in the CLI / benches) > the `GQA_THREADS` environment
//! variable > the machine's available parallelism.

use std::num::NonZeroUsize;

/// Environment variable consulted by [`Concurrency::from_env`].
pub const THREADS_ENV: &str = "GQA_THREADS";

/// How many worker threads the online path may use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Concurrency {
    /// Worker-thread budget. `1` means strictly serial (the exact old code
    /// path); `0` is normalized to `1` on construction.
    pub threads: usize,
}

impl Default for Concurrency {
    /// [`Concurrency::from_env`]: `GQA_THREADS` if set, else the machine's
    /// available parallelism.
    fn default() -> Self {
        Concurrency::from_env()
    }
}

impl Concurrency {
    /// Strictly serial execution (the exact pre-parallel code path).
    pub fn serial() -> Self {
        Concurrency { threads: 1 }
    }

    /// Use the machine's available parallelism (1 if it cannot be probed).
    pub fn available() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
        Concurrency { threads }
    }

    /// Read `GQA_THREADS`; unset, empty, unparsable, or `0` falls back to
    /// [`Concurrency::available`].
    pub fn from_env() -> Self {
        match std::env::var(THREADS_ENV) {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => Concurrency { threads: n },
                _ => Concurrency::available(),
            },
            Err(_) => Concurrency::available(),
        }
    }

    /// An explicit thread budget (`0` is normalized to `1`).
    pub fn with_threads(threads: usize) -> Self {
        Concurrency { threads: threads.max(1) }
    }

    /// Whether any parallel section may actually spawn workers.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Workers to spawn for `jobs` independent jobs: never more threads
    /// than jobs, never more than the budget, and 0 when there is nothing
    /// to do.
    pub fn workers_for(&self, jobs: usize) -> usize {
        self.threads.max(1).min(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_is_not_parallel() {
        assert!(!Concurrency::serial().is_parallel());
        assert_eq!(Concurrency::serial().threads, 1);
    }

    #[test]
    fn with_threads_normalizes_zero() {
        assert_eq!(Concurrency::with_threads(0).threads, 1);
        assert_eq!(Concurrency::with_threads(4).threads, 4);
        assert!(Concurrency::with_threads(4).is_parallel());
    }

    #[test]
    fn workers_never_exceed_jobs_or_budget() {
        let c = Concurrency::with_threads(4);
        assert_eq!(c.workers_for(0), 0);
        assert_eq!(c.workers_for(2), 2);
        assert_eq!(c.workers_for(100), 4);
        assert_eq!(Concurrency::serial().workers_for(100), 1);
    }

    #[test]
    fn available_is_at_least_one() {
        assert!(Concurrency::available().threads >= 1);
    }

    // No test mutates GQA_THREADS: the harness runs tests concurrently in
    // one process and setting env vars would race the from_env() defaults
    // exercised elsewhere (CI instead runs the whole suite under
    // GQA_THREADS=1 and =4).
    #[test]
    fn from_env_yields_a_positive_budget() {
        assert!(Concurrency::from_env().threads >= 1);
    }
}
