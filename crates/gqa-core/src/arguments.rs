//! Finding the associated arguments of a relation-phrase embedding
//! (§4.1.2), including the four heuristic recall rules evaluated in the
//! paper's Exp 4 (Table 9).

use crate::embedding::Embedding;
use crate::semrel::{argument_text, Argument, SemanticRelation};
use gqa_nlp::lexicon;
use gqa_nlp::tree::DepTree;

/// Which of the heuristic rules 1–4 are active (Exp 4 toggles them).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArgumentRules {
    /// Rule 1: extend the embedding with light words and re-check.
    pub rule1: bool,
    /// Rule 2: embedding root with a subject/object-like incoming edge
    /// becomes arg1 itself.
    pub rule2: bool,
    /// Rule 3: the embedding root's parent's subject-like child becomes
    /// arg1.
    pub rule3: bool,
    /// Rule 4: fall back to the nearest wh-word / first noun phrase.
    pub rule4: bool,
}

impl ArgumentRules {
    /// All rules on (the paper's default configuration).
    pub fn all() -> Self {
        ArgumentRules { rule1: true, rule2: true, rule3: true, rule4: true }
    }

    /// All rules off (the Table-9 ablation baseline).
    pub fn none() -> Self {
        ArgumentRules { rule1: false, rule2: false, rule3: false, rule4: false }
    }
}

impl Default for ArgumentRules {
    fn default() -> Self {
        Self::all()
    }
}

/// Find the two arguments of an embedding; `None` if either stays empty
/// after the active rules (§4.1.2: "we just discard the relation phrase").
pub fn find_arguments(
    tree: &DepTree,
    emb: &Embedding,
    rules: ArgumentRules,
) -> Option<SemanticRelation> {
    let mut nodes = emb.nodes.clone();

    // Base step: subject-like and object-like children of embedding nodes.
    let (mut arg1, mut arg2) = scan_children(tree, &nodes, emb.root);

    // Rule 1: extend the embedding with light words (prepositions,
    // auxiliaries, determiners) hanging off it and re-scan.
    if (arg1.is_none() || arg2.is_none()) && rules.rule1 {
        let mut extended = nodes.clone();
        for &x in &nodes {
            for c in tree.children(x) {
                if lexicon::is_light_word(&tree.token(c).lower) && !extended.contains(&c) {
                    extended.push(c);
                }
            }
        }
        if extended.len() != nodes.len() {
            extended.sort_unstable();
            let (a1, a2) = scan_children(tree, &extended, emb.root);
            arg1 = arg1.or(a1);
            arg2 = arg2.or(a2);
            nodes = extended;
        }
    }

    // Rule 2: the embedding root itself is arg1 when it hangs off its
    // parent via a subject/object-like relation ("Give me all *members* of
    // Prodigy": dobj(give, members) → arg1 = members).
    if arg1.is_none() && rules.rule2 && tree.parent(emb.root).is_some() {
        let rel = tree.rels[emb.root];
        if rel.is_subject_like() || rel.is_object_like() {
            arg1 = Some(emb.root);
        }
    }

    // Rule 3: the embedding root's parent has a subject-like child → that
    // child is arg1 (verb coordination: "born in Vienna *and died* in
    // Berlin" — died's parent born holds the shared subject).
    if arg1.is_none() && rules.rule3 {
        if let Some(parent) = tree.parent(emb.root) {
            let subj = tree
                .children(parent)
                .find(|&c| tree.rels[c].is_subject_like() && !nodes.contains(&c));
            if let Some(s) = subj {
                arg1 = Some(s);
            }
        }
    }

    // Rule 4: nearest wh-word, else the first noun phrase outside the
    // embedding.
    if rules.rule4 {
        if arg1.is_none() {
            arg1 = rule4_fallback(tree, &nodes, emb.root, arg2);
        }
        if arg2.is_none() {
            arg2 = rule4_fallback(tree, &nodes, emb.root, arg1);
        }
    }

    let (a1, a2) = (arg1?, arg2?);
    if a1 == a2 {
        return None;
    }
    Some(SemanticRelation {
        phrase: emb.phrase.clone(),
        phrase_id: emb.phrase_id,
        embedding: nodes,
        arg1: Argument { node: a1, text: argument_text(tree, a1) },
        arg2: Argument { node: a2, text: argument_text(tree, a2) },
    })
}

/// Base scan: subject-like children (outside the embedding) → arg1
/// candidates; object-like children → arg2 candidates. Among several,
/// pick the one nearest to the embedding root (the paper: "choose the
/// nearest one to rel").
fn scan_children(tree: &DepTree, nodes: &[usize], root: usize) -> (Option<usize>, Option<usize>) {
    let mut subj: Vec<usize> = Vec::new();
    let mut obj: Vec<usize> = Vec::new();
    for &x in nodes {
        for c in tree.children(x) {
            if nodes.contains(&c) {
                continue;
            }
            let rel = tree.rels[c];
            if rel.is_subject_like() {
                subj.push(c);
            } else if rel.is_object_like() {
                obj.push(c);
            }
        }
    }
    let nearest = |v: &[usize]| v.iter().copied().min_by_key(|&c| c.abs_diff(root));
    (nearest(&subj), nearest(&obj))
}

/// Rule 4 proper: nearest wh-word not already used; else the first noun
/// phrase head outside the embedding.
fn rule4_fallback(
    tree: &DepTree,
    nodes: &[usize],
    root: usize,
    taken: Option<usize>,
) -> Option<usize> {
    let candidate_ok = |i: usize| !nodes.contains(&i) && Some(i) != taken;
    let wh = (0..tree.len())
        .filter(|&i| tree.pos(i).is_wh() && tree.token(i).lower != "that" && candidate_ok(i))
        .min_by_key(|&i| i.abs_diff(root));
    if wh.is_some() {
        return wh;
    }
    // First noun-phrase head: a noun whose parent is not a noun (so we get
    // heads, not modifiers).
    (0..tree.len()).find(|&i| {
        tree.pos(i).is_noun()
            && candidate_ok(i)
            && tree.parent(i).is_none_or(|p| !tree.pos(p).is_noun())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::find_embeddings;
    use gqa_nlp::parser::DependencyParser;
    use gqa_paraphrase::dict::{ParaMapping, ParaphraseDict};
    use gqa_rdf::{PathPattern, TermId};

    fn dict_with(phrases: &[&str]) -> ParaphraseDict {
        let mut d = ParaphraseDict::new();
        for (i, p) in phrases.iter().enumerate() {
            d.insert(
                (*p).to_owned(),
                vec![ParaMapping {
                    path: PathPattern::single(TermId(i as u32)),
                    tfidf: 1.0,
                    confidence: 1.0,
                }],
            );
        }
        d
    }

    fn extract(question: &str, phrases: &[&str], rules: ArgumentRules) -> Vec<SemanticRelation> {
        let tree = DependencyParser::new().parse(question).unwrap();
        let dict = dict_with(phrases);
        find_embeddings(&tree, &dict)
            .iter()
            .filter_map(|e| find_arguments(&tree, e, rules))
            .collect()
    }

    #[test]
    fn running_example_relations() {
        // Figure 5: ⟨"be married to", who, actor⟩ and ⟨"play in", that,
        // Philadelphia⟩.
        let rels = extract(
            "Who was married to an actor that played in Philadelphia?",
            &["be married to", "play in"],
            ArgumentRules::all(),
        );
        assert_eq!(rels.len(), 2, "{rels:?}");
        let married = rels.iter().find(|r| r.phrase == "be married to").unwrap();
        assert_eq!(married.arg1.text, "who");
        assert_eq!(married.arg2.text, "actor");
        let play = rels.iter().find(|r| r.phrase == "play in").unwrap();
        assert_eq!(play.arg1.text, "that");
        assert_eq!(play.arg2.text, "philadelphia");
    }

    #[test]
    fn rule2_takes_the_root_as_arg1() {
        let rels = extract("Give me all members of Prodigy.", &["member of"], ArgumentRules::all());
        assert_eq!(rels.len(), 1, "{rels:?}");
        assert_eq!(rels[0].arg1.text, "member");
        assert_eq!(rels[0].arg2.text, "prodigy");
        // Without rule 2 (and 3/4) the relation is discarded.
        let none =
            extract("Give me all members of Prodigy.", &["member of"], ArgumentRules::none());
        assert!(none.is_empty(), "{none:?}");
    }

    #[test]
    fn rule3_recovers_shared_subject_under_coordination() {
        let rels = extract(
            "Give me all people that were born in Vienna and died in Berlin.",
            &["be born in", "die in"],
            ArgumentRules::all(),
        );
        assert_eq!(rels.len(), 2, "{rels:?}");
        let died = rels.iter().find(|r| r.phrase == "die in").unwrap();
        assert_eq!(died.arg1.text, "that", "rule 3 lifts the coordinated subject");
        assert_eq!(died.arg2.text, "berlin");
    }

    #[test]
    fn rule4_falls_back_to_wh_word() {
        let rels = extract("When did Michael Jackson die?", &["die"], ArgumentRules::all());
        assert_eq!(rels.len(), 1, "{rels:?}");
        assert_eq!(rels[0].arg1.text, "michael jackson");
        assert_eq!(rels[0].arg2.text, "when");
        // Rule 4 off → no second argument → discarded.
        let rules = ArgumentRules { rule4: false, ..ArgumentRules::all() };
        assert!(extract("When did Michael Jackson die?", &["die"], rules).is_empty());
    }

    #[test]
    fn copular_question_arguments() {
        let rels = extract("Who is the mayor of Berlin?", &["mayor of"], ArgumentRules::all());
        assert_eq!(rels.len(), 1, "{rels:?}");
        assert_eq!(rels[0].arg1.text, "who");
        assert_eq!(rels[0].arg2.text, "berlin");
    }

    #[test]
    fn identical_arguments_are_rejected() {
        // A degenerate phrase matching everything would pick the same node
        // for both arguments; verify the guard by checking no relation has
        // arg1 == arg2 on a tricky sentence.
        let rels = extract("Who produces Orangina?", &["produce"], ArgumentRules::all());
        assert_eq!(rels.len(), 1);
        assert_ne!(rels[0].arg1.node, rels[0].arg2.node);
    }

    #[test]
    fn passive_agent_question() {
        let rels = extract(
            "Which books by Kerouac were published by Viking Press?",
            &["be published by"],
            ArgumentRules::all(),
        );
        assert_eq!(rels.len(), 1, "{rels:?}");
        assert_eq!(rels[0].arg1.text, "book");
        assert_eq!(rels[0].arg2.text, "viking press");
    }
}
