//! Finding relation-phrase embeddings in the dependency tree
//! (Definition 5, Algorithm 2).
//!
//! A phrase `rel` *occurs* in tree `Y` if a connected subtree `y` exists
//! whose every node carries one word of `rel` and which covers all of
//! `rel`'s words; maximal such subtrees are the *embeddings*. The search
//! uses the dictionary's word→phrase inverted index (built offline), probes
//! each node as a potential embedding root and walks only through matching
//! descendants — `O(|Y|²)` overall, as Theorem 2 states.
//!
//! A phrase word matches a node if it equals the node's **lemma or its
//! lowercased surface form** — so `"be married to"` covers *"was married
//! to"* and `"star in"` covers *"starring in"*.

use gqa_nlp::lexicon;
use gqa_nlp::tree::DepTree;
use gqa_paraphrase::dict::ParaphraseDict;

/// One embedding: a phrase and the nodes of its subtree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Embedding {
    /// Dictionary phrase id.
    pub phrase_id: usize,
    /// Phrase text.
    pub phrase: String,
    /// Root of the embedding subtree.
    pub root: usize,
    /// All nodes of the embedding, sorted.
    pub nodes: Vec<usize>,
}

/// Does `word` of a phrase match tree node `n`?
fn word_matches(tree: &DepTree, n: usize, word: &str) -> bool {
    let t = tree.token(n);
    t.lemma == word || t.lower == word
}

/// All candidate phrase ids whose words include node `n`'s lemma or
/// surface form (Algorithm 2 steps 1–2).
fn phrases_at(dict: &ParaphraseDict, tree: &DepTree, n: usize) -> Vec<usize> {
    let t = tree.token(n);
    let mut out: Vec<usize> = dict.phrases_with_word(&t.lemma).to_vec();
    if t.lower != t.lemma {
        out.extend_from_slice(dict.phrases_with_word(&t.lower));
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Find all maximal relation-phrase embeddings in `tree` (Algorithm 2).
pub fn find_embeddings(tree: &DepTree, dict: &ParaphraseDict) -> Vec<Embedding> {
    let n = tree.len();
    let mut found: Vec<Embedding> = Vec::new();

    for root in 0..n {
        for phrase_id in phrases_at(dict, tree, root) {
            let words = dict.phrase_words(phrase_id);
            // The root must match some word — a *content* word when the
            // phrase has one. Light words (prepositions, auxiliaries) recur
            // in a sentence; rooting an embedding at one lets an unrelated
            // "of"/"in" capture the phrase ("successor **of** the father of
            // X" must not anchor "father of" at the first "of").
            let content: Vec<&String> =
                words.iter().filter(|w| !lexicon::is_light_word(w)).collect();
            let root_ok = if content.is_empty() {
                words.iter().any(|w| word_matches(tree, root, w))
            } else {
                content.iter().any(|w| word_matches(tree, root, w))
            };
            if !root_ok {
                continue;
            }
            // Maximality: if the parent matches a *content* word of this
            // phrase, the embedding rooted here is not maximal — the walk
            // from the parent will cover it. (Light-word parents don't
            // count: they may be a different surface occurrence.)
            if let Some(p) = tree.parent(root) {
                let parent_matches = if content.is_empty() {
                    words.iter().any(|w| word_matches(tree, p, w))
                } else {
                    content.iter().any(|w| word_matches(tree, p, w))
                };
                if parent_matches {
                    continue;
                }
            }
            if let Some(nodes) = cover(tree, root, words) {
                found.push(Embedding {
                    phrase_id,
                    phrase: dict.phrase_text(phrase_id).to_owned(),
                    root,
                    nodes,
                });
            }
        }
    }

    // Longest-match preference: drop an embedding whose node set is a
    // strict subset of another embedding's (e.g. "produce" inside
    // "be produced in"); on equal node sets keep both (genuinely ambiguous
    // phrases).
    let mut keep = vec![true; found.len()];
    for i in 0..found.len() {
        for j in 0..found.len() {
            if i == j || !keep[i] {
                continue;
            }
            let (a, b) = (&found[i], &found[j]);
            if a.nodes.len() < b.nodes.len() && a.nodes.iter().all(|x| b.nodes.contains(x)) {
                keep[i] = false;
            }
        }
    }
    found.into_iter().zip(keep).filter_map(|(e, k)| k.then_some(e)).collect()
}

/// Try to cover all `words` with a connected subtree rooted at `root`
/// walking only through word-matching nodes (the Probe of Algorithm 2).
/// Returns the covering node set on success.
fn cover(tree: &DepTree, root: usize, words: &[String]) -> Option<Vec<usize>> {
    let mut remaining: Vec<&str> = words.iter().map(String::as_str).collect();
    let mut nodes = Vec::with_capacity(words.len());
    let mut stack = vec![root];
    while let Some(x) = stack.pop() {
        // Consume one matching word for this node (nodes that match no
        // remaining word are not part of the subtree — Def 5 cond 1 says
        // each embedding node contains one word of rel).
        let Some(pos) = remaining.iter().position(|w| word_matches(tree, x, w)) else {
            continue;
        };
        remaining.swap_remove(pos);
        nodes.push(x);
        if remaining.is_empty() {
            break;
        }
        for c in tree.children(x) {
            // Only descend into children that can still consume a word.
            if remaining.iter().any(|w| word_matches(tree, c, w)) {
                stack.push(c);
            }
        }
    }
    if remaining.is_empty() {
        nodes.sort_unstable();
        Some(nodes)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqa_nlp::parser::DependencyParser;
    use gqa_paraphrase::dict::{ParaMapping, ParaphraseDict};
    use gqa_rdf::{PathPattern, TermId};

    fn dict_with(phrases: &[&str]) -> ParaphraseDict {
        let mut d = ParaphraseDict::new();
        for (i, p) in phrases.iter().enumerate() {
            d.insert(
                (*p).to_owned(),
                vec![ParaMapping {
                    path: PathPattern::single(TermId(i as u32)),
                    tfidf: 1.0,
                    confidence: 1.0,
                }],
            );
        }
        d
    }

    fn parse(s: &str) -> gqa_nlp::DepTree {
        DependencyParser::new().parse(s).unwrap()
    }

    #[test]
    fn running_example_finds_both_phrases() {
        // Figure 5: "be married to" and "play in".
        let tree = parse("Who was married to an actor that played in Philadelphia?");
        let dict = dict_with(&["be married to", "play in"]);
        let embs = find_embeddings(&tree, &dict);
        let phrases: Vec<&str> = embs.iter().map(|e| e.phrase.as_str()).collect();
        assert!(phrases.contains(&"be married to"), "{phrases:?}");
        assert!(phrases.contains(&"play in"), "{phrases:?}");
        // "be married to" embedding covers was+married+to.
        let m = embs.iter().find(|e| e.phrase == "be married to").unwrap();
        assert_eq!(m.nodes.len(), 3);
        let married = tree.tokens.iter().position(|t| t.lower == "married").unwrap();
        assert_eq!(m.root, married);
    }

    #[test]
    fn long_distance_fronting_is_still_found() {
        // §4.1: "In which movies did Antonio Banderas star?" — "star in" is
        // not a textual subsequence but its embedding exists in the tree.
        let tree = parse("In which movies did Antonio Banderas star?");
        let dict = dict_with(&["star in"]);
        let embs = find_embeddings(&tree, &dict);
        assert_eq!(embs.len(), 1, "{embs:?}");
        assert_eq!(embs[0].nodes.len(), 2);
    }

    #[test]
    fn longest_match_wins() {
        let tree = parse("Give me all cars that are produced in Germany.");
        let dict = dict_with(&["produce", "be produced in"]);
        let embs = find_embeddings(&tree, &dict);
        assert_eq!(embs.len(), 1, "{embs:?}");
        assert_eq!(embs[0].phrase, "be produced in");
    }

    #[test]
    fn lemma_and_surface_both_match() {
        let tree = parse("Who founded Intel?");
        let dict = dict_with(&["found"]);
        let embs = find_embeddings(&tree, &dict);
        assert_eq!(embs.len(), 1);
    }

    #[test]
    fn disconnected_words_do_not_embed() {
        // "play" and "in" exist but in disconnected positions.
        let tree = parse("Which plays are in Berlin?");
        // "plays" (noun) is nsubj; "in" attaches to the copula/root — they
        // may or may not be adjacent in the tree; the stricter test: a
        // phrase whose words simply don't all occur.
        let dict = dict_with(&["play with"]);
        let embs = find_embeddings(&tree, &dict);
        assert!(embs.is_empty(), "{embs:?}");
    }

    #[test]
    fn noun_phrase_relation_phrases_embed() {
        let tree = parse("What is the time zone of Salt Lake City?");
        let dict = dict_with(&["time zone of"]);
        let embs = find_embeddings(&tree, &dict);
        assert_eq!(embs.len(), 1, "{embs:?}");
        assert_eq!(embs[0].nodes.len(), 3);
        let zone = tree.tokens.iter().position(|t| t.lower == "zone").unwrap();
        assert_eq!(embs[0].root, zone);
    }

    #[test]
    fn multiple_distinct_embeddings_of_same_phrase() {
        let tree = parse("Give me all people that were born in Vienna and died in Berlin.");
        let dict = dict_with(&["be born in", "die in"]);
        let embs = find_embeddings(&tree, &dict);
        assert_eq!(embs.len(), 2, "{embs:?}");
    }
}
