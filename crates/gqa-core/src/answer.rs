//! Reading answers off subgraph matches.
//!
//! Each match of `Q^S` implies one answer: the binding of the target
//! (wh) vertex. Matches arrive score-ordered; answers are deduplicated
//! keeping the best-scored occurrence first.

use crate::matcher::Match;
use gqa_rdf::{Store, Term, TermId};

/// One answer to a question.
#[derive(Clone, Debug, PartialEq)]
pub struct Answer {
    /// The answering vertex of the RDF graph.
    pub id: TermId,
    /// The term itself.
    pub term: Term,
    /// Human-readable rendering (IRI label or literal text).
    pub text: String,
    /// Score of the best match producing this answer (Definition 6).
    pub score: f64,
}

/// Extract the distinct answers for `target` (a vertex index of `Q^S`) from
/// score-ordered matches.
pub fn answers_from_matches(store: &Store, matches: &[Match], target: usize) -> Vec<Answer> {
    let mut out: Vec<Answer> = Vec::new();
    for m in matches {
        let Some(&id) = m.bindings.get(target) else { continue };
        if out.iter().any(|a| a.id == id) {
            continue;
        }
        let term = store.term(id).clone();
        let text = term.label().into_owned();
        out.push(Answer { id, term, text, score: m.score });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqa_rdf::StoreBuilder;

    #[test]
    fn answers_dedup_and_keep_order() {
        let mut b = StoreBuilder::new();
        b.add_iri("dbr:A", "p", "dbr:B");
        b.add_iri("dbr:C", "p", "dbr:B");
        let store = b.build();
        let a = store.expect_iri("dbr:A");
        let c = store.expect_iri("dbr:C");
        let matches = vec![
            Match { bindings: vec![a], vertex_conf: vec![1.0], edge_used: vec![], score: -0.1 },
            Match { bindings: vec![c], vertex_conf: vec![1.0], edge_used: vec![], score: -0.2 },
            Match { bindings: vec![a], vertex_conf: vec![1.0], edge_used: vec![], score: -0.3 },
        ];
        let ans = answers_from_matches(&store, &matches, 0);
        assert_eq!(ans.len(), 2);
        assert_eq!(ans[0].id, a);
        assert_eq!(ans[0].text, "A");
        assert!((ans[0].score - -0.1).abs() < 1e-12);
    }

    #[test]
    fn literal_answers_render_lexical_form() {
        let mut b = StoreBuilder::new();
        b.add_obj("dbr:X", "height", Term::dec_lit(1.98));
        let store = b.build();
        let lit = store.dict().lookup(&Term::dec_lit(1.98)).unwrap();
        let matches = vec![Match {
            bindings: vec![lit],
            vertex_conf: vec![1.0],
            edge_used: vec![],
            score: 0.0,
        }];
        let ans = answers_from_matches(&store, &matches, 0);
        assert_eq!(ans[0].text, "1.98");
    }

    #[test]
    fn missing_target_yields_nothing() {
        let store = StoreBuilder::new().build();
        let matches =
            vec![Match { bindings: vec![], vertex_conf: vec![], edge_used: vec![], score: 0.0 }];
        assert!(answers_from_matches(&store, &matches, 3).is_empty());
    }
}
