//! Generating SPARQL from top-k matches (Algorithm 3's deliverable:
//! "Generating Top-k SPARQL Queries").
//!
//! Every match fully binds `Q^S`, so its SPARQL is determined: variable
//! vertices stay variables, fixed vertices become the matched constants,
//! and each edge expands to the triple chain of the predicate path that
//! satisfied it (intermediate path vertices become fresh variables). The
//! resulting queries are executable on `gqa-sparql` and return exactly the
//! match's answer — the tests verify this round trip.

use crate::mapping::{MappedQuery, VertexBinding};
use crate::matcher::Match;
use gqa_rdf::paths::{connects, Dir};
use gqa_rdf::{Store, TermId};
use gqa_sparql::ast::{Query, QueryForm, TermAst, TriplePatternAst};

/// Generate the SPARQL query of one match. `target` is the projected
/// vertex; when the target vertex is not a variable (boolean questions)
/// an ASK query is emitted.
pub fn sparql_of_match(store: &Store, q: &MappedQuery, m: &Match, target: usize) -> Query {
    let var_name = |vi: usize| format!("v{vi}");
    let node_ast = |vi: usize| -> TermAst {
        if q.vertices[vi].is_variable() {
            TermAst::Var(var_name(vi))
        } else {
            term_ast(store, m.bindings[vi])
        }
    };

    let mut patterns: Vec<TriplePatternAst> = Vec::new();
    let mut fresh = 0usize;
    for (ei, e) in q.sqg.edges.iter().enumerate() {
        let (pattern, _) = &m.edge_used[ei];
        let a = m.bindings[e.from];
        let b = m.bindings[e.to];
        // Find a concrete witness path from `a` to `b`; the pattern may
        // apply as mined or reversed (the matcher accepts either), and the
        // witness's per-step directions pin each triple's orientation.
        let witness = connects(store, a, b, pattern)
            .or_else(|| connects(store, a, b, &pattern.reversed()))
            .or_else(|| {
                // Single-step edges with a literal endpoint: synthesize the
                // witness directly (literals cannot seed `connects`).
                if pattern.len() == 1 {
                    let p = pattern.0[0].pred;
                    let dir = if store.contains(gqa_rdf::Triple::new(a, p, b)) {
                        Dir::Forward
                    } else if store.contains(gqa_rdf::Triple::new(b, p, a)) {
                        Dir::Backward
                    } else {
                        return None;
                    };
                    return Some(gqa_rdf::paths::SimplePath {
                        vertices: vec![a, b],
                        steps: vec![gqa_rdf::PathStep { pred: p, dir }],
                    });
                }
                None
            });
        let Some(w) = witness else { continue };
        // Endpoint vertex asts; interior nodes become fresh variables.
        let len = w.vertices.len();
        let ast_of = |k: usize, fresh: &mut usize| -> TermAst {
            if k == 0 {
                node_ast(e.from)
            } else if k == len - 1 {
                node_ast(e.to)
            } else {
                *fresh += 1;
                TermAst::Var(format!("m{ei}_{fresh}"))
            }
        };
        let mut prev = ast_of(0, &mut fresh);
        for (k, step) in w.steps.iter().enumerate() {
            let next = ast_of(k + 1, &mut fresh);
            let pred = TermAst::Iri(store.term(step.pred).as_iri().unwrap_or("?").to_owned());
            let (s, o) = match step.dir {
                Dir::Forward => (prev.clone(), next.clone()),
                Dir::Backward => (next.clone(), prev.clone()),
            };
            patterns.push(TriplePatternAst { s, p: pred, o });
            prev = next;
        }
    }

    let form = if q.vertices.get(target).is_some_and(VertexBinding::is_variable) {
        QueryForm::Select { vars: vec![var_name(target)], distinct: true }
    } else {
        QueryForm::Ask
    };
    Query {
        form,
        patterns,
        union_groups: Vec::new(),
        filters: Vec::new(),
        order_by: None,
        limit: None,
        offset: 0,
    }
}

/// The SPARQL queries of the top-k matches, deduplicated.
pub fn sparql_of_matches(
    store: &Store,
    q: &MappedQuery,
    matches: &[Match],
    target: usize,
) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for m in matches {
        let s = sparql_of_match(store, q, m, target).to_string();
        if !out.contains(&s) {
            out.push(s);
        }
    }
    out
}

fn term_ast(store: &Store, id: TermId) -> TermAst {
    match store.term(id) {
        gqa_rdf::Term::Iri(s) => TermAst::Iri(s.to_string()),
        lit => TermAst::Literal(lit.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{EdgeCandidates, VertexCandidate};
    use crate::matcher::{find_matches, MatcherConfig};
    use crate::sqg::{SemanticQueryGraph, SqgEdge, SqgVertex};
    use gqa_rdf::schema::Schema;
    use gqa_rdf::{PathPattern, StoreBuilder};

    fn v(text: &str, is_wh: bool) -> SqgVertex {
        SqgVertex { node: 0, text: text.into(), is_wh, is_target: is_wh, is_proper: false }
    }

    #[test]
    fn generated_sparql_reproduces_the_answer() {
        let mut b = StoreBuilder::new();
        b.add_iri("dbr:Melanie_Griffith", "dbo:spouse", "dbr:Antonio_Banderas");
        b.add_iri("dbr:Antonio_Banderas", "rdf:type", "dbo:Actor");
        b.add_iri("dbr:Philadelphia_(film)", "dbo:starring", "dbr:Antonio_Banderas");
        let store = b.build();
        let schema = Schema::new(&store);
        let spouse = store.expect_iri("dbo:spouse");
        let starring = store.expect_iri("dbo:starring");

        let mut sqg = SemanticQueryGraph::default();
        sqg.vertices.push(v("who", true));
        sqg.vertices.push(v("actor", false));
        sqg.vertices.push(v("philadelphia", false));
        sqg.edges.push(SqgEdge { from: 0, to: 1, phrase: Some((0, "be married to".into())) });
        sqg.edges.push(SqgEdge { from: 1, to: 2, phrase: Some((1, "play in".into())) });
        let q = MappedQuery {
            sqg,
            vertices: vec![
                VertexBinding::Variable { classes: vec![] },
                VertexBinding::Candidates(vec![VertexCandidate {
                    id: store.expect_iri("dbo:Actor"),
                    confidence: 1.0,
                    is_class: true,
                }]),
                VertexBinding::Candidates(vec![VertexCandidate {
                    id: store.expect_iri("dbr:Philadelphia_(film)"),
                    confidence: 1.0,
                    is_class: false,
                }]),
            ],
            edges: vec![
                EdgeCandidates { list: vec![(PathPattern::single(spouse), 1.0)], wildcard: None },
                EdgeCandidates { list: vec![(PathPattern::single(starring), 0.9)], wildcard: None },
            ],
        };
        let matches = find_matches(&store, &schema, &q, &MatcherConfig::default(), None);
        assert_eq!(matches.len(), 1);
        let sparqls = sparql_of_matches(&store, &q, &matches, 0);
        assert_eq!(sparqls.len(), 1);
        // Round trip through the SPARQL engine.
        let rs = gqa_sparql::run(&store, &sparqls[0]).unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], store.expect_iri("dbr:Melanie_Griffith"));
    }

    #[test]
    fn path_edges_expand_to_triple_chains() {
        let mut b = StoreBuilder::new();
        b.add_iri("gp", "hasChild", "uncle");
        b.add_iri("gp", "hasChild", "parent");
        b.add_iri("parent", "hasChild", "nephew");
        let store = b.build();
        let schema = Schema::new(&store);
        let child = store.expect_iri("hasChild");
        let uncle_path = PathPattern(Box::new([
            gqa_rdf::PathStep { pred: child, dir: Dir::Backward },
            gqa_rdf::PathStep { pred: child, dir: Dir::Forward },
            gqa_rdf::PathStep { pred: child, dir: Dir::Forward },
        ]));
        let mut sqg = SemanticQueryGraph::default();
        sqg.vertices.push(v("who", true));
        sqg.vertices.push(v("nephew", false));
        sqg.edges.push(SqgEdge { from: 0, to: 1, phrase: Some((0, "uncle of".into())) });
        let q = MappedQuery {
            sqg,
            vertices: vec![
                VertexBinding::Variable { classes: vec![] },
                VertexBinding::Candidates(vec![VertexCandidate {
                    id: store.expect_iri("nephew"),
                    confidence: 1.0,
                    is_class: false,
                }]),
            ],
            edges: vec![EdgeCandidates { list: vec![(uncle_path, 0.8)], wildcard: None }],
        };
        let matches = find_matches(&store, &schema, &q, &MatcherConfig::default(), None);
        let sparqls = sparql_of_matches(&store, &q, &matches, 0);
        assert_eq!(sparqls.len(), 1);
        let text = &sparqls[0];
        assert_eq!(text.matches("<hasChild>").count(), 3, "{text}");
        let rs = gqa_sparql::run(&store, text).unwrap();
        assert_eq!(rs.rows[0][0], store.expect_iri("uncle"));
    }

    #[test]
    fn boolean_query_is_ask() {
        let mut b = StoreBuilder::new();
        b.add_iri("dbr:Barack", "dbo:spouse", "dbr:Michelle");
        let store = b.build();
        let schema = Schema::new(&store);
        let spouse = store.expect_iri("dbo:spouse");
        let mut sqg = SemanticQueryGraph::default();
        sqg.vertices.push(SqgVertex {
            node: 0,
            text: "michelle".into(),
            is_wh: false,
            is_target: true,
            is_proper: true,
        });
        sqg.vertices.push(v("barack", false));
        sqg.edges.push(SqgEdge { from: 0, to: 1, phrase: Some((0, "wife of".into())) });
        let q = MappedQuery {
            sqg,
            vertices: vec![
                VertexBinding::Candidates(vec![VertexCandidate {
                    id: store.expect_iri("dbr:Michelle"),
                    confidence: 1.0,
                    is_class: false,
                }]),
                VertexBinding::Candidates(vec![VertexCandidate {
                    id: store.expect_iri("dbr:Barack"),
                    confidence: 1.0,
                    is_class: false,
                }]),
            ],
            edges: vec![EdgeCandidates {
                list: vec![(PathPattern::single(spouse), 1.0)],
                wildcard: None,
            }],
        };
        let matches = find_matches(&store, &schema, &q, &MatcherConfig::default(), None);
        assert_eq!(matches.len(), 1);
        let sparql = sparql_of_match(&store, &q, &matches[0], 0).to_string();
        assert!(sparql.starts_with("ASK"), "{sparql}");
        assert_eq!(gqa_sparql::run(&store, &sparql).unwrap().boolean, Some(true));
    }
}
