//! The end-to-end pipeline: question in, answers out.
//!
//! Mirrors the paper's two online stages (§2.2): **question understanding**
//! (dependency parse → relation extraction → `Q^S`) and **query
//! evaluation** (phrase mapping → top-k subgraph matching → answers /
//! SPARQL). Both stages are timed separately because Figure 6 plots them
//! separately.

use crate::answer::{answers_from_matches, Answer};
use crate::arguments::{find_arguments, ArgumentRules};
use crate::coref;
use crate::embedding::find_embeddings;
use crate::mapping::{map_query, LiteralIndex, MappedQuery, MappingError, MappingOptions};
use crate::matcher::{Match, MatcherConfig};
use crate::semrel::SemanticRelation;
use crate::sparql_gen::sparql_of_matches;
use crate::sqg::{self, SemanticQueryGraph, SqgOptions};
use crate::topk::{top_k, TaStats};
use crate::aggregates;
use gqa_linker::Linker;
use gqa_nlp::question::{Aggregation, AnswerShape, QuestionAnalysis};
use gqa_nlp::{DependencyParser, DepTree};
use gqa_paraphrase::dict::ParaphraseDict;
use gqa_rdf::schema::Schema;
use gqa_rdf::Store;
use std::time::{Duration, Instant};

/// Pipeline configuration. Defaults reproduce the paper's setup
/// (k = 10, all argument rules on, aggregation extension off).
#[derive(Clone, Debug)]
pub struct GAnswerConfig {
    /// Number of top matches to keep (paper: k = 10).
    pub top_k: usize,
    /// The §4.1.2 heuristic rules (Exp 4 ablation).
    pub rules: ArgumentRules,
    /// Implicit wildcard edges in `Q^S` construction.
    pub implicit_edges: bool,
    /// Neighborhood pruning (§4.2.2 ablation).
    pub neighborhood_pruning: bool,
    /// Answer aggregation questions (future-work extension; off = paper).
    pub enable_aggregates: bool,
    /// Phrase-mapping options.
    pub mapping: MappingOptions,
    /// Matcher limits.
    pub matcher: MatcherConfig,
    /// Cap on linker candidates per mention (DBpedia Lookup returns a
    /// bounded list too).
    pub max_link_candidates: usize,
}

impl Default for GAnswerConfig {
    fn default() -> Self {
        GAnswerConfig {
            top_k: 10,
            rules: ArgumentRules::all(),
            implicit_edges: true,
            neighborhood_pruning: true,
            enable_aggregates: false,
            mapping: MappingOptions::default(),
            matcher: MatcherConfig::default(),
            max_link_candidates: 8,
        }
    }
}

/// Why a question could not be answered — the Table-10 taxonomy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Failure {
    /// The question produced no parsable tokens.
    Parse,
    /// A mention could not be linked to the graph (Table 10 reason 1).
    EntityLinking(String),
    /// No semantic relation could be extracted or mapped (reason 2).
    RelationExtraction(String),
    /// Aggregation needed but the extension is disabled (reason 3).
    Aggregation,
    /// Everything mapped but no subgraph match exists ("others").
    NoMatch,
}

/// The result of answering one question.
#[derive(Clone, Debug)]
pub struct Response {
    /// Ranked distinct answers (empty for boolean questions).
    pub answers: Vec<Answer>,
    /// Boolean verdict for yes/no questions.
    pub boolean: Option<bool>,
    /// Count for "how many" questions (aggregates extension).
    pub count: Option<usize>,
    /// The top-k matches.
    pub matches: Vec<Match>,
    /// The semantic query graph, when understanding succeeded.
    pub sqg: Option<SemanticQueryGraph>,
    /// The extracted semantic relations.
    pub relations: Vec<SemanticRelation>,
    /// Top-k SPARQL queries generated from the matches.
    pub sparql: Vec<String>,
    /// Failure reason, if unanswered.
    pub failure: Option<Failure>,
    /// Question-understanding wall time (Figure 6's first series).
    pub understanding_time: Duration,
    /// Query-evaluation wall time.
    pub evaluation_time: Duration,
    /// Top-k search instrumentation.
    pub ta_stats: TaStats,
}

impl Response {
    fn failed(failure: Failure, understanding_time: Duration, evaluation_time: Duration) -> Self {
        Response {
            answers: Vec::new(),
            boolean: None,
            count: None,
            matches: Vec::new(),
            sqg: None,
            relations: Vec::new(),
            sparql: Vec::new(),
            failure: Some(failure),
            understanding_time,
            evaluation_time,
            ta_stats: TaStats::default(),
        }
    }

    /// Total response time (both stages).
    pub fn total_time(&self) -> Duration {
        self.understanding_time + self.evaluation_time
    }

    /// Convenience: answer texts.
    pub fn texts(&self) -> Vec<&str> {
        self.answers.iter().map(|a| a.text.as_str()).collect()
    }
}

/// Result of the question-understanding stage alone (exposed for the
/// Figure-6 / complexity benchmarks).
#[derive(Clone, Debug)]
pub struct Understanding {
    /// The dependency tree.
    pub tree: DepTree,
    /// Question-level analysis.
    pub analysis: QuestionAnalysis,
    /// Extracted, coreference-resolved semantic relations.
    pub relations: Vec<SemanticRelation>,
    /// The semantic query graph.
    pub sqg: SemanticQueryGraph,
}

/// The graph data-driven RDF Q/A system.
pub struct GAnswer<'s> {
    store: &'s Store,
    schema: Schema,
    linker: Linker,
    literals: LiteralIndex,
    dict: ParaphraseDict,
    parser: DependencyParser,
    /// Configuration (public for ablation experiments).
    pub config: GAnswerConfig,
}

impl<'s> GAnswer<'s> {
    /// Build the system over a store with a mined paraphrase dictionary.
    pub fn new(store: &'s Store, dict: ParaphraseDict, config: GAnswerConfig) -> Self {
        let schema = Schema::new(store);
        let mut linker = Linker::new(store, &schema);
        linker.set_max_candidates(config.max_link_candidates);
        let literals = LiteralIndex::new(store);
        GAnswer { store, schema, linker, literals, dict, parser: DependencyParser::new(), config }
    }

    /// The underlying store.
    pub fn store(&self) -> &Store {
        self.store
    }

    /// The schema view.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The paraphrase dictionary.
    pub fn dict(&self) -> &ParaphraseDict {
        &self.dict
    }

    /// Stage 1 — question understanding (§4.1): dependency parse, relation
    /// extraction, coreference, `Q^S` construction.
    pub fn understand(&self, question: &str) -> Option<Understanding> {
        let tree = self.parser.parse(question)?;
        let analysis = QuestionAnalysis::of(&tree);
        let embeddings = find_embeddings(&tree, &self.dict);
        let mut relations: Vec<SemanticRelation> = embeddings
            .iter()
            .filter_map(|e| find_arguments(&tree, e, self.config.rules))
            .collect();
        coref::resolve(&tree, &mut relations);
        let sqg = sqg::build(
            &tree,
            &relations,
            &analysis,
            SqgOptions { implicit_edges: self.config.implicit_edges },
        );
        Some(Understanding { tree, analysis, relations, sqg })
    }

    /// Stage 2 — phrase mapping (§4.2.1).
    pub fn map(&self, sqg: &SemanticQueryGraph) -> Result<MappedQuery, MappingError> {
        map_query(sqg, &self.linker, &self.literals, &self.dict, &self.config.mapping)
    }

    /// Phrase mapping with extra nodes protected from the implicit-edge
    /// drop (used by the comparison extension, whose measured noun is
    /// deliberately unlinkable).
    pub fn map_protecting(
        &self,
        sqg: &SemanticQueryGraph,
        protected_nodes: &[usize],
    ) -> Result<MappedQuery, MappingError> {
        let mut opts = self.config.mapping.clone();
        opts.protected_nodes.extend_from_slice(protected_nodes);
        map_query(sqg, &self.linker, &self.literals, &self.dict, &opts)
    }

    /// Stage 2 — top-k evaluation (§4.2.2).
    pub fn evaluate(&self, mapped: &MappedQuery) -> (Vec<Match>, TaStats) {
        let mcfg = MatcherConfig {
            neighborhood_pruning: self.config.neighborhood_pruning,
            ..self.config.matcher
        };
        top_k(self.store, &self.schema, mapped, &mcfg, self.config.top_k)
    }

    /// Answer a natural-language question end to end.
    pub fn answer(&self, question: &str) -> Response {
        let t0 = Instant::now();
        let Some(u) = self.understand(question) else {
            return Response::failed(Failure::Parse, t0.elapsed(), Duration::ZERO);
        };

        // Aggregation gate (paper behaviour: these fail; extension: handled
        // after matching). A superlative *inside* a relation-phrase
        // embedding is not an aggregation operator — "the largest city in
        // Australia" maps to ⟨largestCity⟩ directly.
        let aggregation = match u.analysis.aggregation {
            Some(Aggregation::Superlative(node))
                if u.relations.iter().any(|r| r.embedding.contains(&node)) =>
            {
                None
            }
            other => other,
        };
        if aggregation.is_some() && !self.config.enable_aggregates {
            return Response::failed(Failure::Aggregation, t0.elapsed(), Duration::ZERO);
        }
        let understanding_time = t0.elapsed();

        let t1 = Instant::now();
        let protected: Vec<usize> = match aggregation {
            Some(Aggregation::Comparison { node, .. }) if self.config.enable_aggregates => vec![node],
            _ => Vec::new(),
        };
        let mapped = match self.map_protecting(&u.sqg, &protected) {
            Ok(m) => m,
            Err(MappingError::UnlinkableMention { text, .. }) => {
                return Response::failed(Failure::EntityLinking(text), understanding_time, t1.elapsed());
            }
            Err(MappingError::UnknownRelation { phrase, .. }) => {
                return Response::failed(Failure::RelationExtraction(phrase), understanding_time, t1.elapsed());
            }
        };
        let (mut matches, ta_stats) = self.evaluate(&mapped);

        // Aggregates extension.
        let mut count_result = None;
        if self.config.enable_aggregates {
            let target = mapped.sqg.target().unwrap_or(0);
            match aggregation {
                Some(Aggregation::Count) => {
                    count_result = Some(aggregates::count(&matches, target));
                }
                Some(Aggregation::Superlative(node)) => {
                    // Periphrastic superlatives carry the gradable adjective
                    // in the next token ("the *most populous* city").
                    let adj = match u.tree.token(node).lower.as_str() {
                        m @ ("most" | "least") if node + 1 < u.tree.len() => {
                            format!("{m} {}", u.tree.token(node + 1).lemma)
                        }
                        other => other.to_owned(),
                    };
                    match aggregates::superlative(self.store, &matches, target, &adj) {
                        Some(kept) => matches = kept,
                        None => {
                            return Response::failed(
                                Failure::Aggregation,
                                understanding_time,
                                t1.elapsed(),
                            )
                        }
                    }
                }
                Some(Aggregation::Comparison { node, greater, value }) => {
                    // The measured noun must be a vertex of Q^S (the
                    // possessive-have rule makes it one).
                    match mapped.sqg.vertices.iter().position(|v| v.node == node) {
                        Some(vertex) => {
                            matches = aggregates::comparison(self.store, &matches, vertex, greater, value);
                        }
                        None => {
                            return Response::failed(
                                Failure::Aggregation,
                                understanding_time,
                                t1.elapsed(),
                            )
                        }
                    }
                }
                None => {}
            }
        }

        let target = mapped.sqg.target().unwrap_or(0);
        let is_boolean = u.analysis.shape == AnswerShape::Boolean;
        if matches.is_empty() && !is_boolean && count_result.is_none() {
            let mut r = Response::failed(Failure::NoMatch, understanding_time, t1.elapsed());
            r.sqg = Some(u.sqg);
            r.relations = u.relations;
            r.ta_stats = ta_stats;
            return r;
        }

        // Answers come from the best-scoring match group (ties included):
        // lower-ranked matches use weaker candidate mappings and exist for
        // the top-k SPARQL output, not the answer set.
        let answers = if is_boolean {
            Vec::new()
        } else {
            let best = matches.first().map(|m| m.score).unwrap_or(f64::NEG_INFINITY);
            let tied: Vec<Match> =
                matches.iter().filter(|m| m.score >= best - 1e-9).cloned().collect();
            answers_from_matches(self.store, &tied, target)
        };
        let sparql = sparql_of_matches(self.store, &mapped, &matches, target);
        Response {
            answers,
            boolean: is_boolean.then_some(!matches.is_empty()),
            count: count_result,
            matches,
            sqg: Some(mapped.sqg.clone()),
            relations: u.relations,
            sparql,
            failure: None,
            understanding_time,
            evaluation_time: t1.elapsed(),
            ta_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqa_datagen::patty::{curated_literal_mappings, mini_phrase_dataset};
    use gqa_datagen::minidbp::mini_dbpedia;
    use gqa_paraphrase::dict::ParaMapping;
    use gqa_paraphrase::miner::{mine, MinerConfig};
    use gqa_rdf::PathPattern;

    fn system(store: &Store) -> GAnswer<'_> {
        let mut dict = mine(store, &mini_phrase_dataset(), &MinerConfig::default());
        for (phrase, pred) in curated_literal_mappings() {
            if let Some(p) = store.iri(pred) {
                dict.insert(
                    phrase.to_owned(),
                    vec![ParaMapping { path: PathPattern::single(p), tfidf: 1.0, confidence: 1.0 }],
                );
            }
        }
        GAnswer::new(store, dict, GAnswerConfig::default())
    }

    #[test]
    fn running_example_end_to_end() {
        let store = mini_dbpedia();
        let sys = system(&store);
        let r = sys.answer("Who was married to an actor that played in Philadelphia?");
        assert!(r.failure.is_none(), "{:?}", r.failure);
        assert_eq!(r.texts(), vec!["Melanie Griffith"], "{:?}", r.answers);
        assert!(!r.sparql.is_empty());
    }

    #[test]
    fn copular_question() {
        let store = mini_dbpedia();
        let sys = system(&store);
        let r = sys.answer("Who is the mayor of Berlin?");
        assert_eq!(r.texts(), vec!["Klaus Wowereit"], "{:?}", r.failure);
    }

    #[test]
    fn boolean_question_true_and_false() {
        let store = mini_dbpedia();
        let sys = system(&store);
        let yes = sys.answer("Is Michelle Obama the wife of Barack Obama?");
        assert_eq!(yes.boolean, Some(true), "{:?}", yes.failure);
        let no = sys.answer("Is Melanie Griffith the wife of Barack Obama?");
        assert_eq!(no.boolean, Some(false), "{:?}", no.failure);
    }

    #[test]
    fn predicate_path_question() {
        let store = mini_dbpedia();
        let sys = system(&store);
        let r = sys.answer("Who is the uncle of John F. Kennedy, Jr.?");
        assert!(r.failure.is_none(), "{:?}", r.failure);
        let mut texts = r.texts();
        texts.sort_unstable();
        assert_eq!(texts, vec!["Robert F. Kennedy", "Ted Kennedy"], "{:?}", r.answers);
    }

    #[test]
    fn literal_valued_question() {
        let store = mini_dbpedia();
        let sys = system(&store);
        let r = sys.answer("How tall is Michael Jordan?");
        assert_eq!(r.texts(), vec!["1.98"], "{:?}", r.failure);
    }

    #[test]
    fn entity_linking_failure_is_reported() {
        let store = mini_dbpedia();
        let sys = system(&store);
        let r = sys.answer("In which UK city are the headquarters of the MI6?");
        assert!(
            matches!(r.failure, Some(Failure::EntityLinking(_)) | Some(Failure::NoMatch)),
            "{:?}",
            r.failure
        );
        assert!(r.answers.is_empty());
    }

    #[test]
    fn aggregation_fails_without_extension_and_works_with_it() {
        let store = mini_dbpedia();
        let sys = system(&store);
        let r = sys.answer("Who is the youngest player in the Premier League?");
        assert_eq!(r.failure, Some(Failure::Aggregation));

        let mut sys2 = system(&store);
        sys2.config.enable_aggregates = true;
        let r2 = sys2.answer("Who is the youngest player in the Premier League?");
        assert!(r2.failure.is_none(), "{:?}", r2.failure);
        assert_eq!(r2.texts(), vec!["Raheem Sterling"], "{:?}", r2.answers);
    }

    #[test]
    fn count_questions_with_extension() {
        let store = mini_dbpedia();
        let mut_dict_sys = {
            let mut s = system(&store);
            s.config.enable_aggregates = true;
            s
        };
        let r = mut_dict_sys.answer("How many companies are in Munich?");
        assert_eq!(r.count, Some(3), "{:?}", r.failure);
    }

    #[test]
    fn imperative_with_class_constraint() {
        let store = mini_dbpedia();
        let sys = system(&store);
        let r = sys.answer("Give me all cars that are produced in Germany.");
        let mut texts = r.texts();
        texts.sort_unstable();
        assert_eq!(texts, vec!["BMW 3 Series", "Volkswagen Golf"], "{:?}", r.failure);
    }

    #[test]
    fn implicit_edge_question() {
        let store = mini_dbpedia();
        let sys = system(&store);
        let r = sys.answer("Give me all companies in Munich.");
        assert_eq!(r.answers.len(), 3, "{:?} {:?}", r.failure, r.answers);
    }

    #[test]
    fn timings_are_populated() {
        let store = mini_dbpedia();
        let sys = system(&store);
        let r = sys.answer("Who is the mayor of Berlin?");
        assert!(r.total_time() >= r.understanding_time);
    }
}
