//! The end-to-end pipeline: question in, answers out.
//!
//! Mirrors the paper's two online stages (§2.2): **question understanding**
//! (dependency parse → relation extraction → `Q^S`) and **query
//! evaluation** (phrase mapping → top-k subgraph matching → answers /
//! SPARQL). Both stages are timed separately because Figure 6 plots them
//! separately.

use crate::aggregates;
use crate::answer::{answers_from_matches, Answer};
use crate::arguments::{find_arguments, ArgumentRules};
use crate::concurrency::Concurrency;
use crate::coref;
use crate::embedding::find_embeddings;
use crate::mapping::{
    map_query, map_query_traced_with, LiteralIndex, MappedQuery, MappingError, MappingOptions,
    TraceSink,
};
use crate::matcher::{Match, MatcherConfig};
use crate::semrel::SemanticRelation;
use crate::sparql_gen::sparql_of_matches;
use crate::sqg::{self, SemanticQueryGraph, SqgOptions};
use crate::topk::{top_k_with, TaStats};
use gqa_fault::{Budget, BudgetKind, Exec, FaultPlan};
use gqa_linker::Linker;
use gqa_nlp::question::{Aggregation, AnswerShape, QuestionAnalysis};
use gqa_nlp::{DepTree, DependencyParser};
use gqa_obs::{Obs, ParseTrace, QueryTrace, RelationTrace, DURATION_BUCKETS};
use gqa_paraphrase::dict::ParaphraseDict;
use gqa_rdf::schema::Schema;
use gqa_rdf::Store;
use std::ops::Deref;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pipeline configuration. Defaults reproduce the paper's setup
/// (k = 10, all argument rules on, aggregation extension off).
#[derive(Clone, Debug)]
pub struct GAnswerConfig {
    /// Number of top matches to keep (paper: k = 10).
    pub top_k: usize,
    /// The §4.1.2 heuristic rules (Exp 4 ablation).
    pub rules: ArgumentRules,
    /// Implicit wildcard edges in `Q^S` construction.
    pub implicit_edges: bool,
    /// Neighborhood pruning (§4.2.2 ablation).
    pub neighborhood_pruning: bool,
    /// Answer aggregation questions (future-work extension; off = paper).
    pub enable_aggregates: bool,
    /// Phrase-mapping options.
    pub mapping: MappingOptions,
    /// Matcher limits.
    pub matcher: MatcherConfig,
    /// Cap on linker candidates per mention (DBpedia Lookup returns a
    /// bounded list too).
    pub max_link_candidates: usize,
    /// Thread budget for the online path: TA probe fan-out, sharded
    /// pruning, and [`GAnswer::answer_all`]. Default resolves `GQA_THREADS`
    /// then available parallelism; `threads = 1` is the exact serial path.
    pub concurrency: Concurrency,
    /// Deterministic fault-injection plan (inert by default). Faults fire
    /// at named sites inside the linker, BFS, and TA probes; see the
    /// `gqa-fault` crate.
    pub fault: FaultPlan,
    /// Per-question resource budgets (unlimited by default). Exhaustion
    /// degrades the answer to the best partial top-k instead of running
    /// unbounded; the tripped budget is reported in
    /// [`Response::degraded`].
    pub budget: Budget,
}

impl Default for GAnswerConfig {
    fn default() -> Self {
        GAnswerConfig {
            top_k: 10,
            rules: ArgumentRules::all(),
            implicit_edges: true,
            neighborhood_pruning: true,
            enable_aggregates: false,
            mapping: MappingOptions::default(),
            matcher: MatcherConfig::default(),
            max_link_candidates: 8,
            concurrency: Concurrency::default(),
            fault: FaultPlan::none(),
            budget: Budget::unlimited(),
        }
    }
}

/// Why a question could not be answered — the Table-10 taxonomy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Failure {
    /// The question produced no parsable tokens.
    Parse,
    /// A mention could not be linked to the graph (Table 10 reason 1).
    EntityLinking(String),
    /// No semantic relation could be extracted or mapped (reason 2).
    RelationExtraction(String),
    /// Aggregation needed but the extension is disabled (reason 3).
    Aggregation,
    /// Everything mapped but no subgraph match exists ("others").
    NoMatch,
}

impl Failure {
    /// Stable taxonomy bucket, used as the `reason` label of
    /// `gqa_pipeline_failures_total` and in EXPLAIN output.
    pub fn reason(&self) -> &'static str {
        match self {
            Failure::Parse => "parse",
            Failure::EntityLinking(_) => "entity_linking",
            Failure::RelationExtraction(_) => "relation_extraction",
            Failure::Aggregation => "aggregation",
            Failure::NoMatch => "no_match",
        }
    }

    /// All taxonomy buckets (for pre-registering metric series).
    pub const REASONS: [&'static str; 5] =
        ["parse", "entity_linking", "relation_extraction", "aggregation", "no_match"];
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Failure::EntityLinking(text) => write!(f, "entity_linking ({text:?})"),
            Failure::RelationExtraction(phrase) => {
                write!(f, "relation_extraction ({phrase:?})")
            }
            other => f.write_str(other.reason()),
        }
    }
}

/// A cooperative per-request deadline expired. Raised by
/// [`GAnswer::answer_with_deadline`] at the stage checkpoint that first
/// observed the overrun; the stages themselves are never interrupted
/// mid-flight, so a worker thread always stays in a clean state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeadlineExceeded {
    /// The checkpoint that detected the overrun (`"start"`,
    /// `"understand"`, `"map"` or `"topk"`).
    pub stage: &'static str,
}

impl std::fmt::Display for DeadlineExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deadline exceeded at stage checkpoint {:?}", self.stage)
    }
}

impl std::error::Error for DeadlineExceeded {}

/// Check one stage boundary against an optional deadline.
fn checkpoint(deadline: Option<Instant>, stage: &'static str) -> Result<(), DeadlineExceeded> {
    match deadline {
        Some(d) if Instant::now() > d => Err(DeadlineExceeded { stage }),
        _ => Ok(()),
    }
}

/// The result of answering one question.
#[derive(Clone, Debug)]
pub struct Response {
    /// Ranked distinct answers (empty for boolean questions).
    pub answers: Vec<Answer>,
    /// Boolean verdict for yes/no questions.
    pub boolean: Option<bool>,
    /// Count for "how many" questions (aggregates extension).
    pub count: Option<usize>,
    /// The top-k matches.
    pub matches: Vec<Match>,
    /// The semantic query graph, when understanding succeeded.
    pub sqg: Option<SemanticQueryGraph>,
    /// The extracted semantic relations.
    pub relations: Vec<SemanticRelation>,
    /// Top-k SPARQL queries generated from the matches.
    pub sparql: Vec<String>,
    /// Failure reason, if unanswered.
    pub failure: Option<Failure>,
    /// The budget that tripped, when the answer is a degraded partial
    /// (best top-k found before the budget ran out). `None` means the
    /// search ran to completion.
    pub degraded: Option<BudgetKind>,
    /// Question-understanding wall time (Figure 6's first series).
    pub understanding_time: Duration,
    /// Query-evaluation wall time.
    pub evaluation_time: Duration,
    /// Query-mapping (candidate generation) wall time — the first slice
    /// of `evaluation_time`, split out for per-stage request tracing.
    pub map_time: Duration,
    /// Top-k matching wall time — the second slice of `evaluation_time`.
    pub topk_time: Duration,
    /// Fault injections that fired while answering this question (from
    /// [`gqa_fault::Exec::faults_fired`]); always 0 without a fault plan.
    pub faults_fired: u64,
    /// Top-k search instrumentation.
    pub ta_stats: TaStats,
    /// Full decision trace, when answered via [`GAnswer::answer_traced`].
    pub trace: Option<Box<QueryTrace>>,
}

impl Response {
    fn failed(failure: Failure, understanding_time: Duration, evaluation_time: Duration) -> Self {
        Response {
            answers: Vec::new(),
            boolean: None,
            count: None,
            matches: Vec::new(),
            sqg: None,
            relations: Vec::new(),
            sparql: Vec::new(),
            failure: Some(failure),
            degraded: None,
            understanding_time,
            evaluation_time,
            map_time: Duration::ZERO,
            topk_time: Duration::ZERO,
            faults_fired: 0,
            ta_stats: TaStats::default(),
            trace: None,
        }
    }

    /// Total response time (both stages).
    pub fn total_time(&self) -> Duration {
        self.understanding_time + self.evaluation_time
    }

    /// Convenience: answer texts.
    pub fn texts(&self) -> Vec<&str> {
        self.answers.iter().map(|a| a.text.as_str()).collect()
    }
}

/// Result of the question-understanding stage alone (exposed for the
/// Figure-6 / complexity benchmarks).
#[derive(Clone, Debug)]
pub struct Understanding {
    /// The dependency tree.
    pub tree: DepTree,
    /// Question-level analysis.
    pub analysis: QuestionAnalysis,
    /// Extracted, coreference-resolved semantic relations.
    pub relations: Vec<SemanticRelation>,
    /// The semantic query graph.
    pub sqg: SemanticQueryGraph,
}

/// How a [`GAnswer`] holds its store: borrowed (the historical embedding
/// API — the caller keeps ownership) or shared (`Arc`, so the serving
/// layer can build `GAnswer<'static>` values and atomically swap them
/// behind a [`gqa_rdf::Snapshot`] without a lifetime tying each one to a
/// stack frame). Everything downstream sees `&Store` either way.
enum StoreRef<'s> {
    Borrowed(&'s Store),
    Shared(Arc<Store>),
}

impl Deref for StoreRef<'_> {
    type Target = Store;
    fn deref(&self) -> &Store {
        match self {
            StoreRef::Borrowed(s) => s,
            StoreRef::Shared(s) => s,
        }
    }
}

/// The graph data-driven RDF Q/A system.
pub struct GAnswer<'s> {
    store: StoreRef<'s>,
    schema: Schema,
    linker: Linker,
    literals: LiteralIndex,
    dict: ParaphraseDict,
    parser: DependencyParser,
    obs: Obs,
    /// Configuration (public for ablation experiments).
    pub config: GAnswerConfig,
}

impl<'s> GAnswer<'s> {
    /// Build the system over a store with a mined paraphrase dictionary.
    /// Observability is off (every probe is a no-op); see
    /// [`GAnswer::with_obs`].
    pub fn new(store: &'s Store, dict: ParaphraseDict, config: GAnswerConfig) -> Self {
        Self::with_obs(store, dict, config, Obs::disabled())
    }

    /// Like [`GAnswer::new`] but with an observability handle. When `obs`
    /// is enabled this also turns on the store's and linker's own counters
    /// and pre-registers the headline series so an exposition is never
    /// missing them.
    pub fn with_obs(
        store: &'s Store,
        dict: ParaphraseDict,
        config: GAnswerConfig,
        obs: Obs,
    ) -> Self {
        Self::build(StoreRef::Borrowed(store), dict, config, obs)
    }

    /// Like [`GAnswer::with_obs`] but taking shared ownership of the
    /// store. The result is `'static`, which is what lets the serving
    /// layer park whole systems behind an epoch snapshot
    /// ([`gqa_rdf::Snapshot`]) and atomically swap them on reload while
    /// in-flight requests keep using the one they loaded.
    pub fn shared(
        store: Arc<Store>,
        dict: ParaphraseDict,
        config: GAnswerConfig,
        obs: Obs,
    ) -> GAnswer<'static> {
        GAnswer::build(StoreRef::Shared(store), dict, config, obs)
    }

    fn build(store: StoreRef<'s>, dict: ParaphraseDict, config: GAnswerConfig, obs: Obs) -> Self {
        let schema = Schema::new(&store);
        let mut linker = Linker::new(&store, &schema);
        linker.set_max_candidates(config.max_link_candidates);
        linker.set_fault_plan(config.fault.clone());
        let literals = LiteralIndex::new(&store);
        if obs.is_enabled() {
            store.metrics().enable();
            linker.metrics().enable();
            obs.counter("gqa_pipeline_questions_total", &[]);
            for reason in Failure::REASONS {
                obs.counter("gqa_pipeline_failures_total", &[("reason", reason)]);
            }
            for kind in BudgetKind::ALL {
                obs.counter("gqa_pipeline_degraded_total", &[("budget", kind.as_str())]);
            }
            for stage in ["understand", "map", "topk"] {
                obs.histogram(
                    "gqa_pipeline_stage_duration_seconds",
                    &[("stage", stage)],
                    DURATION_BUCKETS,
                );
            }
            obs.counter("gqa_topk_probes_total", &[]);
            obs.counter("gqa_core_ta_parallel_probes_total", &[]);
            obs.histogram(
                "gqa_core_ta_probe_duration_seconds",
                &[("round", "1")],
                DURATION_BUCKETS,
            );
            obs.counter("gqa_topk_rounds_total", &[]);
            obs.counter("gqa_topk_pruned_candidates_total", &[]);
            obs.counter("gqa_topk_early_terminations_total", &[]);
            for index in ["spo", "pos", "osp"] {
                obs.counter("gqa_rdf_index_lookups_total", &[("index", index)]);
            }
            obs.counter("gqa_rdf_bfs_expansions_total", &[]);
        }
        GAnswer {
            store,
            schema,
            linker,
            literals,
            dict,
            parser: DependencyParser::new(),
            obs,
            config,
        }
    }

    /// The observability handle (disabled unless built via
    /// [`GAnswer::with_obs`]).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Copy the store's and linker's own counters into the obs registry as
    /// absolute values. Call before exposition; a no-op when obs is
    /// disabled.
    pub fn publish_metrics(&self) {
        self.publish_metrics_to(&self.obs);
    }

    /// Like [`GAnswer::publish_metrics`] but publishing through an
    /// explicit handle. The multi-tenant serving layer passes each
    /// tenant's scoped handle here so every store-level series carries
    /// `store="<name>"` even when the system itself was assembled with
    /// an unscoped one.
    pub fn publish_metrics_to(&self, obs: &Obs) {
        if !obs.is_enabled() {
            return;
        }
        // Everything goes through an `Obs` handle (not the registry
        // directly) so a tenant-scoped handle stamps each series with
        // its `store="<name>"` base label.
        let s = self.store.metrics().snapshot();
        obs.set_counter("gqa_rdf_index_lookups_total", &[("index", "spo")], s.spo_lookups);
        obs.set_counter("gqa_rdf_index_lookups_total", &[("index", "pos")], s.pos_lookups);
        obs.set_counter("gqa_rdf_index_lookups_total", &[("index", "osp")], s.osp_lookups);
        obs.set_counter("gqa_rdf_bfs_expansions_total", &[], s.bfs_expansions);
        let b = self.store.section_bytes();
        obs.gauge("gqa_rdf_store_bytes", &[("section", "dict")]).set(b.dict as i64);
        obs.gauge("gqa_rdf_store_bytes", &[("section", "triples")]).set(b.triples as i64);
        obs.gauge("gqa_rdf_store_bytes", &[("section", "indexes")]).set(b.indexes.total() as i64);
        obs.gauge("gqa_rdf_store_bytes", &[("section", "overlay")]).set(b.overlay as i64);
        let l = self.linker.metrics().snapshot();
        obs.set_counter("gqa_linker_link_calls_total", &[], l.link_calls);
        obs.set_counter("gqa_linker_link_hits_total", &[], l.hits);
        obs.set_counter("gqa_linker_link_misses_total", &[], l.misses);
        obs.set_counter("gqa_linker_candidates_kept_total", &[], l.candidates_kept);
        obs.set_counter("gqa_linker_candidates_dropped_total", &[], l.candidates_dropped);
    }

    /// The underlying store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The schema view.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The paraphrase dictionary.
    pub fn dict(&self) -> &ParaphraseDict {
        &self.dict
    }

    /// Stage 1 — question understanding (§4.1): dependency parse, relation
    /// extraction, coreference, `Q^S` construction.
    pub fn understand(&self, question: &str) -> Option<Understanding> {
        let tree = self.parser.parse(question)?;
        let analysis = QuestionAnalysis::of(&tree);
        let embeddings = find_embeddings(&tree, &self.dict);
        let mut relations: Vec<SemanticRelation> =
            embeddings.iter().filter_map(|e| find_arguments(&tree, e, self.config.rules)).collect();
        coref::resolve(&tree, &mut relations);
        let sqg = sqg::build(
            &tree,
            &relations,
            &analysis,
            SqgOptions { implicit_edges: self.config.implicit_edges },
        );
        Some(Understanding { tree, analysis, relations, sqg })
    }

    /// Stage 2 — phrase mapping (§4.2.1).
    pub fn map(&self, sqg: &SemanticQueryGraph) -> Result<MappedQuery, MappingError> {
        map_query(sqg, &self.linker, &self.literals, &self.dict, &self.config.mapping)
    }

    /// Phrase mapping with extra nodes protected from the implicit-edge
    /// drop (used by the comparison extension, whose measured noun is
    /// deliberately unlinkable).
    pub fn map_protecting(
        &self,
        sqg: &SemanticQueryGraph,
        protected_nodes: &[usize],
    ) -> Result<MappedQuery, MappingError> {
        let mut opts = self.config.mapping.clone();
        opts.protected_nodes.extend_from_slice(protected_nodes);
        map_query(sqg, &self.linker, &self.literals, &self.dict, &opts)
    }

    /// Stage 2 — top-k evaluation (§4.2.2), using the configured thread
    /// budget.
    pub fn evaluate(&self, mapped: &MappedQuery) -> (Vec<Match>, TaStats) {
        self.evaluate_traced(mapped, None, &self.config.concurrency, &Exec::none())
    }

    fn evaluate_traced(
        &self,
        mapped: &MappedQuery,
        trace: Option<&mut QueryTrace>,
        conc: &Concurrency,
        exec: &Exec,
    ) -> (Vec<Match>, TaStats) {
        let mcfg = MatcherConfig {
            neighborhood_pruning: self.config.neighborhood_pruning,
            ..self.config.matcher
        };
        top_k_with(
            self.store(),
            &self.schema,
            mapped,
            &mcfg,
            self.config.top_k,
            conc,
            &self.obs,
            trace,
            exec,
        )
    }

    /// Record a failure: bump its taxonomy counter, label the trace.
    fn fail(
        &self,
        failure: Failure,
        understanding_time: Duration,
        evaluation_time: Duration,
        trace: Option<&mut QueryTrace>,
    ) -> Response {
        self.obs.counter("gqa_pipeline_failures_total", &[("reason", failure.reason())]).inc();
        if let Some(t) = trace {
            t.failure = Some(failure.to_string());
        }
        Response::failed(failure, understanding_time, evaluation_time)
    }

    fn observe_stage(&self, stage: &str, elapsed: Duration) {
        self.obs
            .histogram("gqa_pipeline_stage_duration_seconds", &[("stage", stage)], DURATION_BUCKETS)
            .observe(elapsed.as_secs_f64());
    }

    /// Answer a natural-language question end to end.
    pub fn answer(&self, question: &str) -> Response {
        self.answer_impl(question, None, &self.config.concurrency, None).expect("no deadline given")
    }

    /// [`GAnswer::answer`], additionally recording a full [`QueryTrace`]
    /// into the response (the `:explain` REPL view). Tracing is independent
    /// of the obs handle: it works on a plain [`GAnswer::new`] system too.
    pub fn answer_traced(&self, question: &str) -> Response {
        let mut trace = QueryTrace::new(question);
        trace.notes.push(self.store_note());
        let mut r = self
            .answer_impl(question, Some(&mut trace), &self.config.concurrency, None)
            .expect("no deadline given");
        r.trace = Some(Box::new(trace));
        r
    }

    /// One-line store summary for EXPLAIN traces: triple count and
    /// estimated resident bytes per section.
    fn store_note(&self) -> String {
        let b = self.store.section_bytes();
        format!(
            "store: {} triples; resident bytes dict={} triples={} indexes={} overlay={} total={}",
            self.store.len(),
            b.dict,
            b.triples,
            b.indexes.total(),
            b.overlay,
            b.total()
        )
    }

    /// [`GAnswer::answer`] under a cooperative deadline, checked at stage
    /// boundaries (entry, post-understand, post-map, post-topk). The stages
    /// themselves run to completion — a checkpoint past the deadline
    /// abandons the request with [`DeadlineExceeded`] instead of returning
    /// a late response. This is the serving layer's 504 path.
    pub fn answer_with_deadline(
        &self,
        question: &str,
        deadline: Instant,
    ) -> Result<Response, DeadlineExceeded> {
        self.answer_impl(question, None, &self.config.concurrency, Some(deadline))
    }

    /// [`GAnswer::answer_with_deadline`] with an EXPLAIN trace attached on
    /// success (the server's `explain: true` request option).
    pub fn answer_traced_with_deadline(
        &self,
        question: &str,
        deadline: Instant,
    ) -> Result<Response, DeadlineExceeded> {
        let mut trace = QueryTrace::new(question);
        trace.notes.push(self.store_note());
        let mut r =
            self.answer_impl(question, Some(&mut trace), &self.config.concurrency, Some(deadline))?;
        r.trace = Some(Box::new(trace));
        Ok(r)
    }

    /// Answer a batch of independent questions, fanning the *questions*
    /// out over the configured thread budget (the throughput path for
    /// heavy traffic). Inside a batch worker the per-question TA runs
    /// serially — question-level parallelism already saturates the budget,
    /// and nesting would oversubscribe it. Responses come back in question
    /// order and are identical to calling [`GAnswer::answer`] in a loop.
    pub fn answer_all(&self, questions: &[&str]) -> Vec<Response> {
        let workers = self.config.concurrency.workers_for(questions.len());
        if workers <= 1 {
            return questions.iter().map(|q| self.answer(q)).collect();
        }
        let chunk = questions.len().div_ceil(workers);
        let mut out = Vec::with_capacity(questions.len());
        crossbeam::scope(|scope| {
            let handles: Vec<_> = questions
                .chunks(chunk)
                .map(|qs| {
                    scope.spawn(move |_| {
                        qs.iter()
                            .map(|q| {
                                self.answer_impl(q, None, &Concurrency::serial(), None)
                                    .expect("no deadline given")
                            })
                            .collect::<Vec<Response>>()
                    })
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("answer_all worker panicked"));
            }
        })
        .expect("answer_all scope");
        out
    }

    fn answer_impl(
        &self,
        question: &str,
        trace: Option<&mut QueryTrace>,
        conc: &Concurrency,
        deadline: Option<Instant>,
    ) -> Result<Response, DeadlineExceeded> {
        let _span = self.obs.span("pipeline.answer");
        self.obs.counter("gqa_pipeline_questions_total", &[]).inc();
        checkpoint(deadline, "start")?;
        // Per-question execution context: budgets, deadline, and fault
        // sites are all checked *inside* the stage loops, so an overrun
        // cuts work mid-stage instead of only at the next checkpoint.
        let exec = Exec::new(&self.config.fault, self.config.budget, deadline);
        let mut r = self.answer_stages(question, trace, conc, deadline, &exec)?;
        r.faults_fired = exec.faults_fired();
        Ok(r)
    }

    fn answer_stages(
        &self,
        question: &str,
        mut trace: Option<&mut QueryTrace>,
        conc: &Concurrency,
        deadline: Option<Instant>,
        exec: &Exec,
    ) -> Result<Response, DeadlineExceeded> {
        let t0 = Instant::now();
        let u = {
            let _s = self.obs.span("pipeline.understand");
            self.understand(question)
        };
        let Some(u) = u else {
            self.observe_stage("understand", t0.elapsed());
            return Ok(self.fail(
                Failure::Parse,
                t0.elapsed(),
                Duration::ZERO,
                trace.as_deref_mut(),
            ));
        };
        if let Some(t) = trace.as_deref_mut() {
            t.parse = Some(ParseTrace {
                tokens: u.tree.tokens.iter().map(|tok| tok.text.clone()).collect(),
                shape: format!("{:?}", u.analysis.shape),
                target: Some(u.tree.token(u.analysis.target).text.clone()),
            });
            t.relations = u
                .relations
                .iter()
                .map(|r| RelationTrace {
                    phrase: r.phrase.clone(),
                    arg1: r.arg1.text.clone(),
                    arg2: r.arg2.text.clone(),
                })
                .collect();
        }

        // Aggregation gate (paper behaviour: these fail; extension: handled
        // after matching). A superlative *inside* a relation-phrase
        // embedding is not an aggregation operator — "the largest city in
        // Australia" maps to ⟨largestCity⟩ directly.
        let aggregation = match u.analysis.aggregation {
            Some(Aggregation::Superlative(node))
                if u.relations.iter().any(|r| r.embedding.contains(&node)) =>
            {
                None
            }
            other => other,
        };
        if aggregation.is_some() && !self.config.enable_aggregates {
            self.observe_stage("understand", t0.elapsed());
            return Ok(self.fail(
                Failure::Aggregation,
                t0.elapsed(),
                Duration::ZERO,
                trace.as_deref_mut(),
            ));
        }
        let understanding_time = t0.elapsed();
        self.observe_stage("understand", understanding_time);
        checkpoint(deadline, "understand")?;

        let t1 = Instant::now();
        let protected: Vec<usize> = match aggregation {
            Some(Aggregation::Comparison { node, .. }) if self.config.enable_aggregates => {
                vec![node]
            }
            _ => Vec::new(),
        };
        let mut opts = self.config.mapping.clone();
        opts.protected_nodes.extend_from_slice(&protected);
        let mapping_result = {
            let _s = self.obs.span("pipeline.map");
            let term_label = |id| self.store.term(id).to_string();
            let path_label = |p: &gqa_rdf::PathPattern| p.display(self.store()).to_string();
            let sink = trace.as_deref_mut().map(|t| TraceSink {
                trace: t,
                term_label: &term_label,
                path_label: &path_label,
            });
            map_query_traced_with(
                &u.sqg,
                &self.linker,
                &self.literals,
                &self.dict,
                &opts,
                sink,
                exec,
            )
        };
        let map_time = t1.elapsed();
        self.observe_stage("map", map_time);
        let mapped = match mapping_result {
            Ok(m) => m,
            Err(MappingError::UnlinkableMention { text, .. }) => {
                let mut r = self.fail(
                    Failure::EntityLinking(text),
                    understanding_time,
                    map_time,
                    trace.as_deref_mut(),
                );
                r.map_time = map_time;
                return Ok(r);
            }
            Err(MappingError::UnknownRelation { phrase, .. }) => {
                let mut r = self.fail(
                    Failure::RelationExtraction(phrase),
                    understanding_time,
                    map_time,
                    trace.as_deref_mut(),
                );
                r.map_time = map_time;
                return Ok(r);
            }
        };
        checkpoint(deadline, "map")?;

        let t2 = Instant::now();
        let (mut matches, ta_stats) = {
            let _s = self.obs.span("pipeline.topk");
            self.evaluate_traced(&mapped, trace.as_deref_mut(), conc, exec)
        };
        let topk_time = t2.elapsed();
        self.observe_stage("topk", topk_time);
        self.obs.counter("gqa_topk_probes_total", &[]).add(ta_stats.probes as u64);
        self.obs.counter("gqa_topk_rounds_total", &[]).add(ta_stats.rounds as u64);
        self.obs
            .counter("gqa_topk_pruned_candidates_total", &[])
            .add(ta_stats.pruned_candidates as u64);
        if ta_stats.early_terminated {
            self.obs.counter("gqa_topk_early_terminations_total", &[]).inc();
        }
        // A tripped deadline surfaces as the 504 path via the stage
        // checkpoint below (the in-loop trip only cut the remaining
        // work short); any other tripped budget degrades the answer to
        // whatever partial top-k was accumulated.
        let degraded = exec.tripped().filter(|k| *k != BudgetKind::Deadline);
        if let Some(kind) = degraded {
            self.obs.counter("gqa_pipeline_degraded_total", &[("budget", kind.as_str())]).inc();
        }
        checkpoint(deadline, "topk")?;

        // Aggregates extension.
        let mut count_result = None;
        if self.config.enable_aggregates {
            let target = mapped.sqg.target().unwrap_or(0);
            match aggregation {
                Some(Aggregation::Count) => {
                    count_result = Some(aggregates::count(&matches, target));
                }
                Some(Aggregation::Superlative(node)) => {
                    // Periphrastic superlatives carry the gradable adjective
                    // in the next token ("the *most populous* city").
                    let adj = match u.tree.token(node).lower.as_str() {
                        m @ ("most" | "least") if node + 1 < u.tree.len() => {
                            format!("{m} {}", u.tree.token(node + 1).lemma)
                        }
                        other => other.to_owned(),
                    };
                    match aggregates::superlative(self.store(), &matches, target, &adj) {
                        Some(kept) => matches = kept,
                        None => {
                            let mut r = self.fail(
                                Failure::Aggregation,
                                understanding_time,
                                t1.elapsed(),
                                trace.as_deref_mut(),
                            );
                            r.map_time = map_time;
                            r.topk_time = topk_time;
                            return Ok(r);
                        }
                    }
                }
                Some(Aggregation::Comparison { node, greater, value }) => {
                    // The measured noun must be a vertex of Q^S (the
                    // possessive-have rule makes it one).
                    match mapped.sqg.vertices.iter().position(|v| v.node == node) {
                        Some(vertex) => {
                            matches = aggregates::comparison(
                                self.store(),
                                &matches,
                                vertex,
                                greater,
                                value,
                            );
                        }
                        None => {
                            let mut r = self.fail(
                                Failure::Aggregation,
                                understanding_time,
                                t1.elapsed(),
                                trace.as_deref_mut(),
                            );
                            r.map_time = map_time;
                            r.topk_time = topk_time;
                            return Ok(r);
                        }
                    }
                }
                None => {}
            }
        }

        let target = mapped.sqg.target().unwrap_or(0);
        let is_boolean = u.analysis.shape == AnswerShape::Boolean;
        if matches.is_empty() && !is_boolean && count_result.is_none() {
            let mut r = self.fail(Failure::NoMatch, understanding_time, t1.elapsed(), trace);
            r.sqg = Some(u.sqg);
            r.relations = u.relations;
            r.ta_stats = ta_stats;
            r.degraded = degraded;
            r.map_time = map_time;
            r.topk_time = topk_time;
            return Ok(r);
        }

        // Answers come from the best-scoring match group (ties included):
        // lower-ranked matches use weaker candidate mappings and exist for
        // the top-k SPARQL output, not the answer set.
        let answers = if is_boolean {
            Vec::new()
        } else {
            let best = matches.first().map(|m| m.score).unwrap_or(f64::NEG_INFINITY);
            let tied: Vec<Match> =
                matches.iter().filter(|m| m.score >= best - 1e-9).cloned().collect();
            answers_from_matches(self.store(), &tied, target)
        };
        let sparql = sparql_of_matches(self.store(), &mapped, &matches, target);
        Ok(Response {
            answers,
            boolean: is_boolean.then_some(!matches.is_empty()),
            count: count_result,
            matches,
            sqg: Some(mapped.sqg.clone()),
            relations: u.relations,
            sparql,
            failure: None,
            degraded,
            understanding_time,
            evaluation_time: t1.elapsed(),
            map_time,
            topk_time,
            faults_fired: 0,
            ta_stats,
            trace: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqa_datagen::minidbp::mini_dbpedia;
    use gqa_datagen::patty::{curated_literal_mappings, mini_phrase_dataset};
    use gqa_paraphrase::dict::ParaMapping;
    use gqa_paraphrase::miner::{mine, MinerConfig};
    use gqa_rdf::PathPattern;

    fn system(store: &Store) -> GAnswer<'_> {
        system_with_obs(store, Obs::disabled())
    }

    fn system_with_obs(store: &Store, obs: Obs) -> GAnswer<'_> {
        system_configured(store, GAnswerConfig::default(), obs)
    }

    fn system_configured(store: &Store, config: GAnswerConfig, obs: Obs) -> GAnswer<'_> {
        let mut dict = mine(store, &mini_phrase_dataset(), &MinerConfig::default());
        for (phrase, pred) in curated_literal_mappings() {
            if let Some(p) = store.iri(pred) {
                dict.insert(
                    phrase.to_owned(),
                    vec![ParaMapping { path: PathPattern::single(p), tfidf: 1.0, confidence: 1.0 }],
                );
            }
        }
        GAnswer::with_obs(store, dict, config, obs)
    }

    #[test]
    fn running_example_end_to_end() {
        let store = mini_dbpedia();
        let sys = system(&store);
        let r = sys.answer("Who was married to an actor that played in Philadelphia?");
        assert!(r.failure.is_none(), "{:?}", r.failure);
        assert_eq!(r.texts(), vec!["Melanie Griffith"], "{:?}", r.answers);
        assert!(!r.sparql.is_empty());
    }

    #[test]
    fn copular_question() {
        let store = mini_dbpedia();
        let sys = system(&store);
        let r = sys.answer("Who is the mayor of Berlin?");
        assert_eq!(r.texts(), vec!["Klaus Wowereit"], "{:?}", r.failure);
    }

    #[test]
    fn boolean_question_true_and_false() {
        let store = mini_dbpedia();
        let sys = system(&store);
        let yes = sys.answer("Is Michelle Obama the wife of Barack Obama?");
        assert_eq!(yes.boolean, Some(true), "{:?}", yes.failure);
        let no = sys.answer("Is Melanie Griffith the wife of Barack Obama?");
        assert_eq!(no.boolean, Some(false), "{:?}", no.failure);
    }

    #[test]
    fn predicate_path_question() {
        let store = mini_dbpedia();
        let sys = system(&store);
        let r = sys.answer("Who is the uncle of John F. Kennedy, Jr.?");
        assert!(r.failure.is_none(), "{:?}", r.failure);
        let mut texts = r.texts();
        texts.sort_unstable();
        assert_eq!(texts, vec!["Robert F. Kennedy", "Ted Kennedy"], "{:?}", r.answers);
    }

    #[test]
    fn literal_valued_question() {
        let store = mini_dbpedia();
        let sys = system(&store);
        let r = sys.answer("How tall is Michael Jordan?");
        assert_eq!(r.texts(), vec!["1.98"], "{:?}", r.failure);
    }

    #[test]
    fn entity_linking_failure_is_reported() {
        let store = mini_dbpedia();
        let sys = system(&store);
        let r = sys.answer("In which UK city are the headquarters of the MI6?");
        assert!(
            matches!(r.failure, Some(Failure::EntityLinking(_)) | Some(Failure::NoMatch)),
            "{:?}",
            r.failure
        );
        assert!(r.answers.is_empty());
    }

    #[test]
    fn aggregation_fails_without_extension_and_works_with_it() {
        let store = mini_dbpedia();
        let sys = system(&store);
        let r = sys.answer("Who is the youngest player in the Premier League?");
        assert_eq!(r.failure, Some(Failure::Aggregation));

        let mut sys2 = system(&store);
        sys2.config.enable_aggregates = true;
        let r2 = sys2.answer("Who is the youngest player in the Premier League?");
        assert!(r2.failure.is_none(), "{:?}", r2.failure);
        assert_eq!(r2.texts(), vec!["Raheem Sterling"], "{:?}", r2.answers);
    }

    #[test]
    fn count_questions_with_extension() {
        let store = mini_dbpedia();
        let mut_dict_sys = {
            let mut s = system(&store);
            s.config.enable_aggregates = true;
            s
        };
        let r = mut_dict_sys.answer("How many companies are in Munich?");
        assert_eq!(r.count, Some(3), "{:?}", r.failure);
    }

    #[test]
    fn imperative_with_class_constraint() {
        let store = mini_dbpedia();
        let sys = system(&store);
        let r = sys.answer("Give me all cars that are produced in Germany.");
        let mut texts = r.texts();
        texts.sort_unstable();
        assert_eq!(texts, vec!["BMW 3 Series", "Volkswagen Golf"], "{:?}", r.failure);
    }

    #[test]
    fn implicit_edge_question() {
        let store = mini_dbpedia();
        let sys = system(&store);
        let r = sys.answer("Give me all companies in Munich.");
        assert_eq!(r.answers.len(), 3, "{:?} {:?}", r.failure, r.answers);
    }

    #[test]
    fn answer_all_matches_sequential_answers() {
        let store = mini_dbpedia();
        let mut sys = system(&store);
        sys.config.concurrency = Concurrency::with_threads(4);
        let questions = [
            "Who is the mayor of Berlin?",
            "Who was married to an actor that played in Philadelphia?",
            "Is Michelle Obama the wife of Barack Obama?",
            "Who is the uncle of John F. Kennedy, Jr.?",
            "How tall is Michael Jordan?",
            "Give me all cars that are produced in Germany.",
        ];
        let batch = sys.answer_all(&questions);
        assert_eq!(batch.len(), questions.len());
        for (q, r) in questions.iter().zip(&batch) {
            let solo = sys.answer(q);
            assert_eq!(r.texts(), solo.texts(), "{q}");
            assert_eq!(r.boolean, solo.boolean, "{q}");
            assert_eq!(r.failure, solo.failure, "{q}");
            assert_eq!(r.matches.len(), solo.matches.len(), "{q}");
            for (a, b) in r.matches.iter().zip(&solo.matches) {
                assert_eq!(a.bindings, b.bindings, "{q}");
                assert!((a.score - b.score).abs() < 1e-12, "{q}");
            }
        }
    }

    #[test]
    fn parallel_answer_equals_serial_answer() {
        let store = mini_dbpedia();
        let questions = [
            "Who is the mayor of Berlin?",
            "Who was married to an actor that played in Philadelphia?",
            "Who is the uncle of John F. Kennedy, Jr.?",
        ];
        let mut serial_sys = system(&store);
        serial_sys.config.concurrency = Concurrency::serial();
        let mut par_sys = system(&store);
        par_sys.config.concurrency = Concurrency::with_threads(4);
        for q in questions {
            let s = serial_sys.answer(q);
            let p = par_sys.answer(q);
            assert_eq!(s.texts(), p.texts(), "{q}");
            assert_eq!(s.ta_stats.rounds, p.ta_stats.rounds, "{q}");
            assert_eq!(s.ta_stats.probes, p.ta_stats.probes, "{q}");
            assert_eq!(s.ta_stats.early_terminated, p.ta_stats.early_terminated, "{q}");
            assert_eq!(s.ta_stats.threshold_history, p.ta_stats.threshold_history, "{q}");
        }
    }

    #[test]
    fn expired_deadline_aborts_at_a_checkpoint() {
        let store = mini_dbpedia();
        let sys = system(&store);
        let err = sys
            .answer_with_deadline(
                "Who is the mayor of Berlin?",
                Instant::now() - Duration::from_millis(1),
            )
            .unwrap_err();
        assert_eq!(err.stage, "start");
        let err = sys
            .answer_traced_with_deadline(
                "Who is the mayor of Berlin?",
                Instant::now() - Duration::from_millis(1),
            )
            .unwrap_err();
        assert_eq!(err.stage, "start");
    }

    #[test]
    fn generous_deadline_answers_identically() {
        let store = mini_dbpedia();
        let sys = system(&store);
        let q = "Who is the mayor of Berlin?";
        let plain = sys.answer(q);
        let timed = sys.answer_with_deadline(q, Instant::now() + Duration::from_secs(60)).unwrap();
        assert_eq!(timed.texts(), plain.texts());
        assert_eq!(timed.failure, plain.failure);
    }

    #[test]
    fn timings_are_populated() {
        let store = mini_dbpedia();
        let sys = system(&store);
        let r = sys.answer("Who is the mayor of Berlin?");
        assert!(r.total_time() >= r.understanding_time);
    }

    #[test]
    fn traced_answer_carries_a_full_explain_report() {
        let store = mini_dbpedia();
        let sys = system(&store);
        let r = sys.answer_traced("Who is the mayor of Berlin?");
        assert!(r.failure.is_none(), "{:?}", r.failure);
        let trace = r.trace.expect("trace populated");
        let parse = trace.parse.as_ref().expect("parse recorded");
        assert!(parse.tokens.iter().any(|t| t == "Berlin"), "{:?}", parse.tokens);
        assert!(!trace.relations.is_empty());
        assert!(!trace.vertex_candidates.is_empty());
        assert!(!trace.ta.is_empty(), "TA rounds recorded");
        let report = trace.render();
        for needle in ["EXPLAIN", "theta=", "upbound="] {
            assert!(report.contains(needle), "missing {needle:?} in:\n{report}");
        }
    }

    #[test]
    fn traced_failure_is_labelled() {
        let store = mini_dbpedia();
        let sys = system(&store);
        let r = sys.answer_traced("Who is the youngest player in the Premier League?");
        assert_eq!(r.failure, Some(Failure::Aggregation));
        let trace = r.trace.expect("trace populated");
        assert_eq!(trace.failure.as_deref(), Some("aggregation"));
    }

    /// A tight frontier budget on a multi-hop question trips mid-search
    /// and degrades to a partial top-k: every match returned is one the
    /// unbudgeted run also finds, the tripped budget is named in the
    /// response, and the degradation is counted in metrics.
    #[test]
    fn tight_frontier_budget_degrades_to_partial_topk() {
        let store = mini_dbpedia();
        let q = "Who was married to an actor that played in Philadelphia?";
        let full = system(&store).answer(q);
        assert!(full.degraded.is_none());

        let mut sys = system_with_obs(&store, Obs::new());
        sys.config.budget.max_frontier = 8;
        let r = sys.answer(q);
        assert_eq!(r.degraded, Some(BudgetKind::Frontier), "failure: {:?}", r.failure);
        assert!(r.matches.len() <= full.matches.len());
        for m in &r.matches {
            assert!(
                full.matches
                    .iter()
                    .any(|f| f.bindings == m.bindings && f.score.to_bits() == m.score.to_bits()),
                "degraded match not in unbudgeted result set: {m:?}"
            );
        }
        let text = sys.obs().prometheus();
        assert!(
            text.contains("gqa_pipeline_degraded_total{budget=\"frontier\"} 1"),
            "missing degraded counter in exposition:\n{text}"
        );
    }

    /// A TA-round budget of one cuts the round loop after the first
    /// round; the partial top-k still ranks whatever the first round
    /// produced.
    #[test]
    fn ta_round_budget_caps_rounds() {
        let store = mini_dbpedia();
        let q = "Who was married to an actor that played in Philadelphia?";
        let full = system(&store).answer(q);
        assert!(full.ta_stats.rounds > 1, "question too easy for this test");

        let mut sys = system(&store);
        sys.config.budget.max_ta_rounds = 1;
        let r = sys.answer(q);
        assert!(r.ta_stats.rounds <= 1, "rounds: {}", r.ta_stats.rounds);
        assert_eq!(r.degraded, Some(BudgetKind::TaRounds));
    }

    /// A candidate cap truncates per-phrase mapping lists without
    /// stopping the search: the answer may weaken but the pipeline runs
    /// to completion and names the tripped budget.
    #[test]
    fn candidate_budget_degrades_without_stopping() {
        let store = mini_dbpedia();
        let mut sys = system(&store);
        sys.config.budget.max_candidates = 1;
        let r = sys.answer("Who was married to an actor that played in Philadelphia?");
        assert_eq!(r.degraded, Some(BudgetKind::Candidates), "failure: {:?}", r.failure);
    }

    /// Unlimited budgets and an empty fault plan answer byte-identically
    /// to a system that never heard of either.
    #[test]
    fn inert_budget_and_plan_change_nothing() {
        let store = mini_dbpedia();
        let plain = system(&store);
        let mut cfg = plain.config.clone();
        cfg.fault = FaultPlan::parse("", 42).unwrap();
        cfg.budget = Budget::unlimited();
        let wired = GAnswer::new(&store, plain.dict().clone(), cfg);
        for q in [
            "Who is the mayor of Berlin?",
            "Who was married to an actor that played in Philadelphia?",
        ] {
            let a = plain.answer(q);
            let b = wired.answer(q);
            assert_eq!(a.texts(), b.texts(), "{q}");
            assert_eq!(a.matches.len(), b.matches.len(), "{q}");
            for (x, y) in a.matches.iter().zip(&b.matches) {
                assert_eq!(x.bindings, y.bindings, "{q}");
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "{q}");
            }
            assert_eq!(a.ta_stats.rounds, b.ta_stats.rounds, "{q}");
        }
    }

    /// Injected latency inside TA probes must not stretch a deadlined
    /// request to the full (un-deadlined) duration: the in-loop deadline
    /// checks cut the stage mid-flight and the request 504s promptly.
    #[test]
    fn injected_probe_latency_still_honors_deadline_mid_stage() {
        let store = mini_dbpedia();
        let mut sys = system(&store);
        sys.config.fault = FaultPlan::parse("ta.probe:latency:1.0:50", 1).unwrap();
        let q = "Who was married to an actor that played in Philadelphia?";
        let t = Instant::now();
        let result = sys.answer_with_deadline(q, Instant::now() + Duration::from_millis(100));
        let elapsed = t.elapsed();
        assert!(result.is_err(), "expected a deadline overrun, got {result:?}");
        // Far below the many-probes x 50 ms an uncut run would take.
        assert!(elapsed < Duration::from_millis(1500), "took {elapsed:?}");
    }

    /// Injected linker failures surface as the entity-linking failure
    /// bucket, never as a panic or a wrong answer.
    #[test]
    fn injected_linker_errors_fail_cleanly() {
        let store = mini_dbpedia();
        // The linker captures the plan at construction, so configure
        // up front (post-hoc `config.fault` edits reach every other site).
        let cfg = GAnswerConfig {
            fault: FaultPlan::parse("linker.lookup:error:1.0", 3).unwrap(),
            ..GAnswerConfig::default()
        };
        let sys = system_configured(&store, cfg, Obs::disabled());
        let r = sys.answer("Who is the mayor of Berlin?");
        assert!(
            matches!(r.failure, Some(Failure::EntityLinking(_)) | Some(Failure::NoMatch)),
            "{:?}",
            r.failure
        );
        assert!(r.answers.is_empty());
    }

    #[test]
    fn obs_exposition_contains_the_headline_series() {
        let store = mini_dbpedia();
        let sys = system_with_obs(&store, Obs::new());
        let ok = sys.answer("Who is the mayor of Berlin?");
        assert!(ok.failure.is_none(), "{:?}", ok.failure);
        let fail = sys.answer("Who is the youngest player in the Premier League?");
        assert_eq!(fail.failure, Some(Failure::Aggregation));
        sys.publish_metrics();
        let text = sys.obs().prometheus();
        for needle in [
            "gqa_pipeline_questions_total 2",
            "gqa_pipeline_failures_total{reason=\"aggregation\"} 1",
            "gqa_pipeline_failures_total{reason=\"no_match\"} 0",
            "gqa_pipeline_stage_duration_seconds_count{stage=\"understand\"}",
            "gqa_pipeline_stage_duration_seconds_count{stage=\"map\"}",
            "gqa_pipeline_stage_duration_seconds_count{stage=\"topk\"}",
            "gqa_topk_probes_total",
            "gqa_rdf_index_lookups_total{index=\"spo\"}",
            "gqa_linker_link_calls_total",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in exposition:\n{text}");
        }
        // The store actually counted lookups (metrics were enabled).
        assert!(store.metrics().snapshot().spo_lookups > 0);
        // Spans were recorded with dotted stage names.
        let spans = sys.obs().span_records();
        assert!(spans.iter().any(|s| s.name == "pipeline.answer"));
        assert!(spans.iter().any(|s| s.name == "pipeline.topk"));
    }
}
