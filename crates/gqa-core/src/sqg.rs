//! The semantic query graph `Q^S` (Definition 2).
//!
//! Vertices carry argument phrases, edges carry relation phrases; two
//! relations sharing an argument (directly or through coreference) share
//! the endpoint. Beyond the paper's letter, two pragmatic additions that
//! its evaluation implies:
//!
//! * a **target-only fallback** — questions without any extractable
//!   relation ("Give me all Argentine films.") still yield a one-vertex
//!   graph for the answer variable;
//! * **implicit edges** — a vertex's leftover prepositional or adjectival
//!   modifiers that link to entities become unlabeled edges matched by any
//!   predicate ("companies *in Munich*", "books *by Kerouac*", "*Argentine*
//!   films"). They carry a fixed low confidence so labeled edges dominate
//!   scores.

use crate::semrel::{argument_text, SemanticRelation};
use gqa_nlp::question::QuestionAnalysis;
use gqa_nlp::tree::DepTree;
use gqa_nlp::{DepRel, Pos};
use std::fmt;

/// A vertex of `Q^S`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SqgVertex {
    /// Head node in the dependency tree.
    pub node: usize,
    /// Argument mention text (lemmatized NP).
    pub text: String,
    /// Is the argument a wh-word?
    pub is_wh: bool,
    /// Is this the answer variable?
    pub is_target: bool,
    /// Does the mention contain a proper noun? (drives the
    /// unlinkable-mention failure policy)
    pub is_proper: bool,
}

/// An edge of `Q^S`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SqgEdge {
    /// Index of the first endpoint (the relation's arg1).
    pub from: usize,
    /// Index of the second endpoint (arg2).
    pub to: usize,
    /// The relation phrase `(dictionary id, text)`; `None` for an implicit
    /// (wildcard) edge.
    pub phrase: Option<(usize, String)>,
}

/// The semantic query graph.
#[derive(Clone, Debug, Default)]
pub struct SemanticQueryGraph {
    /// Vertices.
    pub vertices: Vec<SqgVertex>,
    /// Edges.
    pub edges: Vec<SqgEdge>,
}

impl SemanticQueryGraph {
    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Index of the target vertex, if any.
    pub fn target(&self) -> Option<usize> {
        self.vertices.iter().position(|v| v.is_target)
    }

    /// Edges incident to vertex `i`.
    pub fn incident(&self, i: usize) -> impl Iterator<Item = (usize, &SqgEdge)> {
        self.edges.iter().enumerate().filter(move |(_, e)| e.from == i || e.to == i)
    }

    /// Is the graph connected? (On an empty graph: true.)
    pub fn is_connected(&self) -> bool {
        if self.vertices.len() <= 1 {
            return true;
        }
        let mut seen = vec![false; self.vertices.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for (_, e) in self.incident(v) {
                let o = if e.from == v { e.to } else { e.from };
                if !seen[o] {
                    seen[o] = true;
                    stack.push(o);
                }
            }
        }
        seen.into_iter().all(|x| x)
    }
}

impl fmt::Display for SemanticQueryGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, v) in self.vertices.iter().enumerate() {
            writeln!(
                f,
                "v{i}: {:?}{}{}",
                v.text,
                if v.is_wh { " [wh]" } else { "" },
                if v.is_target { " [target]" } else { "" }
            )?;
        }
        for e in &self.edges {
            match &e.phrase {
                Some((_, p)) => writeln!(f, "v{} --{:?}-- v{}", e.from, p, e.to)?,
                None => writeln!(f, "v{} --*-- v{}", e.from, e.to)?,
            }
        }
        Ok(())
    }
}

/// Options for graph construction.
#[derive(Clone, Copy, Debug)]
pub struct SqgOptions {
    /// Add implicit wildcard edges from leftover modifiers.
    pub implicit_edges: bool,
}

impl Default for SqgOptions {
    fn default() -> Self {
        SqgOptions { implicit_edges: true }
    }
}

/// Build `Q^S` from coreference-resolved semantic relations.
pub fn build(
    tree: &DepTree,
    relations: &[SemanticRelation],
    analysis: &QuestionAnalysis,
    opts: SqgOptions,
) -> SemanticQueryGraph {
    let mut g = SemanticQueryGraph::default();

    let vertex_of = |g: &mut SemanticQueryGraph, node: usize, text: &str| -> usize {
        if let Some(i) = g.vertices.iter().position(|v| v.node == node) {
            return i;
        }
        let is_wh = tree.pos(node).is_wh() && tree.token(node).lower != "that";
        let span_has_proper = {
            let mut has = tree.pos(node) == Pos::Nnp;
            let mut stack = vec![node];
            while let Some(x) = stack.pop() {
                for c in tree.children(x) {
                    if matches!(tree.rels[c], DepRel::Nn | DepRel::Amod | DepRel::Num) {
                        has |= tree.pos(c) == Pos::Nnp;
                        stack.push(c);
                    }
                }
            }
            has
        };
        g.vertices.push(SqgVertex {
            node,
            text: text.to_owned(),
            is_wh,
            is_target: false,
            is_proper: span_has_proper,
        });
        g.vertices.len() - 1
    };

    // Edges from relations (deduplicated).
    for r in relations {
        let a = vertex_of(&mut g, r.arg1.node, &r.arg1.text);
        let b = vertex_of(&mut g, r.arg2.node, &r.arg2.text);
        if a == b {
            continue;
        }
        let edge = SqgEdge { from: a, to: b, phrase: Some((r.phrase_id, r.phrase.clone())) };
        if !g.edges.contains(&edge) {
            g.edges.push(edge);
        }
    }

    // Target: an existing vertex at the analysis target node, the wh
    // vertex, or (fallback) a fresh vertex for the target node.
    let covered_nodes: Vec<usize> =
        relations.iter().flat_map(|r| r.embedding.iter().copied()).collect();
    let mut target_node = resolve_target_node(tree, analysis.target);
    // Copular identity: a wh subject of a *nominal* root that no relation
    // phrase covers corefers with that nominal ("Who is the youngest
    // player …?" — the variable is "player"). Only applies when the wh
    // node itself carries no relation edge.
    if tree.pos(target_node).is_wh()
        && tree.rels[target_node] == DepRel::Nsubj
        && !g.vertices.iter().any(|v| v.node == target_node)
    {
        if let Some(parent) = tree.parent(target_node) {
            if tree.pos(parent).is_noun() && !covered_nodes.contains(&parent) {
                target_node = parent;
            }
        }
    }
    // Boolean questions have no answer variable: every vertex is a
    // constant and the verdict is "does any match exist".
    if analysis.shape != gqa_nlp::question::AnswerShape::Boolean {
        let ti = g
            .vertices
            .iter()
            .position(|v| v.node == target_node)
            .or_else(|| g.vertices.iter().position(|v| v.is_wh));
        match ti {
            Some(i) => g.vertices[i].is_target = true,
            None => {
                let text = argument_text(tree, target_node);
                let i = vertex_of(&mut g, target_node, &text);
                g.vertices[i].is_target = true;
            }
        }
    }

    // Implicit wildcard edges from leftover modifiers of every vertex.
    if opts.implicit_edges {
        let covered = &covered_nodes;
        for vi in 0..g.vertices.len() {
            let node = g.vertices[vi].node;
            // prep → pobj modifiers of the vertex itself…
            let mut prep_sources = vec![node];
            // …and of the clause head the vertex is subject of ("companies
            // *are in Munich*", "launch pads *are operated by NASA*").
            if matches!(tree.rels[node], DepRel::Nsubj | DepRel::Nsubjpass) {
                if let Some(parent) = tree.parent(node) {
                    if !covered.contains(&parent) {
                        prep_sources.push(parent);
                    }
                }
            }
            let preps: Vec<usize> = prep_sources
                .iter()
                .flat_map(|&src| tree.children_via(src, DepRel::Prep))
                .filter(|c| !covered.contains(c))
                .collect();
            for p in preps {
                if let Some(obj) = tree.children_via(p, DepRel::Pobj).next() {
                    add_implicit(&mut g, tree, vi, obj);
                }
            }
            // Adjectival modifiers that might denote entities ("Argentine").
            let amods: Vec<usize> = tree
                .children_via(node, DepRel::Amod)
                .filter(|&c| !covered.contains(&c) && tree.pos(c) == Pos::Jj)
                .collect();
            for a in amods {
                add_implicit(&mut g, tree, vi, a);
            }
        }
        // Possessive have: "How many children does X have?" — the object
        // relates to the subject through *some* predicate. A comparative
        // quantifier object ("more than 2000000 inhabitants") resolves to
        // the measured noun behind its "than"-phrase.
        if tree.lemma(tree.root) == "have" && !covered.contains(&tree.root) {
            let resolve_quantity = |o: usize| -> usize {
                if tree.pos(o).is_noun() {
                    return o;
                }
                tree.children_via(o, DepRel::Prep)
                    .flat_map(|p| tree.children_via(p, DepRel::Pobj))
                    .find(|&q| tree.pos(q).is_noun())
                    .unwrap_or(o)
            };
            let subj = tree.children_via(tree.root, DepRel::Nsubj).next();
            let obj = tree.children_via(tree.root, DepRel::Dobj).next().map(resolve_quantity);
            if let (Some(s), Some(o)) = (subj, obj) {
                if let Some(ov) = g.vertices.iter().position(|v| v.node == o) {
                    add_implicit(&mut g, tree, ov, s);
                } else if let Some(sv) = g.vertices.iter().position(|v| v.node == s) {
                    add_implicit(&mut g, tree, sv, o);
                }
            }
        }
    }

    g
}

/// The analysis target may be a wh-determiner inside an NP or a relation
/// word; normalize to the NP head where applicable.
fn resolve_target_node(tree: &DepTree, target: usize) -> usize {
    if tree.rels[target] == DepRel::Det {
        return tree.parent(target).unwrap_or(target);
    }
    target
}

fn add_implicit(g: &mut SemanticQueryGraph, tree: &DepTree, from: usize, other_node: usize) {
    // Existing vertex or a new one.
    let to = match g.vertices.iter().position(|v| v.node == other_node) {
        Some(i) => i,
        None => {
            let text = argument_text(tree, other_node);
            g.vertices.push(SqgVertex {
                node: other_node,
                text,
                is_wh: false,
                is_target: false,
                is_proper: tree.pos(other_node) == Pos::Nnp,
            });
            g.vertices.len() - 1
        }
    };
    if to == from {
        return;
    }
    // Skip if any edge already connects the pair.
    let dup =
        g.edges.iter().any(|e| (e.from == from && e.to == to) || (e.from == to && e.to == from));
    if !dup {
        g.edges.push(SqgEdge { from, to, phrase: None });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arguments::{find_arguments, ArgumentRules};
    use crate::coref;
    use crate::embedding::find_embeddings;
    use gqa_nlp::parser::DependencyParser;
    use gqa_paraphrase::dict::{ParaMapping, ParaphraseDict};
    use gqa_rdf::{PathPattern, TermId};

    fn dict_with(phrases: &[&str]) -> ParaphraseDict {
        let mut d = ParaphraseDict::new();
        for (i, p) in phrases.iter().enumerate() {
            d.insert(
                (*p).to_owned(),
                vec![ParaMapping {
                    path: PathPattern::single(TermId(i as u32)),
                    tfidf: 1.0,
                    confidence: 1.0,
                }],
            );
        }
        d
    }

    fn build_sqg(question: &str, phrases: &[&str]) -> SemanticQueryGraph {
        let tree = DependencyParser::new().parse(question).unwrap();
        let dict = dict_with(phrases);
        let mut rels: Vec<_> = find_embeddings(&tree, &dict)
            .iter()
            .filter_map(|e| find_arguments(&tree, e, ArgumentRules::all()))
            .collect();
        coref::resolve(&tree, &mut rels);
        let analysis = QuestionAnalysis::of(&tree);
        build(&tree, &rels, &analysis, SqgOptions::default())
    }

    #[test]
    fn running_example_is_a_path_of_three_vertices() {
        // Figure 2(c): who — actor — Philadelphia.
        let g = build_sqg(
            "Who was married to an actor that played in Philadelphia?",
            &["be married to", "play in"],
        );
        assert_eq!(g.len(), 3, "{g}");
        assert_eq!(g.edges.len(), 2, "{g}");
        assert!(g.is_connected(), "{g}");
        let who = g.vertices.iter().position(|v| v.text == "who").unwrap();
        assert!(g.vertices[who].is_target);
        assert!(g.vertices[who].is_wh);
        let actor = g.vertices.iter().position(|v| v.text == "actor").unwrap();
        assert_eq!(g.incident(actor).count(), 2, "actor joins both relations");
    }

    #[test]
    fn target_only_fallback_with_implicit_amod_edge() {
        let g = build_sqg("Give me all Argentine films.", &[]);
        assert_eq!(g.len(), 2, "{g}");
        assert_eq!(g.edges.len(), 1);
        assert!(g.edges[0].phrase.is_none(), "implicit edge");
        let films = g.target().unwrap();
        assert_eq!(g.vertices[films].text, "argentine film");
    }

    #[test]
    fn implicit_prep_edge_for_bare_np_questions() {
        let g = build_sqg("Give me all companies in Munich.", &[]);
        assert_eq!(g.len(), 2, "{g}");
        assert!(g.edges[0].phrase.is_none());
        let munich = g.vertices.iter().find(|v| v.text == "munich").unwrap();
        assert!(munich.is_proper);
    }

    #[test]
    fn leftover_np_prep_adds_edge_alongside_relations() {
        let g = build_sqg(
            "Which books by Kerouac were published by Viking Press?",
            &["be published by"],
        );
        // books —publish— Viking Press, books —*— Kerouac.
        assert_eq!(g.len(), 3, "{g}");
        assert_eq!(g.edges.len(), 2, "{g}");
        assert_eq!(g.edges.iter().filter(|e| e.phrase.is_none()).count(), 1, "{g}");
        assert!(g.is_connected());
    }

    #[test]
    fn boolean_question_has_no_wh_target() {
        let g = build_sqg("Is Michelle Obama the wife of Barack Obama?", &["wife of"]);
        assert_eq!(g.edges.len(), 1, "{g}");
        // Both endpoints are proper mentions; no answer variable exists.
        assert!(g.vertices.iter().all(|v| !v.is_wh));
        assert!(g.target().is_none(), "{g}");
    }

    #[test]
    fn display_renders() {
        let g = build_sqg("Who is the mayor of Berlin?", &["mayor of"]);
        let s = g.to_string();
        assert!(s.contains("mayor of"), "{s}");
        assert!(s.contains("[target]"), "{s}");
    }
}
