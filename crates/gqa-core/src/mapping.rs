//! Phrase mapping (§4.2.1): vertices of `Q^S` to candidate entity/class
//! lists `C_v`, edges to candidate predicate/path lists `C_e` — keeping all
//! ambiguous mappings alive.

use crate::sqg::SemanticQueryGraph;
use gqa_fault::Exec;
use gqa_linker::Linker;
use gqa_obs::{LinkTrace, PhraseCandidates, QueryTrace};
use gqa_paraphrase::dict::ParaphraseDict;
use gqa_rdf::{PathPattern, Store, TermId};
use rustc_hash::FxHashMap;

/// One vertex candidate with confidence `δ(arg, u)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VertexCandidate {
    /// Entity, class, or literal vertex.
    pub id: TermId,
    /// Confidence.
    pub confidence: f64,
    /// Class candidates bind to the class's *instances* (Def. 3 cond. 2).
    pub is_class: bool,
}

/// How a vertex of `Q^S` maps into the RDF graph.
#[derive(Clone, Debug, PartialEq)]
pub enum VertexBinding {
    /// A free variable (wh-words match "all entities and classes"; the
    /// target noun and unlinkable common nouns behave the same), optionally
    /// constrained to classes.
    Variable {
        /// Ranked class constraints; a binding must have one of these
        /// types. Empty means unconstrained.
        classes: Vec<(TermId, f64)>,
    },
    /// A ranked candidate list (entities / classes / literals).
    Candidates(Vec<VertexCandidate>),
}

impl VertexBinding {
    /// Is this a variable binding?
    pub fn is_variable(&self) -> bool {
        matches!(self, VertexBinding::Variable { .. })
    }
}

/// Candidate predicates / predicate paths of one edge.
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeCandidates {
    /// Ranked `(pattern, confidence)` pairs; empty iff `wildcard`.
    pub list: Vec<(PathPattern, f64)>,
    /// Implicit edges match any single predicate at this confidence.
    pub wildcard: Option<f64>,
}

/// A fully mapped query, ready for subgraph matching.
#[derive(Clone, Debug)]
pub struct MappedQuery {
    /// The underlying semantic query graph.
    pub sqg: SemanticQueryGraph,
    /// Per-vertex bindings, aligned with `sqg.vertices`.
    pub vertices: Vec<VertexBinding>,
    /// Per-edge candidates, aligned with `sqg.edges`.
    pub edges: Vec<EdgeCandidates>,
}

/// Why mapping failed (feeds the Table-10 failure analysis).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MappingError {
    /// A proper-noun mention has no candidates (paper: entity linking
    /// failure, e.g. "MI6").
    UnlinkableMention {
        /// Vertex index.
        vertex: usize,
        /// The mention text.
        text: String,
    },
    /// A relation phrase lost all its dictionary mappings.
    UnknownRelation {
        /// Edge index.
        edge: usize,
        /// The phrase text.
        phrase: String,
    },
}

/// Index of literal vertices by normalized text, so constants like
/// `"Scarface"` can be linked (the store-side analogue of linking against
/// DBpedia literals).
#[derive(Clone, Debug, Default)]
pub struct LiteralIndex {
    by_norm: FxHashMap<String, Vec<TermId>>,
}

impl LiteralIndex {
    /// Scan the store's terms once (overlay extras included, so literals
    /// upserted after boot are linkable after a pipeline rebuild).
    pub fn new(store: &Store) -> Self {
        let mut by_norm: FxHashMap<String, Vec<TermId>> = FxHashMap::default();
        for (id, term) in store.terms() {
            if let Some(text) = term.as_literal() {
                let norm = gqa_linker::normalize::normalize(text);
                if !norm.is_empty() {
                    by_norm.entry(norm).or_default().push(id);
                }
            }
        }
        LiteralIndex { by_norm }
    }

    /// Literal ids whose normalized text equals the mention's.
    pub fn lookup(&self, mention: &str) -> &[TermId] {
        self.by_norm.get(&gqa_linker::normalize::normalize(mention)).map_or(&[], Vec::as_slice)
    }
}

/// Mapping options.
#[derive(Clone, Debug)]
pub struct MappingOptions {
    /// Confidence assigned to implicit wildcard edges.
    pub wildcard_confidence: f64,
    /// Cap on candidates per edge.
    pub max_edge_candidates: usize,
    /// Tree nodes whose vertices must survive mapping even when unlinkable
    /// and implicit-only (e.g. the measured noun of a comparison filter).
    pub protected_nodes: Vec<usize>,
}

impl Default for MappingOptions {
    fn default() -> Self {
        MappingOptions {
            wildcard_confidence: 0.3,
            max_edge_candidates: 8,
            protected_nodes: Vec::new(),
        }
    }
}

/// Where a traced mapping writes its decisions. The label closures live on
/// the caller's side, where the store is available — the trace itself stays
/// plain strings.
pub struct TraceSink<'a> {
    /// The trace under construction.
    pub trace: &'a mut QueryTrace,
    /// Renders a term id for the trace (e.g. via `Store::term`).
    pub term_label: &'a dyn Fn(TermId) -> String,
    /// Renders a predicate path for the trace.
    pub path_label: &'a dyn Fn(&PathPattern) -> String,
}

/// Map every vertex and edge (§4.2.1). Implicit edges whose non-target
/// endpoint cannot be linked are dropped (with their private vertex) rather
/// than failing the query.
pub fn map_query(
    sqg: &SemanticQueryGraph,
    linker: &Linker,
    literals: &LiteralIndex,
    dict: &ParaphraseDict,
    opts: &MappingOptions,
) -> Result<MappedQuery, MappingError> {
    map_query_traced(sqg, linker, literals, dict, opts, None)
}

/// [`map_query`], optionally recording per-phrase candidate lists and
/// entity-linking keep/drop decisions into an EXPLAIN trace.
pub fn map_query_traced(
    sqg: &SemanticQueryGraph,
    linker: &Linker,
    literals: &LiteralIndex,
    dict: &ParaphraseDict,
    opts: &MappingOptions,
    sink: Option<TraceSink<'_>>,
) -> Result<MappedQuery, MappingError> {
    map_query_traced_with(sqg, linker, literals, dict, opts, sink, &Exec::none())
}

/// [`map_query_traced`] under an execution context: the per-phrase
/// candidate budget truncates each ranked vertex/edge candidate list
/// (keeping the highest-confidence prefix) and records the trip.
pub fn map_query_traced_with(
    sqg: &SemanticQueryGraph,
    linker: &Linker,
    literals: &LiteralIndex,
    dict: &ParaphraseDict,
    opts: &MappingOptions,
    mut sink: Option<TraceSink<'_>>,
    exec: &Exec,
) -> Result<MappedQuery, MappingError> {
    let mut sqg = sqg.clone();

    // --- vertices --------------------------------------------------------
    let mut vertices: Vec<VertexBinding> = Vec::with_capacity(sqg.vertices.len());
    let mut droppable: Vec<bool> = vec![false; sqg.vertices.len()];
    for (i, v) in sqg.vertices.iter().enumerate() {
        if v.is_wh {
            vertices.push(VertexBinding::Variable { classes: Vec::new() });
            continue;
        }
        if v.is_target {
            // The answer variable: class-constrained when the noun names a
            // class ("cars" → dbo:Automobile).
            let classes =
                linker.link_classes(&v.text).into_iter().map(|c| (c.id, c.confidence)).collect();
            vertices.push(VertexBinding::Variable { classes });
            continue;
        }
        let linked = linker.link_detailed(&v.text);
        if let Some(s) = &mut sink {
            s.trace.linking.push(LinkTrace {
                mention: v.text.clone(),
                kept: linked
                    .candidates
                    .iter()
                    .map(|c| ((s.term_label)(c.id), c.confidence))
                    .collect(),
                dropped: linked.dropped,
            });
        }
        let mut cands: Vec<VertexCandidate> = linked
            .candidates
            .into_iter()
            .map(|c| VertexCandidate { id: c.id, confidence: c.confidence, is_class: c.is_class })
            .collect();
        for &lit in literals.lookup(&v.text) {
            if !cands.iter().any(|c| c.id == lit) {
                cands.push(VertexCandidate { id: lit, confidence: 1.0, is_class: false });
            }
        }
        cands.sort_by(|a, b| {
            b.confidence.partial_cmp(&a.confidence).unwrap_or(std::cmp::Ordering::Equal)
        });
        // Per-phrase candidate budget: keep the best-ranked prefix.
        cands.truncate(exec.cap_candidates(cands.len()));
        if let Some(s) = &mut sink {
            s.trace.vertex_candidates.push(PhraseCandidates {
                text: v.text.clone(),
                candidates: cands.iter().map(|c| ((s.term_label)(c.id), c.confidence)).collect(),
            });
        }
        if cands.is_empty() {
            if v.is_proper {
                // A named mention the linker cannot resolve: the paper's
                // entity-linking failure class (Table 10, e.g. "MI6").
                return Err(MappingError::UnlinkableMention { vertex: i, text: v.text.clone() });
            }
            let classes: Vec<(TermId, f64)> =
                linker.link_classes(&v.text).into_iter().map(|c| (c.id, c.confidence)).collect();
            // A contentless modifier that only an implicit edge dragged in
            // ("the *former* Dutch queen …") is dropped rather than turned
            // into an unconstrained wildcard neighbor.
            let only_implicit =
                sqg.incident(i).count() > 0 && sqg.incident(i).all(|(_, e)| e.phrase.is_none());
            let protected = opts.protected_nodes.contains(&v.node);
            if only_implicit && classes.is_empty() && !v.is_target && !protected {
                droppable[i] = true;
                vertices.push(VertexBinding::Variable { classes: Vec::new() });
                continue;
            }
            // Unlinkable common noun ("creator") → free variable with any
            // class constraints the linker can offer.
            vertices.push(VertexBinding::Variable { classes });
            continue;
        }
        vertices.push(VertexBinding::Candidates(cands));
    }

    // Drop implicit-only unlinkable proper vertices and their edges.
    if droppable.iter().any(|&d| d) {
        let mut keep_edges = Vec::new();
        for e in &sqg.edges {
            if !droppable[e.from] && !droppable[e.to] {
                keep_edges.push(e.clone());
            }
        }
        sqg.edges = keep_edges;
        // Renumber vertices.
        let mut remap: Vec<Option<usize>> = Vec::with_capacity(sqg.vertices.len());
        let mut new_vertices = Vec::new();
        let mut new_bindings = Vec::new();
        for (i, v) in sqg.vertices.iter().enumerate() {
            if droppable[i] {
                remap.push(None);
            } else {
                remap.push(Some(new_vertices.len()));
                new_vertices.push(v.clone());
                new_bindings.push(vertices[i].clone());
            }
        }
        for e in &mut sqg.edges {
            e.from = remap[e.from].expect("kept edge endpoint");
            e.to = remap[e.to].expect("kept edge endpoint");
        }
        sqg.vertices = new_vertices;
        vertices = new_bindings;
    }

    // --- edges -----------------------------------------------------------
    let mut edges: Vec<EdgeCandidates> = Vec::with_capacity(sqg.edges.len());
    for (ei, e) in sqg.edges.iter().enumerate() {
        match &e.phrase {
            None => {
                edges.push(EdgeCandidates {
                    list: Vec::new(),
                    wildcard: Some(opts.wildcard_confidence),
                });
                if let Some(s) = &mut sink {
                    s.trace.edge_candidates.push(PhraseCandidates {
                        text: "?".to_string(),
                        candidates: vec![("(any predicate)".to_string(), opts.wildcard_confidence)],
                    });
                }
            }
            Some((_, phrase)) => {
                let Some(maps) = dict.lookup(phrase) else {
                    return Err(MappingError::UnknownRelation { edge: ei, phrase: phrase.clone() });
                };
                let mut list: Vec<(PathPattern, f64)> = maps
                    .iter()
                    .take(opts.max_edge_candidates)
                    .map(|m| (m.path.clone(), m.confidence.max(1e-6)))
                    .collect();
                list.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                list.truncate(exec.cap_candidates(list.len()));
                if let Some(s) = &mut sink {
                    s.trace.edge_candidates.push(PhraseCandidates {
                        text: phrase.clone(),
                        candidates: list.iter().map(|(p, c)| ((s.path_label)(p), *c)).collect(),
                    });
                }
                edges.push(EdgeCandidates { list, wildcard: None });
            }
        }
    }

    Ok(MappedQuery { sqg, vertices, edges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sqg::{SqgEdge, SqgVertex};
    use gqa_paraphrase::dict::ParaMapping;
    use gqa_rdf::schema::Schema;
    use gqa_rdf::StoreBuilder;

    fn store() -> Store {
        let mut b = StoreBuilder::new();
        b.add_iri("dbr:Philadelphia", "rdf:type", "dbo:City");
        b.add_iri("dbr:Philadelphia_(film)", "rdf:type", "dbo:Film");
        b.add_iri("dbr:Al_Capone", "rdf:type", "dbo:Person");
        b.add_obj("dbr:Al_Capone", "dbo:alias", gqa_rdf::Term::lit("Scarface"));
        b.add_obj("dbo:Film", "rdfs:label", gqa_rdf::Term::lit("film"));
        b.build()
    }

    fn vertex(text: &str, is_wh: bool, is_target: bool, is_proper: bool) -> SqgVertex {
        SqgVertex { node: 0, text: text.into(), is_wh, is_target, is_proper }
    }

    fn dict_one(phrase: &str, store: &Store) -> ParaphraseDict {
        let mut d = ParaphraseDict::new();
        let p = store.expect_iri("rdf:type");
        d.insert(
            phrase.into(),
            vec![ParaMapping { path: PathPattern::single(p), tfidf: 1.0, confidence: 1.0 }],
        );
        d
    }

    #[test]
    fn wh_vertex_becomes_unconstrained_variable() {
        let s = store();
        let schema = Schema::new(&s);
        let linker = Linker::new(&s, &schema);
        let lits = LiteralIndex::new(&s);
        let mut g = SemanticQueryGraph::default();
        g.vertices.push(vertex("who", true, true, false));
        let m = map_query(&g, &linker, &lits, &ParaphraseDict::new(), &MappingOptions::default())
            .unwrap();
        assert_eq!(m.vertices[0], VertexBinding::Variable { classes: vec![] });
    }

    #[test]
    fn ambiguous_mention_keeps_all_candidates() {
        let s = store();
        let schema = Schema::new(&s);
        let linker = Linker::new(&s, &schema);
        let lits = LiteralIndex::new(&s);
        let mut g = SemanticQueryGraph::default();
        g.vertices.push(vertex("philadelphia", false, false, true));
        let m = map_query(&g, &linker, &lits, &ParaphraseDict::new(), &MappingOptions::default())
            .unwrap();
        match &m.vertices[0] {
            VertexBinding::Candidates(c) => assert!(c.len() >= 2, "{c:?}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn literal_mentions_link_through_the_literal_index() {
        let s = store();
        let schema = Schema::new(&s);
        let linker = Linker::new(&s, &schema);
        let lits = LiteralIndex::new(&s);
        let mut g = SemanticQueryGraph::default();
        g.vertices.push(vertex("scarface", false, false, true));
        let m = map_query(&g, &linker, &lits, &ParaphraseDict::new(), &MappingOptions::default())
            .unwrap();
        match &m.vertices[0] {
            VertexBinding::Candidates(c) => {
                assert!(c.iter().any(|x| s.term(x.id).is_literal()), "{c:?}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unlinkable_proper_mention_fails() {
        let s = store();
        let schema = Schema::new(&s);
        let linker = Linker::new(&s, &schema);
        let lits = LiteralIndex::new(&s);
        let mut g = SemanticQueryGraph::default();
        g.vertices.push(vertex("mi6", false, false, true));
        let err = map_query(&g, &linker, &lits, &ParaphraseDict::new(), &MappingOptions::default())
            .unwrap_err();
        assert!(matches!(err, MappingError::UnlinkableMention { .. }));
    }

    #[test]
    fn unlinkable_common_noun_becomes_variable() {
        let s = store();
        let schema = Schema::new(&s);
        let linker = Linker::new(&s, &schema);
        let lits = LiteralIndex::new(&s);
        let mut g = SemanticQueryGraph::default();
        g.vertices.push(vertex("creator", false, false, false));
        let m = map_query(&g, &linker, &lits, &ParaphraseDict::new(), &MappingOptions::default())
            .unwrap();
        assert!(m.vertices[0].is_variable());
    }

    #[test]
    fn implicit_only_unlinkable_modifier_is_dropped() {
        let s = store();
        let schema = Schema::new(&s);
        let linker = Linker::new(&s, &schema);
        let lits = LiteralIndex::new(&s);
        let mut g = SemanticQueryGraph::default();
        g.vertices.push(vertex("film", false, true, false));
        g.vertices.push(vertex("former", false, false, false));
        g.edges.push(SqgEdge { from: 0, to: 1, phrase: None });
        let m = map_query(&g, &linker, &lits, &ParaphraseDict::new(), &MappingOptions::default())
            .unwrap();
        assert_eq!(m.sqg.vertices.len(), 1, "{:?}", m.sqg);
        assert!(m.sqg.edges.is_empty());
    }

    #[test]
    fn implicit_only_unlinkable_proper_vertex_still_fails() {
        let s = store();
        let schema = Schema::new(&s);
        let linker = Linker::new(&s, &schema);
        let lits = LiteralIndex::new(&s);
        let mut g = SemanticQueryGraph::default();
        g.vertices.push(vertex("film", false, true, false));
        g.vertices.push(vertex("zanzibar floof", false, false, true));
        g.edges.push(SqgEdge { from: 0, to: 1, phrase: None });
        let err = map_query(&g, &linker, &lits, &ParaphraseDict::new(), &MappingOptions::default())
            .unwrap_err();
        assert!(matches!(err, MappingError::UnlinkableMention { .. }));
    }

    #[test]
    fn edges_map_through_the_dictionary() {
        let s = store();
        let schema = Schema::new(&s);
        let linker = Linker::new(&s, &schema);
        let lits = LiteralIndex::new(&s);
        let dict = dict_one("be married to", &s);
        let mut g = SemanticQueryGraph::default();
        g.vertices.push(vertex("who", true, true, false));
        g.vertices.push(vertex("philadelphia", false, false, true));
        g.edges.push(SqgEdge { from: 0, to: 1, phrase: Some((0, "be married to".into())) });
        let m = map_query(&g, &linker, &lits, &dict, &MappingOptions::default()).unwrap();
        assert_eq!(m.edges[0].list.len(), 1);
        assert!(m.edges[0].wildcard.is_none());
        // Unknown phrase errors out.
        g.edges[0].phrase = Some((0, "eat with".into()));
        let err = map_query(&g, &linker, &lits, &dict, &MappingOptions::default()).unwrap_err();
        assert!(matches!(err, MappingError::UnknownRelation { .. }));
    }
}
