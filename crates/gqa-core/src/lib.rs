//! # gqa-core — graph data-driven RDF question answering
//!
//! The paper's primary contribution (Zou et al., SIGMOD 2014). Instead of
//! disambiguating the question up front and generating SPARQL, the pipeline
//!
//! 1. extracts **semantic relations** `⟨rel, arg1, arg2⟩` from the
//!    question's dependency tree by finding relation-phrase *embeddings*
//!    (Definition 5, Algorithm 2 — [`embedding`]) and their arguments via
//!    subject-/object-like relations plus heuristic Rules 1–4 (§4.1.2 —
//!    [`arguments`]);
//! 2. resolves relativizer coreference ([`coref`]) and assembles the
//!    **semantic query graph** `Q^S` (Definition 2 — [`sqg`]);
//! 3. maps vertices to candidate entities/classes and edges to candidate
//!    predicates/predicate paths, *keeping every ambiguous mapping alive*
//!    (§4.2.1 — [`mapping`]);
//! 4. finds the **top-k subgraph matches** of `Q^S` over the RDF graph with
//!    a TA-style early-terminating search over the ranked candidate lists
//!    (Definition 3/6, Algorithm 3 — [`matcher`], [`topk`]);
//! 5. reads answers (and, equivalently, top-k SPARQL queries) off the
//!    matches ([`answer`], [`sparql_gen`]).
//!
//! Ambiguity is resolved **during** matching: a candidate mapping is
//! correct exactly when some subgraph match uses it; if no match uses it,
//! the disambiguation cost was never paid.
//!
//! [`pipeline::GAnswer`] ties everything together; [`aggregates`]
//! implements the aggregation extension the paper leaves as future work
//! (off by default to reproduce Table 10).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregates;
pub mod answer;
pub mod arguments;
pub mod cache;
pub mod concurrency;
pub mod coref;
pub mod embedding;
pub mod mapping;
pub mod matcher;
pub mod pipeline;
pub mod semrel;
pub mod sparql_gen;
pub mod sqg;
pub mod topk;
pub mod validate;

pub use cache::{AnswerCache, AnswerCacheStats, CacheKey, Lookup};
pub use concurrency::Concurrency;
pub use pipeline::{GAnswer, GAnswerConfig, Response};
pub use sqg::SemanticQueryGraph;
