//! The TA-style top-k search (Algorithm 3).
//!
//! Candidate lists are sorted by descending confidence; one cursor per list
//! advances in lock-step rounds. In round *d* the matcher is re-run with
//! each cursor's vertex pinned to its *d*-th candidate (Algorithm 3 step 9:
//! "perform an exploration based subgraph isomorphism algorithm from cursor
//! c_j"), new matches update the running top-k threshold θ, and the
//! Equation-3 upper bound over the current cursor entries decides early
//! termination: once θ ≥ Upbound, no undiscovered match can displace the
//! top-k.

use crate::mapping::{MappedQuery, VertexBinding};
use crate::matcher::{find_matches, prune, Match, MatcherConfig};
use gqa_obs::{CursorTrace, ProbeTrace, PruneTrace, QueryTrace, TaRoundTrace};
use gqa_rdf::schema::Schema;
use gqa_rdf::Store;
use rustc_hash::FxHashSet;

/// Instrumentation of one top-k run (ablation benches and the EXPLAIN
/// renderer read this).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TaStats {
    /// Cursor rounds executed.
    pub rounds: usize,
    /// Matcher invocations.
    pub probes: usize,
    /// Whether the threshold test fired before the lists were exhausted.
    pub early_terminated: bool,
    /// Candidates removed by neighborhood pruning before any round ran.
    pub pruned_candidates: usize,
    /// θ after each round (−∞ until k matches exist).
    pub threshold_history: Vec<f64>,
    /// The Equation-3 upper bound after each round.
    pub upbound_history: Vec<f64>,
}

/// Find the top-k matches by score (Definition 6).
pub fn top_k(
    store: &Store,
    schema: &Schema,
    q: &MappedQuery,
    matcher_cfg: &MatcherConfig,
    k: usize,
) -> (Vec<Match>, TaStats) {
    top_k_traced(store, schema, q, matcher_cfg, k, None)
}

/// [`top_k`], optionally recording every pruning decision and TA round into
/// an EXPLAIN trace.
pub fn top_k_traced(
    store: &Store,
    schema: &Schema,
    q: &MappedQuery,
    matcher_cfg: &MatcherConfig,
    k: usize,
    mut trace: Option<&mut QueryTrace>,
) -> (Vec<Match>, TaStats) {
    let mut stats = TaStats::default();

    // Neighborhood pruning runs ONCE, up front (§4.2.2): pruned candidates
    // disappear from the cursor lists entirely, so the TA rounds never
    // probe them. The per-probe matcher runs with pruning off.
    let pruned_storage;
    let q = if matcher_cfg.neighborhood_pruning {
        pruned_storage = prune(store, q);
        record_pruning(store, q, &pruned_storage, &mut stats, trace.as_deref_mut());
        &pruned_storage
    } else {
        q
    };
    let matcher_cfg = &MatcherConfig { neighborhood_pruning: false, ..*matcher_cfg };

    // Vertices that own a sorted candidate list (cursors live there).
    let cursor_vertices: Vec<usize> = q
        .vertices
        .iter()
        .enumerate()
        .filter_map(|(i, v)| match v {
            VertexBinding::Candidates(c) if !c.is_empty() => Some(i),
            _ => None,
        })
        .collect();

    // Pure-variable queries: a single unrestricted run.
    if cursor_vertices.is_empty() {
        stats.probes = 1;
        let mut ms = find_matches(store, schema, q, matcher_cfg, None);
        dedup_scores_truncate(&mut ms, k);
        return (ms, stats);
    }

    let list_len = |i: usize| match &q.vertices[i] {
        VertexBinding::Candidates(c) => c.len(),
        VertexBinding::Variable { .. } => 0,
    };
    let max_depth = cursor_vertices.iter().map(|&i| list_len(i)).max().unwrap_or(0);

    let mut best: Vec<Match> = Vec::new();
    let mut seen: FxHashSet<Vec<gqa_rdf::TermId>> = FxHashSet::default();

    for d in 0..max_depth {
        stats.rounds += 1;
        let mut round_trace = trace.is_some().then(|| TaRoundTrace {
            round: d + 1,
            cursors: cursor_vertices
                .iter()
                .map(|&vi| {
                    let VertexBinding::Candidates(list) = &q.vertices[vi] else { unreachable!() };
                    CursorTrace {
                        vertex: q.sqg.vertices[vi].text.clone(),
                        depth: d,
                        candidate: list.get(d).map(|c| store.term(c.id).to_string()),
                        confidence: list.get(d).map(|c| c.confidence),
                    }
                })
                .collect(),
            ..TaRoundTrace::default()
        });
        for &vi in &cursor_vertices {
            let VertexBinding::Candidates(list) = &q.vertices[vi] else { unreachable!() };
            let Some(cand) = list.get(d) else { continue };
            stats.probes += 1;
            let found = find_matches(store, schema, q, matcher_cfg, Some((vi, *cand)));
            let found_count = found.len();
            let mut new_count = 0usize;
            for m in found {
                if seen.insert(m.bindings.clone()) {
                    best.push(m);
                    new_count += 1;
                }
            }
            if let Some(rt) = &mut round_trace {
                rt.probes.push(ProbeTrace {
                    vertex: q.sqg.vertices[vi].text.clone(),
                    candidate: store.term(cand.id).to_string(),
                    matches: found_count,
                    new_matches: new_count,
                });
            }
        }
        best.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));

        // Threshold θ: the k-th best score so far (−∞ until k found).
        let theta = if best.len() >= k { best[k - 1].score } else { f64::NEG_INFINITY };

        // Equation 3: bound for any match not yet guaranteed discovered —
        // every cursor list contributes the confidence at the *next*
        // position, free variables contribute 1, and every edge its best
        // candidate (edge lists are consulted in best-first order inside
        // the matcher, so their cursor equivalently stays at the head).
        let mut upbound = 0.0f64;
        for (i, v) in q.vertices.iter().enumerate() {
            if let VertexBinding::Candidates(list) = v {
                let next = list.get(d + 1).or_else(|| list.last());
                if let Some(c) = next {
                    upbound += c.confidence.max(1e-9).ln();
                }
                let _ = i;
            }
        }
        for e in &q.edges {
            let best_conf = e.wildcard.or_else(|| e.list.first().map(|(_, c)| *c)).unwrap_or(1.0);
            upbound += best_conf.max(1e-9).ln();
        }

        stats.threshold_history.push(theta);
        stats.upbound_history.push(upbound);

        let exhausted = d + 1 >= max_depth;
        // Strict comparison: undiscovered matches *tying* the k-th score
        // must still be collected (footnote 4 returns all equal-score
        // matches), so we only stop when they cannot even tie.
        let stop = theta > upbound && !exhausted;
        if stop {
            stats.early_terminated = true;
        }
        if let (Some(t), Some(mut rt)) = (trace.as_deref_mut(), round_trace.take()) {
            rt.theta = theta;
            rt.upbound = upbound;
            rt.early_terminated = stop;
            t.ta.push(rt);
        }
        if stop {
            break;
        }
    }

    dedup_scores_truncate(&mut best, k);
    (best, stats)
}

/// Diff a query against its pruned form: count eliminated candidates into
/// `stats` and, when tracing, record per-vertex eliminations.
fn record_pruning(
    store: &Store,
    before: &MappedQuery,
    after: &MappedQuery,
    stats: &mut TaStats,
    trace: Option<&mut QueryTrace>,
) {
    let lists = |q: &MappedQuery, i: usize| match &q.vertices[i] {
        VertexBinding::Candidates(c) => c.clone(),
        VertexBinding::Variable { .. } => Vec::new(),
    };
    let mut prunes = Vec::new();
    for i in 0..before.vertices.len().min(after.vertices.len()) {
        let (b, a) = (lists(before, i), lists(after, i));
        if b.len() == a.len() {
            continue;
        }
        stats.pruned_candidates += b.len() - a.len();
        if trace.is_some() {
            let kept: FxHashSet<gqa_rdf::TermId> = a.iter().map(|c| c.id).collect();
            prunes.push(PruneTrace {
                vertex: before.sqg.vertices[i].text.clone(),
                before: b.len(),
                after: a.len(),
                eliminated: b
                    .iter()
                    .filter(|c| !kept.contains(&c.id))
                    .map(|c| store.term(c.id).to_string())
                    .collect(),
            });
        }
    }
    if let Some(t) = trace {
        t.pruning.extend(prunes);
    }
}

/// Keep the top-k by score. Matches sharing the k-th score are all kept
/// (the paper's footnote 4: equal-score matches count once).
fn dedup_scores_truncate(ms: &mut Vec<Match>, k: usize) {
    ms.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
    if ms.len() > k {
        let kth = ms[k - 1].score;
        let cut = ms.iter().position(|m| m.score < kth - 1e-12).unwrap_or(ms.len());
        ms.truncate(cut.max(k));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{EdgeCandidates, VertexCandidate};
    use crate::sqg::{SemanticQueryGraph, SqgEdge, SqgVertex};
    use gqa_rdf::{PathPattern, StoreBuilder};

    fn v(text: &str, is_wh: bool) -> SqgVertex {
        SqgVertex { node: 0, text: text.into(), is_wh, is_target: is_wh, is_proper: false }
    }

    /// A store with many spouse pairs so top-k has something to rank.
    fn store_with_pairs(n: usize) -> gqa_rdf::Store {
        let mut b = StoreBuilder::new();
        for i in 0..n {
            b.add_iri(&format!("a{i}"), "spouse", &format!("b{i}"));
        }
        b.build()
    }

    fn query(store: &gqa_rdf::Store, n: usize) -> MappedQuery {
        let spouse = store.expect_iri("spouse");
        let mut sqg = SemanticQueryGraph::default();
        sqg.vertices.push(v("who", true));
        sqg.vertices.push(v("b", false));
        sqg.edges.push(SqgEdge { from: 0, to: 1, phrase: Some((0, "be married to".into())) });
        let cands: Vec<VertexCandidate> = (0..n)
            .map(|i| VertexCandidate {
                id: store.expect_iri(&format!("b{i}")),
                confidence: 1.0 / (i as f64 + 1.0),
                is_class: false,
            })
            .collect();
        MappedQuery {
            sqg,
            vertices: vec![
                VertexBinding::Variable { classes: vec![] },
                VertexBinding::Candidates(cands),
            ],
            edges: vec![EdgeCandidates {
                list: vec![(PathPattern::single(spouse), 1.0)],
                wildcard: None,
            }],
        }
    }

    #[test]
    fn top_k_returns_highest_scores_and_terminates_early() {
        let store = store_with_pairs(20);
        let schema = gqa_rdf::schema::Schema::new(&store);
        let q = query(&store, 20);
        let (ms, stats) = top_k(&store, &schema, &q, &MatcherConfig::default(), 3);
        assert_eq!(ms.len(), 3);
        // Best three candidates are b0, b1, b2 by confidence.
        for (i, m) in ms.iter().enumerate() {
            assert_eq!(m.bindings[1], store.expect_iri(&format!("b{i}")));
        }
        assert!(stats.early_terminated, "{stats:?}");
        assert!(stats.rounds < 20, "{stats:?}");
    }

    #[test]
    fn top_k_equals_exhaustive_prefix() {
        let store = store_with_pairs(10);
        let schema = gqa_rdf::schema::Schema::new(&store);
        let q = query(&store, 10);
        let (ta, _) = top_k(&store, &schema, &q, &MatcherConfig::default(), 5);
        let mut all = find_matches(&store, &schema, &q, &MatcherConfig::default(), None);
        all.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
        assert_eq!(ta.len(), 5);
        for (a, b) in ta.iter().zip(all.iter()) {
            assert!((a.score - b.score).abs() < 1e-12);
            assert_eq!(a.bindings, b.bindings);
        }
    }

    #[test]
    fn k_larger_than_matches_returns_everything() {
        let store = store_with_pairs(4);
        let schema = gqa_rdf::schema::Schema::new(&store);
        let q = query(&store, 4);
        let (ms, _) = top_k(&store, &schema, &q, &MatcherConfig::default(), 10);
        assert_eq!(ms.len(), 4);
    }

    #[test]
    fn equal_scores_at_the_cut_are_all_kept() {
        let store = store_with_pairs(5);
        let schema = gqa_rdf::schema::Schema::new(&store);
        let mut q = query(&store, 5);
        // Give every candidate the same confidence: all scores tie.
        if let VertexBinding::Candidates(c) = &mut q.vertices[1] {
            for x in c.iter_mut() {
                x.confidence = 0.7;
            }
        }
        let (ms, _) = top_k(&store, &schema, &q, &MatcherConfig::default(), 2);
        assert_eq!(ms.len(), 5, "footnote 4: ties at the k-th score all count");
    }

    #[test]
    fn early_termination_implies_theta_at_least_upbound() {
        let store = store_with_pairs(20);
        let schema = gqa_rdf::schema::Schema::new(&store);
        let q = query(&store, 20);
        let (_, stats) = top_k(&store, &schema, &q, &MatcherConfig::default(), 3);
        assert!(stats.early_terminated);
        assert_eq!(stats.threshold_history.len(), stats.rounds);
        assert_eq!(stats.upbound_history.len(), stats.rounds);
        let theta = *stats.threshold_history.last().unwrap();
        let upbound = *stats.upbound_history.last().unwrap();
        assert!(
            theta >= upbound,
            "early termination requires final θ ({theta}) ≥ Upbound ({upbound})"
        );
        // θ never decreases across rounds: the top-k only improves.
        for w in stats.threshold_history.windows(2) {
            assert!(w[1] >= w[0], "θ regressed: {:?}", stats.threshold_history);
        }
    }

    #[test]
    fn trace_records_rounds_and_cursors() {
        let store = store_with_pairs(8);
        let schema = gqa_rdf::schema::Schema::new(&store);
        let q = query(&store, 8);
        let mut trace = QueryTrace::new("who is married to b?");
        let (_, stats) =
            top_k_traced(&store, &schema, &q, &MatcherConfig::default(), 2, Some(&mut trace));
        assert_eq!(trace.ta.len(), stats.rounds);
        let first = &trace.ta[0];
        assert_eq!(first.round, 1);
        assert_eq!(first.cursors.len(), 1, "one cursor list in this query");
        assert_eq!(first.cursors[0].vertex, "b");
        assert!(first.cursors[0].candidate.as_deref().unwrap().contains("b0"));
        assert_eq!(first.probes.len(), 1);
        assert_eq!(first.probes[0].matches, 1);
        let last = trace.ta.last().unwrap();
        assert_eq!(last.early_terminated, stats.early_terminated);
        assert!((last.theta - *stats.threshold_history.last().unwrap()).abs() < 1e-12);
        // The rendered EXPLAIN mentions the round-by-round bookkeeping.
        let rendered = trace.render();
        assert!(rendered.contains("top-k (TA) rounds:"), "{rendered}");
        assert!(rendered.contains("theta="), "{rendered}");
        assert!(rendered.contains("upbound="), "{rendered}");
    }

    #[test]
    fn variable_only_query_single_probe() {
        let mut b = StoreBuilder::new();
        b.add_iri("x", "rdf:type", "C");
        let store = b.build();
        let schema = gqa_rdf::schema::Schema::new(&store);
        let mut sqg = SemanticQueryGraph::default();
        sqg.vertices.push(v("things", true));
        let q = MappedQuery {
            sqg,
            vertices: vec![VertexBinding::Variable { classes: vec![(store.expect_iri("C"), 1.0)] }],
            edges: vec![],
        };
        let (ms, stats) = top_k(&store, &schema, &q, &MatcherConfig::default(), 10);
        assert_eq!(ms.len(), 1);
        assert_eq!(stats.probes, 1);
    }
}
