//! The TA-style top-k search (Algorithm 3).
//!
//! Candidate lists are sorted by descending confidence; one cursor per list
//! advances in lock-step rounds. In round *d* the matcher is re-run with
//! each cursor's vertex pinned to its *d*-th candidate (Algorithm 3 step 9:
//! "perform an exploration based subgraph isomorphism algorithm from cursor
//! c_j"), new matches update the running top-k threshold θ, and the
//! Equation-3 upper bound over the current cursor entries decides early
//! termination: once θ ≥ Upbound, no undiscovered match can displace the
//! top-k.

use crate::concurrency::Concurrency;
use crate::mapping::{MappedQuery, VertexBinding, VertexCandidate};
use crate::matcher::{find_matches_with, prune_sharded, Match, MatcherConfig};
use gqa_fault::Exec;
use gqa_obs::{CursorTrace, Obs, ProbeTrace, PruneTrace, QueryTrace, TaRoundTrace};
use gqa_rdf::schema::Schema;
use gqa_rdf::Store;
use rustc_hash::FxHashSet;
use std::time::Instant;

/// Fault-injection site name for one TA cursor probe. A `panic` rule here
/// unwinds through the probe worker (exercising the server's worker
/// isolation); an `error` rule makes the probe return no matches.
pub const FAULT_SITE_PROBE: &str = "ta.probe";

/// Instrumentation of one top-k run (ablation benches and the EXPLAIN
/// renderer read this).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TaStats {
    /// Cursor rounds executed.
    pub rounds: usize,
    /// Matcher invocations.
    pub probes: usize,
    /// Whether the threshold test fired before the lists were exhausted.
    pub early_terminated: bool,
    /// Candidates removed by neighborhood pruning before any round ran.
    pub pruned_candidates: usize,
    /// Probes executed on parallel workers (0 on the serial path; excluded
    /// from parallel-vs-serial equivalence checks, everything else in this
    /// struct must be identical at any thread count).
    pub parallel_probes: usize,
    /// θ after each round (−∞ until k matches exist).
    pub threshold_history: Vec<f64>,
    /// The Equation-3 upper bound after each round.
    pub upbound_history: Vec<f64>,
}

/// Find the top-k matches by score (Definition 6). Strictly serial; the
/// pipeline passes its configured thread budget via [`top_k_with`].
pub fn top_k(
    store: &Store,
    schema: &Schema,
    q: &MappedQuery,
    matcher_cfg: &MatcherConfig,
    k: usize,
) -> (Vec<Match>, TaStats) {
    top_k_traced(store, schema, q, matcher_cfg, k, None)
}

/// [`top_k`], optionally recording every pruning decision and TA round into
/// an EXPLAIN trace. Strictly serial.
pub fn top_k_traced(
    store: &Store,
    schema: &Schema,
    q: &MappedQuery,
    matcher_cfg: &MatcherConfig,
    k: usize,
    trace: Option<&mut QueryTrace>,
) -> (Vec<Match>, TaStats) {
    top_k_with(
        store,
        schema,
        q,
        matcher_cfg,
        k,
        &Concurrency::serial(),
        &Obs::disabled(),
        trace,
        &Exec::none(),
    )
}

/// [`top_k_traced`] with an explicit thread budget and metrics sink.
///
/// With `conc.threads > 1` each TA round's cursor probes fan out over
/// `crossbeam::scope` workers (probes within a round are independent given
/// the immutable `&Store`/`&Schema`), and the up-front neighborhood pruning
/// shards its candidate lists the same way. Probe results are merged back
/// **in cursor order** and ranked by the same stable sort as the serial
/// path, so matches, scores, θ/Upbound histories, round counts, and early
/// termination are bit-identical at any thread count; only
/// [`TaStats::parallel_probes`] differs. `conc.threads == 1` takes the
/// exact serial code path.
/// Budget/deadline exhaustion (via `exec`) cuts the round loop off early:
/// the best matches found so far still rank and truncate normally, so the
/// caller gets a valid partial top-k plus [`Exec::tripped`] to report.
#[allow(clippy::too_many_arguments)]
pub fn top_k_with(
    store: &Store,
    schema: &Schema,
    q: &MappedQuery,
    matcher_cfg: &MatcherConfig,
    k: usize,
    conc: &Concurrency,
    obs: &Obs,
    mut trace: Option<&mut QueryTrace>,
    exec: &Exec,
) -> (Vec<Match>, TaStats) {
    let mut stats = TaStats::default();

    // k == 0 asks for no answers: return the empty top-k without probing
    // (and without `dedup_scores_truncate` ever indexing `ms[k - 1]`).
    if k == 0 {
        return (Vec::new(), stats);
    }

    // Neighborhood pruning runs ONCE, up front (§4.2.2): pruned candidates
    // disappear from the cursor lists entirely, so the TA rounds never
    // probe them. The per-probe matcher runs with pruning off.
    let pruned_storage;
    let q = if matcher_cfg.neighborhood_pruning {
        pruned_storage = prune_sharded(store, q, conc.threads);
        record_pruning(store, q, &pruned_storage, &mut stats, trace.as_deref_mut());
        &pruned_storage
    } else {
        q
    };
    let matcher_cfg = &MatcherConfig { neighborhood_pruning: false, ..*matcher_cfg };

    // Vertices that own a sorted candidate list (cursors live there).
    let cursor_vertices: Vec<usize> = q
        .vertices
        .iter()
        .enumerate()
        .filter_map(|(i, v)| match v {
            VertexBinding::Candidates(c) if !c.is_empty() => Some(i),
            _ => None,
        })
        .collect();

    // Pure-variable queries: a single unrestricted run.
    if cursor_vertices.is_empty() {
        stats.probes = 1;
        let mut ms = if exec.fire(FAULT_SITE_PROBE).is_ok() {
            find_matches_with(store, schema, q, matcher_cfg, None, exec)
        } else {
            Vec::new()
        };
        dedup_scores_truncate(&mut ms, k);
        return (ms, stats);
    }

    let list_len = |i: usize| match &q.vertices[i] {
        VertexBinding::Candidates(c) => c.len(),
        VertexBinding::Variable { .. } => 0,
    };
    let max_depth = cursor_vertices.iter().map(|&i| list_len(i)).max().unwrap_or(0);

    let mut best: Vec<Match> = Vec::new();
    let mut seen: FxHashSet<Vec<gqa_rdf::TermId>> = FxHashSet::default();

    let parallel_probe_count = obs.counter("gqa_core_ta_parallel_probes_total", &[]);

    for d in 0..max_depth {
        // Cooperative budget/deadline check: a tripped round budget (or a
        // trip charged inside the previous round's probes) cuts the TA
        // loop off with the partial top-k accumulated in `best`.
        if !exec.begin_round() {
            break;
        }
        stats.rounds += 1;
        let mut round_trace = trace.is_some().then(|| TaRoundTrace {
            round: d + 1,
            cursors: cursor_vertices
                .iter()
                .map(|&vi| {
                    let VertexBinding::Candidates(list) = &q.vertices[vi] else { unreachable!() };
                    CursorTrace {
                        vertex: q.sqg.vertices[vi].text.clone(),
                        depth: d,
                        candidate: list.get(d).map(|c| store.term(c.id).to_string()),
                        confidence: list.get(d).map(|c| c.confidence),
                    }
                })
                .collect(),
            ..TaRoundTrace::default()
        });
        // This round's probe jobs: each cursor's d-th candidate, in cursor
        // order. Probes never observe `best`/`seen`, so running them
        // serially-interleaved with merging (the old code) or all-ahead
        // (the parallel path) yields the same matches; merging strictly in
        // job order keeps every downstream step identical.
        let jobs: Vec<(usize, VertexCandidate)> = cursor_vertices
            .iter()
            .filter_map(|&vi| {
                let VertexBinding::Candidates(list) = &q.vertices[vi] else { unreachable!() };
                list.get(d).map(|c| (vi, *c))
            })
            .collect();
        stats.probes += jobs.len();

        let probe = |vi: usize, cand: VertexCandidate| {
            let started = Instant::now();
            // An injected `error` at the probe site yields an empty probe;
            // a `panic` unwinds through the worker to the caller.
            let found = if exec.fire(FAULT_SITE_PROBE).is_ok() {
                find_matches_with(store, schema, q, matcher_cfg, Some((vi, cand)), exec)
            } else {
                Vec::new()
            };
            (found, started.elapsed().as_secs_f64())
        };
        let workers = conc.workers_for(jobs.len());
        let results: Vec<(Vec<Match>, f64)> = if workers <= 1 {
            jobs.iter().map(|&(vi, cand)| probe(vi, cand)).collect()
        } else {
            stats.parallel_probes += jobs.len();
            parallel_probe_count.add(jobs.len() as u64);
            run_probes_parallel(&jobs, workers, &probe)
        };

        if obs.is_enabled() {
            // One histogram series per round index; the tail collapses into
            // "9+" to bound cardinality on adversarially long cursor lists.
            let label = if d < 9 { format!("{}", d + 1) } else { "9+".to_string() };
            let h = obs.histogram(
                "gqa_core_ta_probe_duration_seconds",
                &[("round", &label)],
                gqa_obs::DURATION_BUCKETS,
            );
            for (_, secs) in &results {
                h.observe(*secs);
            }
        }

        for (&(vi, cand), (found, _)) in jobs.iter().zip(results) {
            let found_count = found.len();
            let mut new_count = 0usize;
            for m in found {
                if seen.insert(m.bindings.clone()) {
                    best.push(m);
                    new_count += 1;
                }
            }
            if let Some(rt) = &mut round_trace {
                rt.probes.push(ProbeTrace {
                    vertex: q.sqg.vertices[vi].text.clone(),
                    candidate: store.term(cand.id).to_string(),
                    matches: found_count,
                    new_matches: new_count,
                });
            }
        }
        sort_scores_desc(&mut best);

        // Threshold θ: the k-th best score so far (−∞ until k found).
        let theta = if best.len() >= k { best[k - 1].score } else { f64::NEG_INFINITY };

        // Equation 3: bound for any match not yet guaranteed discovered —
        // every cursor list contributes the confidence at the *next*
        // position, free variables contribute 1, and every edge its best
        // candidate (edge lists are consulted in best-first order inside
        // the matcher, so their cursor equivalently stays at the head).
        let mut upbound = 0.0f64;
        for (i, v) in q.vertices.iter().enumerate() {
            if let VertexBinding::Candidates(list) = v {
                let next = list.get(d + 1).or_else(|| list.last());
                if let Some(c) = next {
                    upbound += c.confidence.max(1e-9).ln();
                }
                let _ = i;
            }
        }
        for e in &q.edges {
            let best_conf = e.wildcard.or_else(|| e.list.first().map(|(_, c)| *c)).unwrap_or(1.0);
            upbound += best_conf.max(1e-9).ln();
        }

        stats.threshold_history.push(theta);
        stats.upbound_history.push(upbound);

        let exhausted = d + 1 >= max_depth;
        // Strict comparison: undiscovered matches *tying* the k-th score
        // must still be collected (footnote 4 returns all equal-score
        // matches), so we only stop when they cannot even tie.
        let stop = theta > upbound && !exhausted;
        if stop {
            stats.early_terminated = true;
        }
        if let (Some(t), Some(mut rt)) = (trace.as_deref_mut(), round_trace.take()) {
            rt.theta = theta;
            rt.upbound = upbound;
            rt.early_terminated = stop;
            t.ta.push(rt);
        }
        if stop {
            break;
        }
    }

    dedup_scores_truncate(&mut best, k);
    (best, stats)
}

/// Fan one round's probe jobs over `workers` scoped threads in contiguous
/// chunks, returning results in job order. The vendored `crossbeam::scope`
/// supports exactly this single-level spawn (see `vendor/README.md`); the
/// chunking keeps result order deterministic without any post-hoc sort.
fn run_probes_parallel<F>(
    jobs: &[(usize, VertexCandidate)],
    workers: usize,
    probe: &F,
) -> Vec<(Vec<Match>, f64)>
where
    F: Fn(usize, VertexCandidate) -> (Vec<Match>, f64) + Sync,
{
    let chunk = jobs.len().div_ceil(workers);
    let mut out = Vec::with_capacity(jobs.len());
    crossbeam::scope(|scope| {
        let handles: Vec<_> = jobs
            .chunks(chunk)
            .map(|js| {
                scope.spawn(move |_| {
                    js.iter().map(|&(vi, cand)| probe(vi, cand)).collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("TA probe worker panicked"));
        }
    })
    .expect("TA probe scope");
    out
}

/// Diff a query against its pruned form: count eliminated candidates into
/// `stats` and, when tracing, record per-vertex eliminations.
fn record_pruning(
    store: &Store,
    before: &MappedQuery,
    after: &MappedQuery,
    stats: &mut TaStats,
    trace: Option<&mut QueryTrace>,
) {
    let lists = |q: &MappedQuery, i: usize| match &q.vertices[i] {
        VertexBinding::Candidates(c) => c.clone(),
        VertexBinding::Variable { .. } => Vec::new(),
    };
    let mut prunes = Vec::new();
    for i in 0..before.vertices.len().min(after.vertices.len()) {
        let (b, a) = (lists(before, i), lists(after, i));
        if b.len() == a.len() {
            continue;
        }
        stats.pruned_candidates += b.len() - a.len();
        if trace.is_some() {
            let kept: FxHashSet<gqa_rdf::TermId> = a.iter().map(|c| c.id).collect();
            prunes.push(PruneTrace {
                vertex: before.sqg.vertices[i].text.clone(),
                before: b.len(),
                after: a.len(),
                eliminated: b
                    .iter()
                    .filter(|c| !kept.contains(&c.id))
                    .map(|c| store.term(c.id).to_string())
                    .collect(),
            });
        }
    }
    if let Some(t) = trace {
        t.pruning.extend(prunes);
    }
}

/// Rank matches by descending score under `f64::total_cmp`. The total
/// order is what makes the ranking deterministic when a score is NaN (a
/// zero-support tf-idf edge case can produce one): `partial_cmp(..)
/// .unwrap_or(Equal)` is not a valid comparator in the presence of NaN,
/// so the sort's output (and hence the PR-2 parallel == serial
/// bit-identity) would depend on the comparison schedule. Under
/// `total_cmp`, NaN sorts as the largest magnitude of its sign (so +NaN
/// ranks first in descending order) and NaN-free inputs order exactly as
/// they did under `partial_cmp`; the sort is stable, so ties keep the
/// deterministic job-order merge produced upstream.
fn sort_scores_desc(ms: &mut [Match]) {
    ms.sort_by(|a, b| b.score.total_cmp(&a.score));
}

/// Keep the top-k by score. Matches sharing the k-th score are all kept
/// (the paper's footnote 4: equal-score matches count once).
fn dedup_scores_truncate(ms: &mut Vec<Match>, k: usize) {
    if k == 0 {
        // `ms[k - 1]` below would underflow; "top zero" is simply empty.
        ms.clear();
        return;
    }
    sort_scores_desc(ms);
    if ms.len() > k {
        let kth = ms[k - 1].score;
        let cut = ms.iter().position(|m| m.score < kth - 1e-12).unwrap_or(ms.len());
        ms.truncate(cut.max(k));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{EdgeCandidates, VertexCandidate};
    use crate::matcher::find_matches;
    use crate::sqg::{SemanticQueryGraph, SqgEdge, SqgVertex};
    use gqa_rdf::{PathPattern, StoreBuilder};

    fn v(text: &str, is_wh: bool) -> SqgVertex {
        SqgVertex { node: 0, text: text.into(), is_wh, is_target: is_wh, is_proper: false }
    }

    /// A store with many spouse pairs so top-k has something to rank.
    fn store_with_pairs(n: usize) -> gqa_rdf::Store {
        let mut b = StoreBuilder::new();
        for i in 0..n {
            b.add_iri(&format!("a{i}"), "spouse", &format!("b{i}"));
        }
        b.build()
    }

    fn query(store: &gqa_rdf::Store, n: usize) -> MappedQuery {
        let spouse = store.expect_iri("spouse");
        let mut sqg = SemanticQueryGraph::default();
        sqg.vertices.push(v("who", true));
        sqg.vertices.push(v("b", false));
        sqg.edges.push(SqgEdge { from: 0, to: 1, phrase: Some((0, "be married to".into())) });
        let cands: Vec<VertexCandidate> = (0..n)
            .map(|i| VertexCandidate {
                id: store.expect_iri(&format!("b{i}")),
                confidence: 1.0 / (i as f64 + 1.0),
                is_class: false,
            })
            .collect();
        MappedQuery {
            sqg,
            vertices: vec![
                VertexBinding::Variable { classes: vec![] },
                VertexBinding::Candidates(cands),
            ],
            edges: vec![EdgeCandidates {
                list: vec![(PathPattern::single(spouse), 1.0)],
                wildcard: None,
            }],
        }
    }

    #[test]
    fn top_k_returns_highest_scores_and_terminates_early() {
        let store = store_with_pairs(20);
        let schema = gqa_rdf::schema::Schema::new(&store);
        let q = query(&store, 20);
        let (ms, stats) = top_k(&store, &schema, &q, &MatcherConfig::default(), 3);
        assert_eq!(ms.len(), 3);
        // Best three candidates are b0, b1, b2 by confidence.
        for (i, m) in ms.iter().enumerate() {
            assert_eq!(m.bindings[1], store.expect_iri(&format!("b{i}")));
        }
        assert!(stats.early_terminated, "{stats:?}");
        assert!(stats.rounds < 20, "{stats:?}");
    }

    #[test]
    fn top_k_equals_exhaustive_prefix() {
        let store = store_with_pairs(10);
        let schema = gqa_rdf::schema::Schema::new(&store);
        let q = query(&store, 10);
        let (ta, _) = top_k(&store, &schema, &q, &MatcherConfig::default(), 5);
        let mut all = find_matches(&store, &schema, &q, &MatcherConfig::default(), None);
        all.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
        assert_eq!(ta.len(), 5);
        for (a, b) in ta.iter().zip(all.iter()) {
            assert!((a.score - b.score).abs() < 1e-12);
            assert_eq!(a.bindings, b.bindings);
        }
    }

    #[test]
    fn k_larger_than_matches_returns_everything() {
        let store = store_with_pairs(4);
        let schema = gqa_rdf::schema::Schema::new(&store);
        let q = query(&store, 4);
        let (ms, _) = top_k(&store, &schema, &q, &MatcherConfig::default(), 10);
        assert_eq!(ms.len(), 4);
    }

    #[test]
    fn equal_scores_at_the_cut_are_all_kept() {
        let store = store_with_pairs(5);
        let schema = gqa_rdf::schema::Schema::new(&store);
        let mut q = query(&store, 5);
        // Give every candidate the same confidence: all scores tie.
        if let VertexBinding::Candidates(c) = &mut q.vertices[1] {
            for x in c.iter_mut() {
                x.confidence = 0.7;
            }
        }
        let (ms, _) = top_k(&store, &schema, &q, &MatcherConfig::default(), 2);
        assert_eq!(ms.len(), 5, "footnote 4: ties at the k-th score all count");
    }

    #[test]
    fn early_termination_implies_theta_at_least_upbound() {
        let store = store_with_pairs(20);
        let schema = gqa_rdf::schema::Schema::new(&store);
        let q = query(&store, 20);
        let (_, stats) = top_k(&store, &schema, &q, &MatcherConfig::default(), 3);
        assert!(stats.early_terminated);
        assert_eq!(stats.threshold_history.len(), stats.rounds);
        assert_eq!(stats.upbound_history.len(), stats.rounds);
        let theta = *stats.threshold_history.last().unwrap();
        let upbound = *stats.upbound_history.last().unwrap();
        assert!(
            theta >= upbound,
            "early termination requires final θ ({theta}) ≥ Upbound ({upbound})"
        );
        // θ never decreases across rounds: the top-k only improves.
        for w in stats.threshold_history.windows(2) {
            assert!(w[1] >= w[0], "θ regressed: {:?}", stats.threshold_history);
        }
    }

    #[test]
    fn trace_records_rounds_and_cursors() {
        let store = store_with_pairs(8);
        let schema = gqa_rdf::schema::Schema::new(&store);
        let q = query(&store, 8);
        let mut trace = QueryTrace::new("who is married to b?");
        let (_, stats) =
            top_k_traced(&store, &schema, &q, &MatcherConfig::default(), 2, Some(&mut trace));
        assert_eq!(trace.ta.len(), stats.rounds);
        let first = &trace.ta[0];
        assert_eq!(first.round, 1);
        assert_eq!(first.cursors.len(), 1, "one cursor list in this query");
        assert_eq!(first.cursors[0].vertex, "b");
        assert!(first.cursors[0].candidate.as_deref().unwrap().contains("b0"));
        assert_eq!(first.probes.len(), 1);
        assert_eq!(first.probes[0].matches, 1);
        let last = trace.ta.last().unwrap();
        assert_eq!(last.early_terminated, stats.early_terminated);
        assert!((last.theta - *stats.threshold_history.last().unwrap()).abs() < 1e-12);
        // The rendered EXPLAIN mentions the round-by-round bookkeeping.
        let rendered = trace.render();
        assert!(rendered.contains("top-k (TA) rounds:"), "{rendered}");
        assert!(rendered.contains("theta="), "{rendered}");
        assert!(rendered.contains("upbound="), "{rendered}");
    }

    #[test]
    fn k_zero_returns_empty_without_panicking() {
        let store = store_with_pairs(5);
        let schema = gqa_rdf::schema::Schema::new(&store);
        let q = query(&store, 5);
        let (ms, stats) = top_k(&store, &schema, &q, &MatcherConfig::default(), 0);
        assert!(ms.is_empty(), "top-0 is the empty list, not a panic");
        assert_eq!(stats.rounds, 0, "no probing needed for k = 0: {stats:?}");

        // The truncation helper is the historical panic site (`ms[k - 1]`
        // with k == 0): exercise it directly with matches present.
        let mut ms = vec![dummy_match(1.0), dummy_match(f64::NAN)];
        dedup_scores_truncate(&mut ms, 0);
        assert!(ms.is_empty());
    }

    fn dummy_match(score: f64) -> Match {
        Match { bindings: Vec::new(), vertex_conf: Vec::new(), edge_used: Vec::new(), score }
    }

    mod nan_determinism {
        use super::*;
        use proptest::prelude::*;

        fn arb_score() -> impl Strategy<Value = f64> {
            // The vendored proptest has no weighted prop_oneof; repeating
            // the finite range biases toward ordinary scores while still
            // hitting NaN/±∞ often.
            prop_oneof![
                -100.0f64..100.0,
                -100.0f64..100.0,
                -100.0f64..100.0,
                -100.0f64..100.0,
                Just(f64::NAN),
                Just(-f64::NAN),
                Just(f64::INFINITY),
                Just(f64::NEG_INFINITY),
            ]
        }

        /// Merge a round's probe results chunked over `workers` threads the
        /// way `run_probes_parallel` does: contiguous chunks, concatenated
        /// back in job order. The merge is order-preserving by construction,
        /// so any thread count feeds `sort_scores_desc` the same sequence.
        fn merge_in_job_order(scores: &[f64], workers: usize) -> Vec<Match> {
            let chunk = scores.len().div_ceil(workers.max(1)).max(1);
            let mut out = Vec::with_capacity(scores.len());
            for js in scores.chunks(chunk) {
                out.extend(js.iter().map(|&s| dummy_match(s)));
            }
            out
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// The ranking sort is deterministic under NaN: the 1-thread and
            /// 4-thread merge orders feed the same input, and `total_cmp`
            /// (a total order, unlike the old `partial_cmp(..)
            /// .unwrap_or(Equal)`) makes the output a pure function of that
            /// input — bit-identical score sequences, NaN or not. On
            /// NaN-free input the order must also agree with `partial_cmp`
            /// descending, i.e. the fix cannot perturb existing rankings.
            #[test]
            fn sort_is_bit_identical_across_thread_merges(
                scores in prop::collection::vec(arb_score(), 0..48),
                k in 0usize..8,
            ) {
                let mut serial = merge_in_job_order(&scores, 1);
                let mut parallel = merge_in_job_order(&scores, 4);
                sort_scores_desc(&mut serial);
                sort_scores_desc(&mut parallel);
                let bits = |ms: &[Match]| -> Vec<u64> {
                    ms.iter().map(|m| m.score.to_bits()).collect()
                };
                prop_assert_eq!(bits(&serial), bits(&parallel));

                // Sorting is idempotent (a valid total order never reorders
                // an already-sorted slice).
                let once = bits(&serial);
                sort_scores_desc(&mut serial);
                prop_assert_eq!(bits(&serial), once);

                // NaN-free inputs rank exactly as under `partial_cmp`.
                if scores.iter().all(|s| !s.is_nan()) {
                    let mut old = merge_in_job_order(&scores, 1);
                    old.sort_by(|a, b| {
                        b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal)
                    });
                    prop_assert_eq!(bits(&old), bits(&parallel));
                }

                // Truncation is equally deterministic, k == 0 included.
                let mut a = merge_in_job_order(&scores, 1);
                let mut b = merge_in_job_order(&scores, 4);
                dedup_scores_truncate(&mut a, k);
                dedup_scores_truncate(&mut b, k);
                prop_assert_eq!(bits(&a), bits(&b));
                if k == 0 {
                    prop_assert!(a.is_empty());
                }
            }
        }
    }

    #[test]
    fn variable_only_query_single_probe() {
        let mut b = StoreBuilder::new();
        b.add_iri("x", "rdf:type", "C");
        let store = b.build();
        let schema = gqa_rdf::schema::Schema::new(&store);
        let mut sqg = SemanticQueryGraph::default();
        sqg.vertices.push(v("things", true));
        let q = MappedQuery {
            sqg,
            vertices: vec![VertexBinding::Variable { classes: vec![(store.expect_iri("C"), 1.0)] }],
            edges: vec![],
        };
        let (ms, stats) = top_k(&store, &schema, &q, &MatcherConfig::default(), 10);
        assert_eq!(ms.len(), 1);
        assert_eq!(stats.probes, 1);
    }
}
