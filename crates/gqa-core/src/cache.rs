//! A bounded, epoch-aware memo cache for full pipeline [`Response`]s.
//!
//! Real QA traffic is heavily skewed — the same questions repeat — so the
//! biggest serving win after parallelism is not running the pipeline at
//! all. [`AnswerCache`] memoizes complete [`Response`] values behind a
//! sharded LRU (the same shape as `gqa_rdf::PathCache`), keyed by
//! [`CacheKey`]:
//!
//! * the **normalized question** ([`normalize_question`] — the linker's
//!   own case/whitespace/punctuation folding, so `"Who is the mayor of
//!   Berlin?"` and `"who is the MAYOR of berlin"` share an entry),
//! * the **requested k** (how many answers the caller wants; a different
//!   k can change the rendered payload),
//! * a **config fingerprint** ([`config_fingerprint`]) over every
//!   [`GAnswerConfig`] field that affects *what* the pipeline answers —
//!   so two servers with different rule ablations never share entries —
//!   while deliberately excluding fields that only affect *how fast*
//!   (thread count) or *whether faults fire* (fault plan, budget; the
//!   serving layer bypasses the cache entirely when those are armed).
//!
//! Every entry is additionally stamped with the **store epoch**
//! (`gqa_rdf::Snapshot`) it was computed against. A lookup under a newer
//! epoch treats the entry as *stale*: it is dropped on sight and counted
//! separately from plain misses, which is what lets a store reload
//! invalidate the whole cache for free — no sweep, no pause. The reverse
//! direction is shielded too: a request that was pinned to a pre-reload
//! snapshot and finishes *after* the reload can neither evict nor
//! overwrite entries the new generation has already computed.
//!
//! The cache refuses to store degraded or trace-carrying responses:
//! degraded answers are partial by definition (a retry under a healthier
//! budget should get a fresh run), and EXPLAIN traces are debugging
//! artifacts whose cost/size profile doesn't belong in a hot cache.

use crate::pipeline::{GAnswerConfig, Response};
use parking_lot::Mutex;
use rustc_hash::{FxHashMap, FxHasher};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Canonicalize a question for cache keying: lowercase, punctuation
/// folded to spaces, whitespace collapsed. Delegates to the linker's
/// [`gqa_linker::normalize::normalize_keep_paren`] (the variant that
/// keeps parenthetical text — `"Houston (Texas)"` and `"Houston"` must
/// NOT share a key).
pub fn normalize_question(question: &str) -> String {
    gqa_linker::normalize::normalize_keep_paren(question)
}

/// A stable fingerprint of the answer-relevant parts of a
/// [`GAnswerConfig`]. Covers `top_k`, the argument rules, implicit
/// edges, pruning, aggregates, mapping and matcher options, and the
/// linker candidate cap; excludes concurrency (answers are bit-identical
/// at any thread count — the PR-2 invariant), and the fault plan and
/// budget (when those are armed the serving layer must bypass the cache
/// anyway, so keying on them would only mask a bypass bug).
pub fn config_fingerprint(config: &GAnswerConfig) -> u64 {
    let semantic = format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        config.top_k,
        config.rules,
        config.implicit_edges,
        config.neighborhood_pruning,
        config.enable_aggregates,
        config.mapping,
        config.matcher,
        config.max_link_candidates,
    );
    let mut h = FxHasher::default();
    semantic.hash(&mut h);
    h.finish()
}

/// Sentinel for "the request asked for every answer" (no `k` truncation).
pub const K_ALL: u64 = u64::MAX;

/// The identity of one cacheable answer computation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`normalize_question`] output.
    pub question: String,
    /// Requested answer count ([`K_ALL`] when untruncated).
    pub k: u64,
    /// [`config_fingerprint`] of the answering system.
    pub fingerprint: u64,
}

impl CacheKey {
    /// Build a key from the raw question text.
    pub fn new(question: &str, k: Option<usize>, fingerprint: u64) -> Self {
        CacheKey {
            question: normalize_question(question),
            k: k.map(|n| n as u64).unwrap_or(K_ALL),
            fingerprint,
        }
    }
}

/// Outcome of one [`AnswerCache::lookup`].
#[derive(Clone, Debug)]
pub enum Lookup {
    /// A live entry computed under the requested epoch.
    Hit(Arc<Response>),
    /// No entry for this key.
    Miss,
    /// An entry existed but was computed under an older epoch; it has
    /// been evicted. (Also a miss for serving purposes.)
    Stale,
}

/// Monotonic counters of one [`AnswerCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnswerCacheStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Lookups that found an entry from an older store epoch.
    pub stale: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
}

impl AnswerCacheStats {
    /// Hit rate in `[0, 1]` over hits + misses + stale (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.stale;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One LRU shard: an access-stamped map, eviction scans for the oldest
/// stamp (shards stay small, so the scan beats an intrusive list under a
/// mutex — same trade as `gqa_rdf::PathCache`).
struct Shard {
    map: FxHashMap<CacheKey, Entry>,
    clock: u64,
    capacity: usize,
}

struct Entry {
    stamp: u64,
    epoch: u64,
    response: Arc<Response>,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard { map: FxHashMap::default(), clock: 0, capacity: capacity.max(1) }
    }
}

/// The sharded, epoch-aware answer cache. See the module docs for the
/// key and invalidation story.
pub struct AnswerCache {
    shards: Box<[Mutex<Shard>]>,
    hits: AtomicU64,
    misses: AtomicU64,
    stale: AtomicU64,
    evictions: AtomicU64,
}

const SHARDS: usize = 8;

impl AnswerCache {
    /// A cache holding at most `capacity` responses (min 1; shard
    /// capacities round up, so the effective bound can exceed `capacity`
    /// by at most `SHARDS - 1`).
    pub fn with_capacity(capacity: usize) -> Self {
        let per_shard = capacity.max(1).div_ceil(SHARDS);
        AnswerCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::new(per_shard))).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look up `key` as of store `epoch`. An entry computed under an
    /// *older* epoch is dropped and reported [`Lookup::Stale`]. An entry
    /// from a *newer* epoch (the caller is an in-flight request still
    /// pinned to a pre-reload snapshot) is left untouched and reported
    /// as a plain miss — a retiring request must never evict data the
    /// current generation just computed.
    pub fn lookup(&self, key: &CacheKey, epoch: u64) -> Lookup {
        let mut shard = self.shard(key).lock();
        shard.clock += 1;
        let clock = shard.clock;
        match shard.map.get_mut(key) {
            Some(entry) if entry.epoch == epoch => {
                entry.stamp = clock;
                let response = entry.response.clone();
                drop(shard);
                self.hits.fetch_add(1, Relaxed);
                Lookup::Hit(response)
            }
            Some(entry) if entry.epoch < epoch => {
                shard.map.remove(key);
                drop(shard);
                self.stale.fetch_add(1, Relaxed);
                Lookup::Stale
            }
            Some(_) | None => {
                drop(shard);
                self.misses.fetch_add(1, Relaxed);
                Lookup::Miss
            }
        }
    }

    /// Store a response computed under `epoch`. Returns `true` if the
    /// entry was admitted. Degraded or trace-carrying responses are
    /// refused (see the module docs); the caller is expected to have
    /// already skipped faulted/budgeted runs entirely. An insert is also
    /// refused when the key already holds an entry from a *newer* epoch:
    /// a request that outlived a reload must not replace fresh data with
    /// its retired snapshot's answer.
    pub fn insert(&self, key: CacheKey, epoch: u64, response: Arc<Response>) -> bool {
        if response.degraded.is_some() || response.trace.is_some() {
            return false;
        }
        let mut shard = self.shard(&key).lock();
        if shard.map.get(&key).is_some_and(|existing| existing.epoch > epoch) {
            return false;
        }
        if shard.map.len() >= shard.capacity && !shard.map.contains_key(&key) {
            if let Some(oldest) =
                shard.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| k.clone())
            {
                shard.map.remove(&oldest);
                self.evictions.fetch_add(1, Relaxed);
            }
        }
        shard.clock += 1;
        let stamp = shard.clock;
        shard.map.insert(key, Entry { stamp, epoch, response });
        true
    }

    /// Counters since construction.
    pub fn stats(&self) -> AnswerCacheStats {
        AnswerCacheStats {
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            stale: self.stale.load(Relaxed),
            evictions: self.evictions.load(Relaxed),
        }
    }

    /// Total live entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank_response() -> Response {
        Response {
            answers: Vec::new(),
            boolean: None,
            count: None,
            matches: Vec::new(),
            sqg: None,
            relations: Vec::new(),
            sparql: Vec::new(),
            failure: None,
            degraded: None,
            understanding_time: std::time::Duration::ZERO,
            evaluation_time: std::time::Duration::ZERO,
            map_time: std::time::Duration::ZERO,
            topk_time: std::time::Duration::ZERO,
            faults_fired: 0,
            ta_stats: Default::default(),
            trace: None,
        }
    }

    fn key(q: &str) -> CacheKey {
        CacheKey::new(q, Some(3), 42)
    }

    #[test]
    fn normalization_folds_case_whitespace_and_punctuation() {
        let canonical = normalize_question("Who is the mayor of Berlin?");
        for variant in [
            "who is the MAYOR of berlin",
            "  Who   is the mayor of Berlin???  ",
            "Who is the mayor of Berlin",
        ] {
            assert_eq!(normalize_question(variant), canonical, "{variant:?}");
        }
        // Parenthetical content is kept: these must NOT collide.
        assert_ne!(
            normalize_question("Which city is Houston (Texas)?"),
            normalize_question("Which city is Houston?"),
        );
    }

    #[test]
    fn fingerprint_tracks_semantic_config_only() {
        let base = GAnswerConfig::default();
        let same = config_fingerprint(&base);
        assert_eq!(config_fingerprint(&GAnswerConfig::default()), same);

        let semantic = GAnswerConfig { top_k: base.top_k + 1, ..GAnswerConfig::default() };
        assert_ne!(config_fingerprint(&semantic), same, "top_k is answer-relevant");

        let speed = GAnswerConfig {
            concurrency: crate::concurrency::Concurrency::with_threads(4),
            ..GAnswerConfig::default()
        };
        assert_eq!(config_fingerprint(&speed), same, "thread count never changes answers");
    }

    #[test]
    fn hit_miss_and_epoch_staleness() {
        let cache = AnswerCache::with_capacity(16);
        let k = key("Who is the mayor of Berlin?");
        assert!(matches!(cache.lookup(&k, 1), Lookup::Miss));
        assert!(cache.insert(k.clone(), 1, Arc::new(blank_response())));
        assert!(matches!(cache.lookup(&k, 1), Lookup::Hit(_)));
        // A reload (epoch bump) makes the entry stale exactly once...
        assert!(matches!(cache.lookup(&k, 2), Lookup::Stale));
        // ...after which it is simply gone.
        assert!(matches!(cache.lookup(&k, 2), Lookup::Miss));
        assert_eq!(cache.stats(), AnswerCacheStats { hits: 1, misses: 2, stale: 1, evictions: 0 });
    }

    #[test]
    fn old_epoch_requests_cannot_evict_or_overwrite_fresh_entries() {
        let cache = AnswerCache::with_capacity(16);
        let k = key("Who is the mayor of Berlin?");
        // A post-reload request populated the entry under epoch 2...
        assert!(cache.insert(k.clone(), 2, Arc::new(blank_response())));
        // ...then an in-flight request still pinned to epoch 1 looks it
        // up: a plain miss, and the fresh entry survives.
        assert!(matches!(cache.lookup(&k, 1), Lookup::Miss));
        assert!(matches!(cache.lookup(&k, 2), Lookup::Hit(_)));
        // Its insert is refused too — fresh data is never displaced by a
        // retired snapshot's answer.
        assert!(!cache.insert(k.clone(), 1, Arc::new(blank_response())));
        assert!(matches!(cache.lookup(&k, 2), Lookup::Hit(_)));
        let stats = cache.stats();
        assert_eq!((stats.stale, stats.misses), (0, 1), "{stats:?}");
    }

    #[test]
    fn keys_distinguish_k_and_fingerprint() {
        let cache = AnswerCache::with_capacity(16);
        let k3 = CacheKey::new("who?", Some(3), 1);
        let k5 = CacheKey::new("who?", Some(5), 1);
        let all = CacheKey::new("who?", None, 1);
        let other_cfg = CacheKey::new("who?", Some(3), 2);
        cache.insert(k3.clone(), 1, Arc::new(blank_response()));
        assert!(matches!(cache.lookup(&k3, 1), Lookup::Hit(_)));
        assert!(matches!(cache.lookup(&k5, 1), Lookup::Miss));
        assert!(matches!(cache.lookup(&all, 1), Lookup::Miss));
        assert!(matches!(cache.lookup(&other_cfg, 1), Lookup::Miss));
    }

    #[test]
    fn degraded_and_traced_responses_are_refused() {
        let cache = AnswerCache::with_capacity(16);
        let mut degraded = blank_response();
        degraded.degraded = Some(gqa_fault::BudgetKind::Frontier);
        assert!(!cache.insert(key("a"), 1, Arc::new(degraded)));
        let mut traced = blank_response();
        traced.trace = Some(Box::new(gqa_obs::QueryTrace::new("a")));
        assert!(!cache.insert(key("b"), 1, Arc::new(traced)));
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_evicts_the_least_recently_used() {
        // Single-entry shards: every insert into an occupied shard evicts.
        let cache = AnswerCache::with_capacity(1);
        for i in 0..32 {
            cache.insert(key(&format!("q{i}")), 1, Arc::new(blank_response()));
        }
        assert!(cache.stats().evictions > 0);
        assert!(cache.len() <= SHARDS, "bounded by one entry per shard");
    }
}
