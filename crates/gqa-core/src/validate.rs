//! Independent Definition-3 compliance checking.
//!
//! The matcher is search-optimized; this module re-states the paper's match
//! conditions declaratively and checks a produced [`Match`] against them.
//! Tests and property suites use it as the oracle the matcher must agree
//! with:
//!
//! 1. a vertex mapped to an entity candidate binds that entity
//!    (condition 1);
//! 2. a vertex mapped to a class candidate binds an *instance* of the class
//!    (condition 2, `⟨u_i rdf:type c_i⟩`);
//! 3. every edge is realized by a candidate predicate/path between the two
//!    bindings in some orientation (condition 3);
//! 4. the score equals `Σ log δ(arg,u) + Σ log δ(rel,P)` (Definition 6).

use crate::mapping::{MappedQuery, VertexBinding};
use crate::matcher::Match;
use gqa_rdf::paths::connects;
use gqa_rdf::schema::Schema;
use gqa_rdf::{Store, Triple};

/// A violated match condition.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// Binding vector length differs from the query's vertex count.
    Arity {
        /// Bindings present.
        got: usize,
        /// Vertices expected.
        expected: usize,
    },
    /// A vertex bound a value outside its candidate list (condition 1/2).
    VertexOutsideCandidates {
        /// Offending vertex.
        vertex: usize,
    },
    /// A class-constrained variable bound a non-instance (condition 2).
    ClassConstraint {
        /// Offending vertex.
        vertex: usize,
    },
    /// An edge has no realizing candidate pattern (condition 3).
    EdgeUnrealized {
        /// Offending edge.
        edge: usize,
    },
    /// The recorded score disagrees with Definition 6.
    Score {
        /// Score recorded on the match.
        recorded: f64,
        /// Score recomputed from the parts.
        recomputed: f64,
    },
}

/// Check one match against Definition 3 + Definition 6. Returns every
/// violation found (empty = valid).
pub fn validate(store: &Store, schema: &Schema, q: &MappedQuery, m: &Match) -> Vec<Violation> {
    let mut out = Vec::new();
    let n = q.sqg.vertices.len();
    if m.bindings.len() != n {
        out.push(Violation::Arity { got: m.bindings.len(), expected: n });
        return out;
    }

    // Conditions 1 & 2 per vertex.
    for (vi, binding) in q.vertices.iter().enumerate() {
        let u = m.bindings[vi];
        match binding {
            VertexBinding::Variable { classes } => {
                if !classes.is_empty() && !classes.iter().any(|&(c, _)| schema.has_type(u, c)) {
                    out.push(Violation::ClassConstraint { vertex: vi });
                }
            }
            VertexBinding::Candidates(cands) => {
                let ok =
                    cands.iter().any(
                        |c| {
                            if c.is_class {
                                schema.has_type(u, c.id)
                            } else {
                                c.id == u
                            }
                        },
                    );
                if !ok {
                    out.push(Violation::VertexOutsideCandidates { vertex: vi });
                }
            }
        }
    }

    // Condition 3 per edge.
    for (ei, e) in q.sqg.edges.iter().enumerate() {
        let (a, b) = (m.bindings[e.from], m.bindings[e.to]);
        let cand = &q.edges[ei];
        let realized = if cand.wildcard.is_some() {
            store.out_edges(a).any(|t| t.o == b) || store.out_edges(b).any(|t| t.o == a)
        } else {
            cand.list.iter().any(|(pattern, _)| {
                if pattern.len() == 1 {
                    let p = pattern.0[0].pred;
                    store.contains(Triple::new(a, p, b)) || store.contains(Triple::new(b, p, a))
                } else {
                    store.term(a).is_iri()
                        && store.term(b).is_iri()
                        && (connects(store, a, b, pattern).is_some()
                            || connects(store, a, b, &pattern.reversed()).is_some())
                }
            })
        };
        if !realized {
            out.push(Violation::EdgeUnrealized { edge: ei });
        }
    }

    // Definition 6 score.
    let recomputed: f64 = m.vertex_conf.iter().map(|c| c.max(1e-9).ln()).sum::<f64>()
        + m.edge_used.iter().map(|(_, c)| c.max(1e-9).ln()).sum::<f64>();
    if (recomputed - m.score).abs() > 1e-6 {
        out.push(Violation::Score { recorded: m.score, recomputed });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{EdgeCandidates, VertexCandidate};
    use crate::matcher::{find_matches, MatcherConfig};
    use crate::sqg::{SemanticQueryGraph, SqgEdge, SqgVertex};
    use gqa_rdf::{PathPattern, StoreBuilder, TermId};

    fn setup() -> (Store, Schema, MappedQuery) {
        let mut b = StoreBuilder::new();
        b.add_iri("dbr:A", "dbo:spouse", "dbr:B");
        b.add_iri("dbr:B", "rdf:type", "dbo:Actor");
        b.add_iri("dbr:C", "rdf:type", "dbo:Actor");
        let store = b.build();
        let schema = Schema::new(&store);
        let spouse = store.expect_iri("dbo:spouse");
        let mut sqg = SemanticQueryGraph::default();
        sqg.vertices.push(SqgVertex {
            node: 0,
            text: "who".into(),
            is_wh: true,
            is_target: true,
            is_proper: false,
        });
        sqg.vertices.push(SqgVertex {
            node: 1,
            text: "actor".into(),
            is_wh: false,
            is_target: false,
            is_proper: false,
        });
        sqg.edges.push(SqgEdge { from: 0, to: 1, phrase: Some((0, "be married to".into())) });
        let q = MappedQuery {
            sqg,
            vertices: vec![
                VertexBinding::Variable { classes: vec![] },
                VertexBinding::Candidates(vec![VertexCandidate {
                    id: store.expect_iri("dbo:Actor"),
                    confidence: 1.0,
                    is_class: true,
                }]),
            ],
            edges: vec![EdgeCandidates {
                list: vec![(PathPattern::single(spouse), 1.0)],
                wildcard: None,
            }],
        };
        (store, schema, q)
    }

    #[test]
    fn matcher_output_always_validates() {
        let (store, schema, q) = setup();
        let matches = find_matches(&store, &schema, &q, &MatcherConfig::default(), None);
        assert!(!matches.is_empty());
        for m in &matches {
            assert!(validate(&store, &schema, &q, m).is_empty(), "{m:?}");
        }
    }

    #[test]
    fn detects_every_violation_kind() {
        let (store, schema, q) = setup();
        let good = find_matches(&store, &schema, &q, &MatcherConfig::default(), None).remove(0);

        let mut arity = good.clone();
        arity.bindings.pop();
        assert!(matches!(validate(&store, &schema, &q, &arity)[0], Violation::Arity { .. }));

        let mut wrong_class = good.clone();
        wrong_class.bindings[1] = store.expect_iri("dbr:A"); // not an Actor
        let v = validate(&store, &schema, &q, &wrong_class);
        assert!(v.iter().any(|x| matches!(x, Violation::VertexOutsideCandidates { .. })), "{v:?}");

        let mut broken_edge = good.clone();
        broken_edge.bindings[0] = store.expect_iri("dbr:C"); // C not married to B
        let v = validate(&store, &schema, &q, &broken_edge);
        assert!(v.iter().any(|x| matches!(x, Violation::EdgeUnrealized { .. })), "{v:?}");

        let mut bad_score = good.clone();
        bad_score.score += 1.0;
        let v = validate(&store, &schema, &q, &bad_score);
        assert!(v.iter().any(|x| matches!(x, Violation::Score { .. })), "{v:?}");
    }

    #[test]
    fn class_constrained_variable_violation() {
        let (store, schema, mut q) = setup();
        q.vertices[0] =
            VertexBinding::Variable { classes: vec![(store.expect_iri("dbo:Actor"), 1.0)] };
        let m = Match {
            bindings: vec![store.expect_iri("dbr:A"), store.expect_iri("dbr:B")],
            vertex_conf: vec![1.0, 1.0],
            edge_used: vec![(PathPattern::single(store.expect_iri("dbo:spouse")), 1.0)],
            score: 0.0,
        };
        // dbr:A is not an Actor → class-constraint violation.
        let v = validate(&store, &schema, &q, &m);
        assert!(v.iter().any(|x| matches!(x, Violation::ClassConstraint { vertex: 0 })), "{v:?}");
        let _ = TermId(0);
    }
}
