//! Coreference resolution for relativizer arguments (§2, §4.1.3).
//!
//! In *"an actor **that** played in Philadelphia"* the arguments "actor"
//! and "that" refer to the same thing, so the two semantic relations share
//! an endpoint in `Q^S`. The cases the question workload needs are
//! relativizers (`that`/`who`/`which` heading a relative clause): they
//! resolve to the noun the clause modifies.

use crate::semrel::{argument_text, Argument, SemanticRelation};
use gqa_nlp::tree::DepTree;
use gqa_nlp::DepRel;

/// Resolve one argument node: a relativizer resolves to the noun modified
/// by its clause; anything else resolves to itself.
pub fn resolve_node(tree: &DepTree, node: usize) -> usize {
    let is_relativizer =
        matches!(tree.token(node).lower.as_str(), "that" | "who" | "whom" | "which")
            && matches!(tree.rels[node], DepRel::Nsubj | DepRel::Nsubjpass | DepRel::Dobj);
    if !is_relativizer {
        return node;
    }
    // node → clause verb → (rcmod) → modified noun.
    let Some(verb) = tree.parent(node) else { return node };
    // The clause verb may itself be a conjunct of the rcmod verb.
    let mut v = verb;
    for _ in 0..tree.len() {
        match tree.rels[v] {
            DepRel::Rcmod => return tree.parent(v).unwrap_or(node),
            DepRel::Conj => match tree.parent(v) {
                Some(p) => v = p,
                None => return node,
            },
            _ => return node,
        }
    }
    node
}

/// Resolve both arguments of every relation, rewriting texts accordingly.
pub fn resolve(tree: &DepTree, relations: &mut [SemanticRelation]) {
    for rel in relations {
        for arg in [&mut rel.arg1, &mut rel.arg2] {
            let resolved = resolve_node(tree, arg.node);
            if resolved != arg.node {
                *arg = Argument { node: resolved, text: argument_text(tree, resolved) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arguments::{find_arguments, ArgumentRules};
    use crate::embedding::find_embeddings;
    use gqa_nlp::parser::DependencyParser;
    use gqa_paraphrase::dict::{ParaMapping, ParaphraseDict};
    use gqa_rdf::{PathPattern, TermId};

    fn dict_with(phrases: &[&str]) -> ParaphraseDict {
        let mut d = ParaphraseDict::new();
        for (i, p) in phrases.iter().enumerate() {
            d.insert(
                (*p).to_owned(),
                vec![ParaMapping {
                    path: PathPattern::single(TermId(i as u32)),
                    tfidf: 1.0,
                    confidence: 1.0,
                }],
            );
        }
        d
    }

    #[test]
    fn relativizer_resolves_to_modified_noun() {
        let tree = DependencyParser::new()
            .parse("Who was married to an actor that played in Philadelphia?")
            .unwrap();
        let dict = dict_with(&["be married to", "play in"]);
        let mut rels: Vec<_> = find_embeddings(&tree, &dict)
            .iter()
            .filter_map(|e| find_arguments(&tree, e, ArgumentRules::all()))
            .collect();
        resolve(&tree, &mut rels);
        let play = rels.iter().find(|r| r.phrase == "play in").unwrap();
        assert_eq!(play.arg1.text, "actor", "『that』 must corefer with 『actor』");
        let married = rels.iter().find(|r| r.phrase == "be married to").unwrap();
        // Now the two relations share the actor node.
        assert_eq!(married.arg2.node, play.arg1.node);
    }

    #[test]
    fn coordinated_relative_clause_resolves_through_conj() {
        let tree = DependencyParser::new()
            .parse("Give me all people that were born in Vienna and died in Berlin.")
            .unwrap();
        let dict = dict_with(&["be born in", "die in"]);
        let mut rels: Vec<_> = find_embeddings(&tree, &dict)
            .iter()
            .filter_map(|e| find_arguments(&tree, e, ArgumentRules::all()))
            .collect();
        resolve(&tree, &mut rels);
        for r in &rels {
            assert_eq!(r.arg1.text, "person", "{r:?}");
        }
        assert_eq!(rels[0].arg1.node, rels[1].arg1.node);
    }

    #[test]
    fn non_relativizers_are_untouched() {
        let tree = DependencyParser::new().parse("Who developed Minecraft?").unwrap();
        // "who" is nsubj of the root verb, not of an rcmod verb.
        assert_eq!(resolve_node(&tree, 0), 0);
    }
}
