//! Aggregation extension (the paper's future work; Table 10 lists
//! aggregation as 35 % of its failures).
//!
//! Two operators:
//!
//! * **Count** ("How many …"): count the distinct target bindings of the
//!   top-k matches — equivalent to `SELECT COUNT(?t)`;
//! * **Superlative** ("youngest", "largest", …): order the target bindings
//!   by a superlative-specific predicate and keep the extremum —
//!   equivalent to `ORDER BY DESC(?v) OFFSET 0 LIMIT 1` (the SPARQL shape
//!   §6 Exp 5 quotes).
//!
//! Off by default in the pipeline so Table 10 reproduces; the ablation
//! experiment switches it on.

use crate::matcher::Match;
use gqa_rdf::{Store, TermId};

/// Ordering direction for a superlative.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Extremum {
    /// Keep the largest value.
    Max,
    /// Keep the smallest value.
    Min,
}

/// The ordering key of a superlative adjective: predicate IRI + direction.
///
/// `youngest` = latest birth date; `largest` = greatest population; etc.
/// This is the local analogue of the lexical resources a production system
/// would learn or curate.
pub fn superlative_key(adjective_lemma: &str) -> Option<(&'static str, Extremum)> {
    Some(match adjective_lemma {
        "youngest" => ("dbo:birthDate", Extremum::Max),
        "oldest" => ("dbo:birthDate", Extremum::Min),
        "largest" | "biggest" | "most populous" => ("dbo:population", Extremum::Max),
        "smallest" | "least populous" => ("dbo:population", Extremum::Min),
        "highest" | "tallest" => ("dbo:elevation", Extremum::Max),
        "longest" => ("dbo:length", Extremum::Max),
        "first" => ("dbo:birthDate", Extremum::Min),
        "last" => ("dbo:birthDate", Extremum::Max),
        _ => return None,
    })
}

/// Keep the matches whose binding at `vertex` is a numeric literal
/// satisfying the comparison — the FILTER operator Exp 5 says aggregation
/// questions need ("Which cities have more than N inhabitants?"). Fully
/// data-driven: no noun→predicate mapping is consulted; a match survives
/// exactly when the measured variable bound a satisfying number.
pub fn comparison(
    store: &Store,
    matches: &[Match],
    vertex: usize,
    greater: bool,
    value: f64,
) -> Vec<Match> {
    matches
        .iter()
        .filter(|m| {
            let Some(&id) = m.bindings.get(vertex) else { return false };
            let Some(v) = store.term(id).numeric_value() else { return false };
            if greater {
                v > value
            } else {
                v < value
            }
        })
        .cloned()
        .collect()
}

/// Count the distinct target bindings.
pub fn count(matches: &[Match], target: usize) -> usize {
    let mut ids: Vec<TermId> =
        matches.iter().filter_map(|m| m.bindings.get(target).copied()).collect();
    ids.sort_unstable();
    ids.dedup();
    ids.len()
}

/// Keep only the matches whose target binding attains the extremum of the
/// superlative's key predicate. Bindings lacking the predicate are ignored;
/// returns `None` when no binding carries it (the question stays
/// unanswered, like the paper's systems).
pub fn superlative(
    store: &Store,
    matches: &[Match],
    target: usize,
    adjective_lemma: &str,
) -> Option<Vec<Match>> {
    let (pred_iri, dir) = superlative_key(adjective_lemma)?;
    // Fallible lookup: a store without the key predicate means the question
    // stays unanswered, never a worker-thread panic.
    let pred = store.try_iri(pred_iri).ok()?;

    // Key per distinct binding: prefer numeric comparison, fall back to
    // lexicographic (ISO dates compare correctly as strings).
    let key_of = |id: TermId| -> Option<(Option<f64>, String)> {
        let obj = store.objects(id, pred).next()?;
        let term = store.term(obj);
        Some((term.numeric_value(), term.as_literal().unwrap_or_default().to_owned()))
    };

    let mut keyed: Vec<(&Match, (Option<f64>, String))> = matches
        .iter()
        .filter_map(|m| {
            let id = *m.bindings.get(target)?;
            key_of(id).map(|k| (m, k))
        })
        .collect();
    if keyed.is_empty() {
        return None;
    }
    let cmp = |a: &(Option<f64>, String), b: &(Option<f64>, String)| match (a.0, b.0) {
        (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal),
        _ => a.1.cmp(&b.1),
    };
    keyed.sort_by(|x, y| cmp(&x.1, &y.1));
    let best = match dir {
        Extremum::Min => keyed.first().map(|(_, k)| k.clone()),
        Extremum::Max => keyed.last().map(|(_, k)| k.clone()),
    }?;
    Some(
        keyed
            .into_iter()
            .filter(|(_, k)| cmp(k, &best) == std::cmp::Ordering::Equal)
            .map(|(m, _)| m.clone())
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqa_rdf::{StoreBuilder, Term};

    fn m(id: TermId, score: f64) -> Match {
        Match { bindings: vec![id], vertex_conf: vec![1.0], edge_used: vec![], score }
    }

    fn players() -> (gqa_rdf::Store, Vec<Match>) {
        let mut b = StoreBuilder::new();
        b.add_obj("dbr:Rooney", "dbo:birthDate", Term::typed_lit("1985-10-24", "xsd:date"));
        b.add_obj("dbr:Sterling", "dbo:birthDate", Term::typed_lit("1994-12-08", "xsd:date"));
        b.add_obj("dbr:Lampard", "dbo:birthDate", Term::typed_lit("1978-06-20", "xsd:date"));
        let store = b.build();
        let ms = vec![
            m(store.expect_iri("dbr:Rooney"), -0.1),
            m(store.expect_iri("dbr:Sterling"), -0.2),
            m(store.expect_iri("dbr:Lampard"), -0.3),
        ];
        (store, ms)
    }

    #[test]
    fn youngest_picks_latest_birth_date() {
        let (store, ms) = players();
        let kept = superlative(&store, &ms, 0, "youngest").unwrap();
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].bindings[0], store.expect_iri("dbr:Sterling"));
    }

    #[test]
    fn oldest_picks_earliest_birth_date() {
        let (store, ms) = players();
        let kept = superlative(&store, &ms, 0, "oldest").unwrap();
        assert_eq!(kept[0].bindings[0], store.expect_iri("dbr:Lampard"));
    }

    #[test]
    fn numeric_superlative() {
        let mut b = StoreBuilder::new();
        b.add_obj("dbr:Sydney", "dbo:population", Term::int_lit(5_300_000));
        b.add_obj("dbr:Melbourne", "dbo:population", Term::int_lit(5_000_000));
        let store = b.build();
        let ms =
            vec![m(store.expect_iri("dbr:Sydney"), 0.0), m(store.expect_iri("dbr:Melbourne"), 0.0)];
        let largest = superlative(&store, &ms, 0, "largest").unwrap();
        assert_eq!(largest[0].bindings[0], store.expect_iri("dbr:Sydney"));
        let smallest = superlative(&store, &ms, 0, "smallest").unwrap();
        assert_eq!(smallest[0].bindings[0], store.expect_iri("dbr:Melbourne"));
    }

    #[test]
    fn comparison_filters_numeric_bindings() {
        let mut b = StoreBuilder::new();
        b.add_obj("dbr:Berlin", "dbo:population", Term::int_lit(3_500_000));
        b.add_obj("dbr:Munich", "dbo:population", Term::int_lit(1_500_000));
        b.add_iri("dbr:Berlin", "dbo:country", "dbr:Germany");
        let store = b.build();
        let pop_b = store.dict().lookup(&Term::int_lit(3_500_000)).unwrap();
        let pop_m = store.dict().lookup(&Term::int_lit(1_500_000)).unwrap();
        let germany = store.expect_iri("dbr:Germany");
        let mk = |city: &str, q| Match {
            bindings: vec![store.expect_iri(city), q],
            vertex_conf: vec![1.0, 1.0],
            edge_used: vec![],
            score: 0.0,
        };
        let ms = vec![
            mk("dbr:Berlin", pop_b),
            mk("dbr:Munich", pop_m),
            mk("dbr:Berlin", germany), // non-numeric binding never satisfies
        ];
        let over = comparison(&store, &ms, 1, true, 2_000_000.0);
        assert_eq!(over.len(), 1);
        assert_eq!(over[0].bindings[0], store.expect_iri("dbr:Berlin"));
        let under = comparison(&store, &ms, 1, false, 2_000_000.0);
        assert_eq!(under.len(), 1);
        assert_eq!(under[0].bindings[0], store.expect_iri("dbr:Munich"));
    }

    #[test]
    fn count_distinct_targets() {
        let (store, mut ms) = players();
        ms.push(m(store.expect_iri("dbr:Rooney"), -0.9)); // duplicate binding
        assert_eq!(count(&ms, 0), 3);
        assert_eq!(count(&[], 0), 0);
    }

    #[test]
    fn missing_key_predicate_returns_none() {
        let (store, ms) = players();
        assert!(superlative(&store, &ms, 0, "longest").is_none(), "no dbo:length in store");
        assert!(superlative(&store, &ms, 0, "gronkiest").is_none(), "unknown adjective");
    }
}
