//! Semantic relations (Definition 1): `⟨rel, arg1, arg2⟩`.

use gqa_nlp::tree::DepTree;

/// An argument of a semantic relation: a dependency-tree node plus its
/// rendered mention text (the lemmatized noun phrase headed there).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Argument {
    /// The head node in the dependency tree.
    pub node: usize,
    /// The mention text used for entity linking (lemmas of the NP tokens).
    pub text: String,
}

/// One extracted semantic relation (Definition 1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SemanticRelation {
    /// The relation phrase text as it appears in the paraphrase dictionary.
    pub phrase: String,
    /// Dictionary phrase id.
    pub phrase_id: usize,
    /// Nodes of the phrase's embedding subtree in `Y` (Definition 5).
    pub embedding: Vec<usize>,
    /// First argument.
    pub arg1: Argument,
    /// Second argument.
    pub arg2: Argument,
}

/// Render the mention text for an argument node: the lemmas of the noun
/// phrase headed at `node` (wh-words render as their lower form).
pub fn argument_text(tree: &DepTree, node: usize) -> String {
    if tree.pos(node).is_wh() {
        return tree.token(node).lower.clone();
    }
    // NP-internal subtree in sentence order, lemmatized.
    let mut nodes: Vec<usize> = vec![node];
    let mut stack = vec![node];
    while let Some(x) = stack.pop() {
        for c in tree.children(x) {
            let superlative = tree.pos(c) == gqa_nlp::Pos::Jjs;
            if !superlative
                && matches!(
                    tree.rels[c],
                    gqa_nlp::DepRel::Nn | gqa_nlp::DepRel::Amod | gqa_nlp::DepRel::Num
                )
            {
                nodes.push(c);
                stack.push(c);
            }
        }
    }
    nodes.sort_unstable();
    let words: Vec<&str> = nodes.iter().map(|&n| tree.token(n).lemma.as_str()).collect();
    words.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqa_nlp::parser::DependencyParser;

    #[test]
    fn argument_text_lemmatizes_noun_phrases() {
        let t = DependencyParser::new()
            .parse("Give me all cars that are produced in Germany.")
            .unwrap();
        let cars = t.tokens.iter().position(|x| x.lower == "cars").unwrap();
        assert_eq!(argument_text(&t, cars), "car");
        let germany = t.tokens.iter().position(|x| x.lower == "germany").unwrap();
        assert_eq!(argument_text(&t, germany), "germany");
    }

    #[test]
    fn argument_text_keeps_multiword_names() {
        let t = DependencyParser::new().parse("Who was the father of Queen Elizabeth II?").unwrap();
        let head = t.tokens.iter().position(|x| x.text == "II").map(|_| ()).and_then(|_| {
            // The NP head is the last noun of the span.
            t.tokens.iter().rposition(|x| x.text == "II" || x.text == "Elizabeth")
        });
        let head = head.unwrap();
        let text = argument_text(&t, head);
        assert!(text.contains("elizabeth"), "{text}");
    }

    #[test]
    fn wh_argument_is_its_own_text() {
        let t = DependencyParser::new().parse("Who developed Minecraft?").unwrap();
        assert_eq!(argument_text(&t, 0), "who");
    }
}
