//! Oracle test for the embedding finder (Definition 5 / Algorithm 2): a
//! brute-force reference enumerates *every* connected subtree of the
//! dependency tree and checks the definition directly; the optimized finder
//! must locate an embedding for a phrase iff the reference does.

use gqa_core::embedding::find_embeddings;
use gqa_nlp::parser::DependencyParser;
use gqa_nlp::tree::DepTree;
use gqa_paraphrase::dict::{ParaMapping, ParaphraseDict};
use gqa_rdf::{PathPattern, TermId};
use proptest::prelude::*;

fn dict_with(phrases: &[String]) -> ParaphraseDict {
    let mut d = ParaphraseDict::new();
    for (i, p) in phrases.iter().enumerate() {
        d.insert(
            p.clone(),
            vec![ParaMapping {
                path: PathPattern::single(TermId(i as u32)),
                tfidf: 1.0,
                confidence: 1.0,
            }],
        );
    }
    d
}

/// Does `node` match `word` the way the finder does (lemma or lower)?
fn matches(tree: &DepTree, n: usize, word: &str) -> bool {
    tree.token(n).lemma == word || tree.token(n).lower == word
}

/// Reference: does ANY connected subtree of `tree` cover the phrase per
/// Definition 5 condition 1 (each subtree node consumes one phrase word,
/// all words covered)? Enumerates node subsets up to the phrase length.
fn reference_occurs(tree: &DepTree, words: &[&str]) -> bool {
    let n = tree.len();
    let k = words.len();
    // Candidate nodes: those matching at least one word.
    let cands: Vec<usize> = (0..n).filter(|&i| words.iter().any(|w| matches(tree, i, w))).collect();
    if cands.len() < k {
        return false;
    }
    // All k-subsets of candidate nodes.
    let mut idx: Vec<usize> = (0..k).collect();
    if cands.len() < k {
        return false;
    }
    loop {
        let subset: Vec<usize> = idx.iter().map(|&i| cands[i]).collect();
        if connected(tree, &subset) && perfect_cover(tree, &subset, words) {
            return true;
        }
        // next combination
        let mut i = k;
        loop {
            if i == 0 {
                return false;
            }
            i -= 1;
            if idx[i] != i + cands.len() - k {
                idx[i] += 1;
                for j in i + 1..k {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// Is the node set connected in the (undirected) tree?
fn connected(tree: &DepTree, nodes: &[usize]) -> bool {
    if nodes.is_empty() {
        return false;
    }
    let mut seen = vec![nodes[0]];
    let mut stack = vec![nodes[0]];
    while let Some(x) = stack.pop() {
        for &y in nodes {
            if seen.contains(&y) {
                continue;
            }
            let adjacent = tree.parent(x) == Some(y) || tree.parent(y) == Some(x);
            if adjacent {
                seen.push(y);
                stack.push(y);
            }
        }
    }
    seen.len() == nodes.len()
}

/// Is there a perfect matching nodes ↔ words? (k ≤ 3, brute force.)
fn perfect_cover(tree: &DepTree, nodes: &[usize], words: &[&str]) -> bool {
    fn rec(
        tree: &DepTree,
        nodes: &[usize],
        words: &[&str],
        used: &mut Vec<bool>,
        wi: usize,
    ) -> bool {
        if wi == words.len() {
            return true;
        }
        for (ni, &node) in nodes.iter().enumerate() {
            if !used[ni] && matches(tree, node, words[wi]) {
                used[ni] = true;
                if rec(tree, nodes, words, used, wi + 1) {
                    return true;
                }
                used[ni] = false;
            }
        }
        false
    }
    let mut used = vec![false; nodes.len()];
    rec(tree, nodes, words, &mut used, 0)
}

/// Question templates + phrase vocabulary for the generator.
fn arb_case() -> impl Strategy<Value = (String, Vec<String>)> {
    let questions = prop::sample::select(vec![
        "Who was married to an actor that played in Philadelphia?",
        "Which movies did Antonio Banderas star in?",
        "In which movies did Antonio Banderas star?",
        "Who is the mayor of Berlin?",
        "Give me all people that were born in Vienna and died in Berlin.",
        "What is the time zone of Salt Lake City?",
        "Who is the successor of the father of Queen Elizabeth II?",
        "Which books by Kerouac were published by Viking Press?",
    ]);
    let phrases = prop::collection::vec(
        prop::sample::select(vec![
            "be married to",
            "play in",
            "star in",
            "mayor of",
            "be born in",
            "die in",
            "time zone of",
            "successor of",
            "father of",
            "be published by",
            "capital of", // sometimes absent → negative cases
            "uncle of",
            "zone of",
        ]),
        1..5,
    );
    (
        questions.prop_map(str::to_owned),
        phrases.prop_map(|v| {
            let mut v: Vec<String> = v.into_iter().map(str::to_owned).collect();
            v.sort();
            v.dedup();
            v
        }),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Finder occurrence ⇔ reference occurrence, for every phrase.
    ///
    /// One-sided exception: the finder applies the content-word-root
    /// anchoring rule (an embedding never roots at a light word), which is
    /// deliberately stricter than raw Definition 5 — so the finder may miss
    /// subtrees the reference admits, but must never invent one. Finder ⇒
    /// reference is checked exactly; reference ⇒ finder is checked for
    /// phrases the finder reports nowhere in no variant (catching total
    /// misses of well-anchored phrases via the curated assertions below).
    #[test]
    fn finder_is_sound_wrt_definition_5(case in arb_case()) {
        let (question, phrases) = case;
        let tree = DependencyParser::new().parse(&question).unwrap();
        let dict = dict_with(&phrases);
        let found = find_embeddings(&tree, &dict);
        for e in &found {
            let words: Vec<&str> = dict.phrase_words(e.phrase_id).iter().map(String::as_str).collect();
            // Soundness: the reported node set itself satisfies Def 5 cond 1.
            prop_assert!(connected(&tree, &e.nodes), "{question} {e:?}");
            prop_assert!(perfect_cover(&tree, &e.nodes, &words), "{question} {e:?}");
            // And the reference agrees an embedding exists.
            prop_assert!(reference_occurs(&tree, &words), "{question} {e:?}");
        }
    }
}

#[test]
fn finder_is_complete_on_the_anchored_suite() {
    // Completeness spot-checks: phrases whose content word is present must
    // be found (the strict-anchoring rule never loses these).
    let cases = [
        (
            "Who was married to an actor that played in Philadelphia?",
            vec!["be married to", "play in"],
        ),
        ("In which movies did Antonio Banderas star?", vec!["star in"]),
        ("What is the time zone of Salt Lake City?", vec!["time zone of"]),
        (
            "Who is the successor of the father of Queen Elizabeth II?",
            vec!["successor of", "father of"],
        ),
    ];
    for (q, expect) in cases {
        let tree = DependencyParser::new().parse(q).unwrap();
        let phrases: Vec<String> = expect.iter().map(|s| s.to_string()).collect();
        let dict = dict_with(&phrases);
        let found = find_embeddings(&tree, &dict);
        for want in expect {
            assert!(found.iter().any(|e| e.phrase == want), "{q}: {want} missing from {found:?}");
        }
    }
}
