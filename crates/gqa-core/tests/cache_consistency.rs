//! Cache-consistency property: a [`gqa_core::AnswerCache`] hit must be
//! byte-identical to a cold pipeline run for the same normalized question
//! and store epoch. The cache never transforms a response — it only
//! remembers one — so this reduces to (a) the pipeline being
//! deterministic for a fixed question and config (already pinned by the
//! PR-2 parallel==serial suite) and (b) the cache returning exactly the
//! `Arc` it was given, for exactly the key/epoch it was given.

use gqa_core::cache::{config_fingerprint, normalize_question};
use gqa_core::pipeline::{GAnswer, GAnswerConfig, Response};
use gqa_core::{AnswerCache, CacheKey, Lookup};
use gqa_datagen::minidbp::mini_dbpedia;
use gqa_datagen::patty::mini_dict;
use proptest::prelude::*;
use std::sync::Arc;

/// Questions with distinct outcomes against mini-DBpedia: a plain
/// entity answer, a multi-hop answer, a boolean, and a guaranteed miss.
const QUESTIONS: &[&str] = &[
    "Who is the mayor of Berlin?",
    "Who was married to an actor that played in Philadelphia?",
    "Is Berlin the capital of Germany?",
    "Who is the mayor of Atlantis?",
];

/// Case/whitespace/punctuation variants that must share a cache key with
/// their canonical form (the serving layer folds them via
/// [`normalize_question`]).
fn variant(question: &str, which: usize) -> String {
    match which {
        0 => question.to_uppercase(),
        1 => format!("  {}  ", question.to_lowercase()),
        2 => question.replace('?', "???"),
        _ => question.replace(' ', "  "),
    }
}

/// Everything in a [`Response`] except wall-clock timings and the trace:
/// the deterministic payload a cache hit must reproduce bit-for-bit.
/// `f64` Debug-formats as the shortest round-trip representation, so
/// equal strings mean equal bits for every score.
fn semantic_image(r: &Response) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        r.answers,
        r.boolean,
        r.count,
        r.matches,
        r.sqg,
        r.relations,
        r.sparql,
        r.failure,
        r.degraded,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cache_hits_are_byte_identical_to_cold_runs(
        qi in 0usize..4,
        variant_id in 0usize..4,
        k in prop::option::of(0usize..6),
        epoch in 1u64..4,
    ) {
        let store = mini_dbpedia();
        let sys = GAnswer::new(&store, mini_dict(&store), GAnswerConfig::default());
        let question = QUESTIONS[qi];
        let fingerprint = config_fingerprint(&sys.config);

        // Cold run → cache → hit.
        let cold = Arc::new(sys.answer(question));
        let cache = AnswerCache::with_capacity(8);
        let key = CacheKey::new(question, k, fingerprint);
        prop_assert!(cache.insert(key.clone(), epoch, cold.clone()));
        let Lookup::Hit(cached) = cache.lookup(&key, epoch) else {
            return Err(TestCaseError::fail("expected a hit"));
        };

        // The hit is the stored response verbatim...
        prop_assert!(Arc::ptr_eq(&cached, &cold));
        // ...and a *second* cold run of the same question produces the
        // same semantic payload, so serving the cached value is
        // indistinguishable from re-running the pipeline.
        let rerun = sys.answer(question);
        prop_assert_eq!(semantic_image(&cached), semantic_image(&rerun));

        // Normalized variants address the same entry.
        let vkey = CacheKey::new(&variant(question, variant_id), k, fingerprint);
        prop_assert_eq!(&vkey, &key);
        prop_assert!(matches!(cache.lookup(&vkey, epoch), Lookup::Hit(_)));

        // A different epoch must NOT serve the entry (reload safety).
        let other_epoch = epoch + 1;
        prop_assert!(matches!(cache.lookup(&key, other_epoch), Lookup::Stale));
    }
}

#[test]
fn normalization_is_idempotent_over_the_question_pool() {
    for q in QUESTIONS {
        let once = normalize_question(q);
        assert_eq!(normalize_question(&once), once, "{q:?}");
    }
}
