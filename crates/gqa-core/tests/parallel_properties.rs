//! Property tests for the parallel online path: on random mini-DBpedia
//! stores and random queries, the multi-threaded TA search and the sharded
//! neighborhood pruning must be *bit-identical* to their serial
//! counterparts — same match sets, same scores, same round/termination
//! bookkeeping. Thread count may only change wall-clock and
//! `TaStats::parallel_probes`.

use gqa_core::concurrency::Concurrency;
use gqa_core::mapping::{EdgeCandidates, MappedQuery, VertexBinding, VertexCandidate};
use gqa_core::matcher::{prune, prune_sharded, MatcherConfig};
use gqa_core::sqg::{SemanticQueryGraph, SqgEdge, SqgVertex};
use gqa_core::topk::{top_k, top_k_with};
use gqa_obs::Obs;
use gqa_rdf::schema::Schema;
use gqa_rdf::{PathPattern, Store, StoreBuilder};
use proptest::prelude::*;

fn build_store(edges: &[(u8, u8, u8)]) -> Store {
    let mut b = StoreBuilder::new();
    for v in 0..8u8 {
        b.add_iri(&format!("v{v}"), "rdf:type", "C");
    }
    for p in 0..3u8 {
        b.add_iri("anchor_a", &format!("p{p}"), "anchor_b");
    }
    for &(s, p, o) in edges {
        b.add_iri(&format!("v{s}"), &format!("p{p}"), &format!("v{o}"));
    }
    b.build()
}

/// A random 2- or 3-vertex query: one variable target plus fixed vertices
/// with candidate lists (longer than matcher_properties' lists, so the TA
/// runs more rounds and the parallel fan-out actually engages) and
/// single-predicate or wildcard edges.
#[derive(Clone, Debug)]
struct RandomQuery {
    n: usize,
    cands: Vec<Vec<u8>>,
    edge_preds: Vec<Option<u8>>,
}

fn arb_query() -> impl Strategy<Value = RandomQuery> {
    (2usize..=3).prop_flat_map(|n| {
        (
            prop::collection::vec(prop::collection::vec(0u8..8, 1..5), n - 1),
            prop::collection::vec(prop::option::of(0u8..3), n - 1),
        )
            .prop_map(move |(cands, edge_preds)| RandomQuery { n, cands, edge_preds })
    })
}

fn to_mapped(store: &Store, rq: &RandomQuery) -> MappedQuery {
    let mut sqg = SemanticQueryGraph::default();
    for i in 0..rq.n {
        sqg.vertices.push(SqgVertex {
            node: i,
            text: format!("t{i}"),
            is_wh: i == 0,
            is_target: i == 0,
            is_proper: false,
        });
    }
    let mut vertices: Vec<VertexBinding> = vec![VertexBinding::Variable { classes: vec![] }];
    for c in &rq.cands {
        let list = c
            .iter()
            .enumerate()
            .map(|(rank, &v)| VertexCandidate {
                id: store.expect_iri(&format!("v{v}")),
                confidence: 1.0 / (1.0 + rank as f64),
                is_class: false,
            })
            .collect();
        vertices.push(VertexBinding::Candidates(list));
    }
    let mut edges = Vec::new();
    for (i, ep) in rq.edge_preds.iter().enumerate() {
        sqg.edges.push(SqgEdge {
            from: i,
            to: i + 1,
            phrase: ep.map(|p| (p as usize, format!("p{p}"))),
        });
        edges.push(match ep {
            Some(p) => EdgeCandidates {
                list: vec![(PathPattern::single(store.expect_iri(&format!("p{p}"))), 0.9)],
                wildcard: None,
            },
            None => EdgeCandidates { list: vec![], wildcard: Some(0.3) },
        });
    }
    MappedQuery { sqg, vertices, edges }
}

fn candidate_lists(q: &MappedQuery) -> Vec<Vec<(gqa_rdf::TermId, bool)>> {
    q.vertices
        .iter()
        .map(|v| match v {
            VertexBinding::Candidates(c) => c.iter().map(|x| (x.id, x.is_class)).collect(),
            VertexBinding::Variable { .. } => Vec::new(),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Parallel `top_k` at threads ∈ {2, 4} returns exactly the same match
    /// set (bindings *and* order), scores, and TA bookkeeping (rounds,
    /// probes, θ/Upbound histories, early termination) as threads = 1.
    #[test]
    fn parallel_topk_is_bit_identical_to_serial(
        store_edges in prop::collection::vec((0u8..8, 0u8..3, 0u8..8), 0..24),
        rq in arb_query(),
        k in 1usize..5,
    ) {
        let store = build_store(&store_edges);
        let schema = Schema::new(&store);
        let q = to_mapped(&store, &rq);
        let cfg = MatcherConfig::default();
        let (serial, serial_stats) = top_k(&store, &schema, &q, &cfg, k);
        for threads in [2usize, 4] {
            let (par, par_stats) = top_k_with(
                &store,
                &schema,
                &q,
                &cfg,
                k,
                &Concurrency::with_threads(threads),
                &Obs::disabled(),
                None,
                &gqa_fault::Exec::none(),
            );
            prop_assert_eq!(par.len(), serial.len(), "threads={}", threads);
            for (a, b) in par.iter().zip(&serial) {
                prop_assert_eq!(&a.bindings, &b.bindings, "threads={}", threads);
                prop_assert!(a.score.to_bits() == b.score.to_bits(), "threads={threads}: {} vs {}", a.score, b.score);
            }
            prop_assert_eq!(par_stats.rounds, serial_stats.rounds, "threads={}", threads);
            prop_assert_eq!(par_stats.probes, serial_stats.probes, "threads={}", threads);
            prop_assert_eq!(
                par_stats.early_terminated,
                serial_stats.early_terminated,
                "threads={}", threads
            );
            prop_assert_eq!(
                par_stats.pruned_candidates,
                serial_stats.pruned_candidates,
                "threads={}", threads
            );
            prop_assert_eq!(
                &par_stats.threshold_history,
                &serial_stats.threshold_history,
                "threads={}", threads
            );
            prop_assert_eq!(
                &par_stats.upbound_history,
                &serial_stats.upbound_history,
                "threads={}", threads
            );
        }
    }

    /// Sharded pruning keeps exactly the candidates `prune` keeps, in the
    /// same order.
    #[test]
    fn sharded_pruning_equals_serial_pruning(
        store_edges in prop::collection::vec((0u8..8, 0u8..3, 0u8..8), 0..24),
        rq in arb_query(),
    ) {
        let store = build_store(&store_edges);
        let q = to_mapped(&store, &rq);
        let reference = candidate_lists(&prune(&store, &q));
        for threads in [1usize, 2, 4, 16] {
            let sharded = candidate_lists(&prune_sharded(&store, &q, threads));
            prop_assert_eq!(&sharded, &reference, "threads={}", threads);
        }
    }
}
