//! Property tests for the subgraph matcher: on random graphs and random
//! mapped queries, (a) every produced match passes the independent
//! Definition-3 validator, (b) the matcher finds exactly the matches a
//! brute-force assignment enumerator finds, and (c) the TA top-k agrees
//! with the exhaustive search's prefix.

use gqa_core::mapping::{EdgeCandidates, MappedQuery, VertexBinding, VertexCandidate};
use gqa_core::matcher::{find_matches, MatcherConfig};
use gqa_core::sqg::{SemanticQueryGraph, SqgEdge, SqgVertex};
use gqa_core::topk::top_k;
use gqa_core::validate::validate;
use gqa_rdf::schema::Schema;
use gqa_rdf::{PathPattern, Store, StoreBuilder, TermId, Triple};
use proptest::prelude::*;

fn build_store(edges: &[(u8, u8, u8)]) -> Store {
    let mut b = StoreBuilder::new();
    // Ensure all vertices/predicates exist even with few edges (the query
    // generator references them by number unconditionally).
    for v in 0..8u8 {
        b.add_iri(&format!("v{v}"), "rdf:type", "C");
    }
    for p in 0..3u8 {
        b.add_iri("anchor_a", &format!("p{p}"), "anchor_b");
    }
    for &(s, p, o) in edges {
        b.add_iri(&format!("v{s}"), &format!("p{p}"), &format!("v{o}"));
    }
    b.build()
}

/// A random 2- or 3-vertex query: one variable target plus fixed vertices
/// with small candidate lists and single-predicate or wildcard edges.
#[derive(Clone, Debug)]
struct RandomQuery {
    n: usize,
    // per fixed vertex (index ≥ 1): candidate vertex numbers
    cands: Vec<Vec<u8>>,
    // per edge i (connecting i → i+1): Some(pred) or None for wildcard
    edge_preds: Vec<Option<u8>>,
}

fn arb_query() -> impl Strategy<Value = RandomQuery> {
    (2usize..=3).prop_flat_map(|n| {
        (
            prop::collection::vec(prop::collection::vec(0u8..8, 1..3), n - 1),
            prop::collection::vec(prop::option::of(0u8..3), n - 1),
        )
            .prop_map(move |(cands, edge_preds)| RandomQuery { n, cands, edge_preds })
    })
}

fn to_mapped(store: &Store, rq: &RandomQuery) -> MappedQuery {
    let mut sqg = SemanticQueryGraph::default();
    for i in 0..rq.n {
        sqg.vertices.push(SqgVertex {
            node: i,
            text: format!("t{i}"),
            is_wh: i == 0,
            is_target: i == 0,
            is_proper: false,
        });
    }
    let mut vertices: Vec<VertexBinding> = vec![VertexBinding::Variable { classes: vec![] }];
    for c in &rq.cands {
        let list = c
            .iter()
            .map(|&v| VertexCandidate {
                id: store.expect_iri(&format!("v{v}")),
                confidence: 1.0 / (1.0 + *c.first().unwrap() as f64),
                is_class: false,
            })
            .collect();
        vertices.push(VertexBinding::Candidates(list));
    }
    let mut edges = Vec::new();
    for (i, ep) in rq.edge_preds.iter().enumerate() {
        sqg.edges.push(SqgEdge {
            from: i,
            to: i + 1,
            phrase: ep.map(|p| (p as usize, format!("p{p}"))),
        });
        edges.push(match ep {
            Some(p) => EdgeCandidates {
                list: vec![(PathPattern::single(store.expect_iri(&format!("p{p}"))), 0.9)],
                wildcard: None,
            },
            None => EdgeCandidates { list: vec![], wildcard: Some(0.3) },
        });
    }
    MappedQuery { sqg, vertices, edges }
}

/// Brute force: try every assignment of every vertex to every store term.
fn brute_force(store: &Store, schema: &Schema, q: &MappedQuery) -> Vec<Vec<TermId>> {
    let universe: Vec<TermId> = store.dict().iter().map(|(id, _)| id).collect();
    let n = q.sqg.vertices.len();
    let mut out = Vec::new();
    let mut assignment = vec![TermId(0); n];
    fn rec(
        store: &Store,
        schema: &Schema,
        q: &MappedQuery,
        universe: &[TermId],
        depth: usize,
        assignment: &mut Vec<TermId>,
        out: &mut Vec<Vec<TermId>>,
    ) {
        if depth == assignment.len() {
            // Full Definition-3 check via the validator (score ignored).
            let m = gqa_core::matcher::Match {
                bindings: assignment.clone(),
                vertex_conf: vec![1.0; assignment.len()],
                edge_used: vec![],
                score: 0.0,
            };
            let violations = validate(store, schema, q, &m);
            let ok =
                violations.iter().all(|v| matches!(v, gqa_core::validate::Violation::Score { .. }));
            if ok {
                out.push(assignment.clone());
            }
            return;
        }
        for &id in universe {
            assignment[depth] = id;
            rec(store, schema, q, universe, depth + 1, assignment, out);
        }
    }
    rec(store, schema, q, &universe, 0, &mut assignment, &mut out);
    out.sort();
    out.dedup();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Matcher results = brute-force results (as binding sets), and every
    /// matcher result passes the validator fully.
    #[test]
    fn matcher_equals_brute_force(
        store_edges in prop::collection::vec((0u8..8, 0u8..3, 0u8..8), 0..16),
        rq in arb_query(),
    ) {
        let store = build_store(&store_edges);
        let schema = Schema::new(&store);
        let q = to_mapped(&store, &rq);
        let cfg = MatcherConfig::default();
        let found = find_matches(&store, &schema, &q, &cfg, None);
        for m in &found {
            prop_assert!(validate(&store, &schema, &q, m).is_empty(), "{m:?}");
        }
        let mut found_bindings: Vec<Vec<TermId>> = found.iter().map(|m| m.bindings.clone()).collect();
        found_bindings.sort();
        found_bindings.dedup();
        let expected = brute_force(&store, &schema, &q);
        prop_assert_eq!(found_bindings, expected);
    }

    /// Pruning never changes the match set, only the work.
    #[test]
    fn pruning_is_answer_preserving(
        store_edges in prop::collection::vec((0u8..8, 0u8..3, 0u8..8), 0..16),
        rq in arb_query(),
    ) {
        let store = build_store(&store_edges);
        let schema = Schema::new(&store);
        let q = to_mapped(&store, &rq);
        let with = find_matches(&store, &schema, &q, &MatcherConfig::default(), None);
        let without = find_matches(
            &store,
            &schema,
            &q,
            &MatcherConfig { neighborhood_pruning: false, ..Default::default() },
            None,
        );
        let set = |ms: &[gqa_core::matcher::Match]| {
            let mut v: Vec<Vec<TermId>> = ms.iter().map(|m| m.bindings.clone()).collect();
            v.sort();
            v
        };
        prop_assert_eq!(set(&with), set(&without));
    }

    /// TA top-k scores form a prefix of the exhaustive score ranking.
    #[test]
    fn topk_scores_prefix_exhaustive(
        store_edges in prop::collection::vec((0u8..8, 0u8..3, 0u8..8), 0..16),
        rq in arb_query(),
        k in 1usize..5,
    ) {
        let store = build_store(&store_edges);
        let schema = Schema::new(&store);
        let q = to_mapped(&store, &rq);
        let (ta, _) = top_k(&store, &schema, &q, &MatcherConfig::default(), k);
        let mut all = find_matches(&store, &schema, &q, &MatcherConfig::default(), None);
        all.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
        for (t, a) in ta.iter().zip(all.iter()) {
            prop_assert!((t.score - a.score).abs() < 1e-9);
        }
        // Tie semantics: ta may exceed k only on equal scores at the cut.
        if ta.len() > k {
            let kth = ta[k - 1].score;
            prop_assert!(ta[k..].iter().all(|m| (m.score - kth).abs() < 1e-9));
        }
    }

    /// The max_matches cap truncates without panicking; everything kept is
    /// still valid.
    #[test]
    fn max_matches_cap(
        store_edges in prop::collection::vec((0u8..8, 0u8..3, 0u8..8), 4..16),
        rq in arb_query(),
    ) {
        let store = build_store(&store_edges);
        let schema = Schema::new(&store);
        let q = to_mapped(&store, &rq);
        let cfg = MatcherConfig { max_matches: 2, ..Default::default() };
        let found = find_matches(&store, &schema, &q, &cfg, None);
        prop_assert!(found.len() <= 2);
        for m in &found {
            prop_assert!(validate(&store, &schema, &q, m).is_empty());
        }
    }

    /// Triple sanity for the fixture builder itself.
    #[test]
    fn store_contains_what_it_was_given(store_edges in prop::collection::vec((0u8..8, 0u8..3, 0u8..8), 1..10)) {
        let store = build_store(&store_edges);
        for &(s, p, o) in &store_edges {
            let t = Triple::new(
                store.expect_iri(&format!("v{s}")),
                store.expect_iri(&format!("p{p}")),
                store.expect_iri(&format!("v{o}")),
            );
            prop_assert!(store.contains(t));
        }
    }
}
