//! Recursive-descent parser for the SPARQL subset.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query   := (select | count | ask) where modifiers
//! select  := "SELECT" "DISTINCT"? var+
//! count   := "SELECT" "COUNT" "(" var ")"
//! ask     := "ASK"
//! where   := "WHERE" "{" (triple ".")* (filter ".")* "}"
//! triple  := term term term
//! term    := var | "<" iri ">" | literal
//! filter  := "FILTER" "(" var op (number | term) ")"
//! modifiers := ("ORDER" "BY" ("DESC(" var ")" | "ASC(" var ")" | var))?
//!              ("LIMIT" int)? ("OFFSET" int)?
//! ```

use crate::ast::{CmpOp, Filter, Order, Query, QueryForm, TermAst, TriplePatternAst};
use gqa_rdf::Term;

/// Parse a query; errors carry a human-readable message.
pub fn parse_query(input: &str) -> Result<Query, String> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    if p.pos != p.tokens.len() {
        return Err(format!("trailing tokens starting at {:?}", p.tokens[p.pos]));
    }
    Ok(q)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String), // keywords / bare words
    Var(String),  // ?x
    Iri(String),  // <...>
    Lit(Term),    // "..." with optional ^^<dt>
    Punct(char),  // { } ( ) .
    Num(f64),
}

fn lex(input: &str) -> Result<Vec<Tok>, String> {
    let mut out = Vec::new();
    let b: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '?' | '$' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                if j == start {
                    return Err("empty variable name".into());
                }
                out.push(Tok::Var(b[start..j].iter().collect()));
                i = j;
            }
            '<' => {
                // Could be IRI or comparison: IRI iff a '>' comes before
                // whitespace.
                let mut j = i + 1;
                let mut iri = String::new();
                let mut closed = false;
                while j < b.len() {
                    if b[j] == '>' {
                        closed = true;
                        break;
                    }
                    if b[j].is_whitespace() {
                        break;
                    }
                    iri.push(b[j]);
                    j += 1;
                }
                if closed && !iri.is_empty() {
                    out.push(Tok::Iri(iri));
                    i = j + 1;
                } else if i + 1 < b.len() && b[i + 1] == '=' {
                    out.push(Tok::Word("<=".into()));
                    i += 2;
                } else {
                    out.push(Tok::Word("<".into()));
                    i += 1;
                }
            }
            '"' => {
                let mut j = i + 1;
                let mut s = String::new();
                let mut ok = false;
                while j < b.len() {
                    match b[j] {
                        '"' => {
                            ok = true;
                            break;
                        }
                        '\\' if j + 1 < b.len() => {
                            s.push(match b[j + 1] {
                                'n' => '\n',
                                't' => '\t',
                                other => other,
                            });
                            j += 2;
                        }
                        other => {
                            s.push(other);
                            j += 1;
                        }
                    }
                }
                if !ok {
                    return Err("unterminated string literal".into());
                }
                i = j + 1;
                // Optional ^^<dt>.
                if i + 1 < b.len() && b[i] == '^' && b[i + 1] == '^' {
                    i += 2;
                    if i < b.len() && b[i] == '<' {
                        let mut k = i + 1;
                        let mut dt = String::new();
                        while k < b.len() && b[k] != '>' {
                            dt.push(b[k]);
                            k += 1;
                        }
                        if k == b.len() {
                            return Err("unterminated datatype IRI".into());
                        }
                        i = k + 1;
                        out.push(Tok::Lit(Term::typed_lit(s, dt)));
                        continue;
                    }
                    return Err("expected <datatype> after ^^".into());
                }
                out.push(Tok::Lit(Term::lit(s)));
            }
            '{' | '}' | '(' | ')' | '.' => {
                out.push(Tok::Punct(c));
                i += 1;
            }
            '>' => {
                if i + 1 < b.len() && b[i + 1] == '=' {
                    out.push(Tok::Word(">=".into()));
                    i += 2;
                } else {
                    out.push(Tok::Word(">".into()));
                    i += 1;
                }
            }
            '=' => {
                out.push(Tok::Word("=".into()));
                i += 1;
            }
            '!' => {
                if i + 1 < b.len() && b[i + 1] == '=' {
                    out.push(Tok::Word("!=".into()));
                    i += 2;
                } else {
                    return Err("unexpected '!'".into());
                }
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut j = i;
                let mut s = String::new();
                if c == '-' {
                    s.push('-');
                    j += 1;
                }
                while j < b.len() && (b[j].is_ascii_digit() || b[j] == '.') {
                    // A '.' followed by non-digit is a statement terminator.
                    if b[j] == '.' && !(j + 1 < b.len() && b[j + 1].is_ascii_digit()) {
                        break;
                    }
                    s.push(b[j]);
                    j += 1;
                }
                let v: f64 = s.parse().map_err(|e| format!("bad number {s:?}: {e}"))?;
                out.push(Tok::Num(v));
                i = j;
            }
            c if c.is_alphabetic() => {
                let mut j = i;
                let mut s = String::new();
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    s.push(b[j]);
                    j += 1;
                }
                out.push(Tok::Word(s));
                i = j;
            }
            other => return Err(format!("unexpected character {other:?}")),
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Word(w)) = self.peek() {
            if w.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_punct(&mut self, c: char) -> Result<(), String> {
        match self.next() {
            Some(Tok::Punct(p)) if p == c => Ok(()),
            other => Err(format!("expected {c:?}, got {other:?}")),
        }
    }

    fn expect_var(&mut self) -> Result<String, String> {
        match self.next() {
            Some(Tok::Var(v)) => Ok(v),
            other => Err(format!("expected variable, got {other:?}")),
        }
    }

    fn query(&mut self) -> Result<Query, String> {
        let form = if self.keyword("ASK") {
            QueryForm::Ask
        } else if self.keyword("SELECT") {
            if self.keyword("COUNT") {
                self.expect_punct('(')?;
                let v = self.expect_var()?;
                self.expect_punct(')')?;
                QueryForm::Count(v)
            } else {
                let distinct = self.keyword("DISTINCT");
                let mut vars = Vec::new();
                while let Some(Tok::Var(_)) = self.peek() {
                    vars.push(self.expect_var()?);
                }
                if vars.is_empty() {
                    return Err("SELECT needs at least one variable".into());
                }
                QueryForm::Select { vars, distinct }
            }
        } else {
            return Err(format!("expected SELECT or ASK, got {:?}", self.peek()));
        };

        if !self.keyword("WHERE") {
            return Err("expected WHERE".into());
        }
        self.expect_punct('{')?;
        let mut patterns = Vec::new();
        let mut union_groups: Vec<Vec<TriplePatternAst>> = Vec::new();
        let mut filters = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::Punct('}')) => {
                    self.pos += 1;
                    break;
                }
                Some(Tok::Punct('{')) => {
                    // `{ g1 } UNION { g2 } [UNION { g3 } …]`
                    union_groups.push(self.group()?);
                    while self.keyword("UNION") {
                        union_groups.push(self.group()?);
                    }
                    if matches!(self.peek(), Some(Tok::Punct('.'))) {
                        self.pos += 1;
                    }
                }
                Some(Tok::Word(w)) if w.eq_ignore_ascii_case("FILTER") => {
                    self.pos += 1;
                    filters.push(self.filter()?);
                    // Optional '.' after the filter.
                    if matches!(self.peek(), Some(Tok::Punct('.'))) {
                        self.pos += 1;
                    }
                }
                Some(_) => {
                    let s = self.term()?;
                    let p = self.term()?;
                    let o = self.term()?;
                    patterns.push(TriplePatternAst { s, p, o });
                    if matches!(self.peek(), Some(Tok::Punct('.'))) {
                        self.pos += 1;
                    }
                }
                None => return Err("unterminated WHERE block".into()),
            }
        }

        let mut order_by = None;
        if self.keyword("ORDER") {
            if !self.keyword("BY") {
                return Err("expected BY after ORDER".into());
            }
            if self.keyword("DESC") {
                self.expect_punct('(')?;
                let v = self.expect_var()?;
                self.expect_punct(')')?;
                order_by = Some((v, Order::Desc));
            } else if self.keyword("ASC") {
                self.expect_punct('(')?;
                let v = self.expect_var()?;
                self.expect_punct(')')?;
                order_by = Some((v, Order::Asc));
            } else {
                order_by = Some((self.expect_var()?, Order::Asc));
            }
        }
        let mut limit = None;
        if self.keyword("LIMIT") {
            match self.next() {
                Some(Tok::Num(v)) if v >= 0.0 => limit = Some(v as usize),
                other => return Err(format!("expected LIMIT count, got {other:?}")),
            }
        }
        let mut offset = 0;
        if self.keyword("OFFSET") {
            match self.next() {
                Some(Tok::Num(v)) if v >= 0.0 => offset = v as usize,
                other => return Err(format!("expected OFFSET count, got {other:?}")),
            }
        }

        Ok(Query { form, patterns, union_groups, filters, order_by, limit, offset })
    }

    /// A braced triple-pattern group (one UNION branch).
    fn group(&mut self) -> Result<Vec<TriplePatternAst>, String> {
        self.expect_punct('{')?;
        let mut out = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::Punct('}')) => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(_) => {
                    let s = self.term()?;
                    let p = self.term()?;
                    let o = self.term()?;
                    out.push(TriplePatternAst { s, p, o });
                    if matches!(self.peek(), Some(Tok::Punct('.'))) {
                        self.pos += 1;
                    }
                }
                None => return Err("unterminated group".into()),
            }
        }
    }

    fn term(&mut self) -> Result<TermAst, String> {
        match self.next() {
            Some(Tok::Var(v)) => Ok(TermAst::Var(v)),
            Some(Tok::Iri(i)) => Ok(TermAst::Iri(i)),
            Some(Tok::Lit(l)) => Ok(TermAst::Literal(l)),
            Some(Tok::Num(v)) => Ok(TermAst::Literal(Term::typed_lit(fmt_num(v), "xsd:decimal"))),
            other => Err(format!("expected term, got {other:?}")),
        }
    }

    fn filter(&mut self) -> Result<Filter, String> {
        self.expect_punct('(')?;
        let var = self.expect_var()?;
        let op = match self.next() {
            Some(Tok::Word(w)) => match w.as_str() {
                "<" => CmpOp::Lt,
                "<=" => CmpOp::Le,
                ">" => CmpOp::Gt,
                ">=" => CmpOp::Ge,
                "=" => CmpOp::Eq,
                "!=" => CmpOp::Ne,
                other => return Err(format!("unknown operator {other:?}")),
            },
            other => return Err(format!("expected operator, got {other:?}")),
        };
        let value = self.term()?;
        self.expect_punct(')')?;
        Ok(Filter { var, op, value })
    }
}

fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_select() {
        let q = parse_query(
            "SELECT DISTINCT ?who WHERE { ?who <dbo:spouse> ?a . ?a <rdf:type> <dbo:Actor> . }",
        )
        .unwrap();
        match &q.form {
            QueryForm::Select { vars, distinct } => {
                assert_eq!(vars, &["who"]);
                assert!(distinct);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(q.patterns.len(), 2);
        assert_eq!(q.patterns[0].p, TermAst::Iri("dbo:spouse".into()));
    }

    #[test]
    fn parses_ask() {
        let q = parse_query("ASK WHERE { <a> <b> <c> }").unwrap();
        assert_eq!(q.form, QueryForm::Ask);
        assert_eq!(q.patterns.len(), 1);
    }

    #[test]
    fn parses_count() {
        let q = parse_query("SELECT COUNT(?x) WHERE { ?x <rdf:type> <dbo:City> }").unwrap();
        assert_eq!(q.form, QueryForm::Count("x".into()));
    }

    #[test]
    fn parses_order_limit_offset() {
        let q = parse_query(
            "SELECT ?x WHERE { ?x <dbo:height> ?h } ORDER BY DESC(?h) LIMIT 1 OFFSET 0",
        )
        .unwrap();
        assert_eq!(q.order_by, Some(("h".into(), Order::Desc)));
        assert_eq!(q.limit, Some(1));
        assert_eq!(q.offset, 0);
    }

    #[test]
    fn parses_filters_and_literals() {
        let q = parse_query(
            "SELECT ?x WHERE { ?x <dbo:population> ?p . FILTER(?p > 1000000) . ?x <rdfs:label> \"Berlin\" }",
        )
        .unwrap();
        assert_eq!(q.filters.len(), 1);
        assert_eq!(q.filters[0].op, CmpOp::Gt);
        assert!(
            matches!(&q.patterns[1].o, TermAst::Literal(t) if t.as_literal() == Some("Berlin"))
        );
    }

    #[test]
    fn parses_typed_literal() {
        let q = parse_query("ASK WHERE { <a> <b> \"3\"^^<xsd:integer> }").unwrap();
        assert!(matches!(&q.patterns[0].o, TermAst::Literal(t) if t.numeric_value() == Some(3.0)));
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse_query("SELECT WHERE { }").is_err());
        assert!(parse_query("SELECT ?x { ?x <a> <b> }").is_err()); // missing WHERE
        assert!(parse_query("SELECT ?x WHERE { ?x <a> }").is_err());
        assert!(parse_query("FROB ?x WHERE { }").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x <a> <b> } LIMIT x").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x <a> \"open }").is_err());
    }

    #[test]
    fn display_parse_roundtrip() {
        let src =
            "SELECT DISTINCT ?x WHERE { ?x <dbo:spouse> <dbr:A> . } ORDER BY DESC(?x) LIMIT 3";
        let q = parse_query(src).unwrap();
        let q2 = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }
}
