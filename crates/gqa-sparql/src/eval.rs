//! Backtracking BGP evaluation.
//!
//! Join strategy: at every step pick the not-yet-evaluated pattern with the
//! most bound positions (greedy most-selective-first), scan it through the
//! store's best index, extend the binding, recurse. Answering SPARQL is
//! subgraph matching and NP-hard in general (the paper cites gStore \[33\]);
//! greedy ordering plus index scans is entirely adequate at this scale.

use crate::ast::{CmpOp, Order, Query, QueryForm, TermAst, TriplePatternAst};
use gqa_rdf::triple::TriplePattern;
use gqa_rdf::{Store, Term, TermId};
use rustc_hash::FxHashMap;

/// Result of evaluating a query.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultSet {
    /// Projected variable names (empty for ASK).
    pub vars: Vec<String>,
    /// Rows of bindings, aligned with `vars`.
    pub rows: Vec<Vec<TermId>>,
    /// ASK result, if the query was an ASK.
    pub boolean: Option<bool>,
    /// COUNT result, if the query was a COUNT.
    pub count: Option<usize>,
}

impl ResultSet {
    /// Render rows as term strings (for display and tests).
    pub fn render(&self, store: &Store) -> Vec<Vec<String>> {
        self.rows
            .iter()
            .map(|row| row.iter().map(|&id| store.term(id).to_string()).collect())
            .collect()
    }
}

/// Pre-resolved pattern node.
#[derive(Clone, Copy, Debug)]
enum Node {
    Var(usize),
    Const(TermId),
}

/// Evaluate a query over a store.
pub fn evaluate(store: &Store, query: &Query) -> ResultSet {
    // Intern variables.
    let mut var_names: Vec<String> = Vec::new();
    let mut var_ids: FxHashMap<String, usize> = FxHashMap::default();
    let var_of = |name: &str,
                  var_names: &mut Vec<String>,
                  var_ids: &mut FxHashMap<String, usize>|
     -> usize {
        if let Some(&i) = var_ids.get(name) {
            return i;
        }
        let i = var_names.len();
        var_names.push(name.to_owned());
        var_ids.insert(name.to_owned(), i);
        i
    };

    // Resolve constants; an unresolvable constant empties whatever pattern
    // group it belongs to (tracked per group through this flag).
    let resolvable = std::cell::Cell::new(true);
    let mut resolve = |t: &TermAst,
                       var_names: &mut Vec<String>,
                       var_ids: &mut FxHashMap<String, usize>|
     -> Node {
        match t {
            TermAst::Var(v) => Node::Var(var_of(v, var_names, var_ids)),
            TermAst::Iri(i) => match store.iri(i) {
                Some(id) => Node::Const(id),
                None => {
                    resolvable.set(false);
                    Node::Const(TermId(u32::MAX))
                }
            },
            TermAst::Literal(l) => match store.lookup_term(l) {
                Some(id) => Node::Const(id),
                None => {
                    resolvable.set(false);
                    Node::Const(TermId(u32::MAX))
                }
            },
        }
    };
    #[allow(clippy::type_complexity)] // local one-off resolver plumbing
    let resolve_all = |pats: &[TriplePatternAst],
                       var_names: &mut Vec<String>,
                       var_ids: &mut FxHashMap<String, usize>,
                       resolve: &mut dyn FnMut(
        &TermAst,
        &mut Vec<String>,
        &mut FxHashMap<String, usize>,
    ) -> Node|
     -> Vec<[Node; 3]> {
        pats.iter()
            .map(|TriplePatternAst { s, p, o }| {
                [
                    resolve(s, var_names, var_ids),
                    resolve(p, var_names, var_ids),
                    resolve(o, var_names, var_ids),
                ]
            })
            .collect()
    };
    let patterns: Vec<[Node; 3]> =
        resolve_all(&query.patterns, &mut var_names, &mut var_ids, &mut resolve);
    // UNION branches: base patterns + one group each. Resolve every branch
    // up front so variables are interned consistently (a branch with an
    // unresolvable constant contributes nothing, like an empty BGP).
    let branch_patterns: Vec<(Vec<[Node; 3]>, bool)> = query
        .union_groups
        .iter()
        .map(|g| {
            resolvable.set(true);
            let pats = resolve_all(g, &mut var_names, &mut var_ids, &mut resolve);
            (pats, resolvable.get())
        })
        .collect();
    // Register filter/order/projection variables too.
    for f in &query.filters {
        var_of(&f.var, &mut var_names, &mut var_ids);
    }
    if let Some((v, _)) = &query.order_by {
        var_of(v, &mut var_names, &mut var_ids);
    }
    let projected: Vec<usize> = match &query.form {
        QueryForm::Select { vars, .. } => {
            vars.iter().map(|v| var_of(v, &mut var_names, &mut var_ids)).collect()
        }
        QueryForm::Count(v) => vec![var_of(v, &mut var_names, &mut var_ids)],
        QueryForm::Ask => Vec::new(),
    };

    let nvars = var_names.len();
    // Base-pattern resolvability: check the base set independently of the
    // union branches (resolve() already flagged failures as they occurred;
    // a failure inside a branch only disables that branch).
    let base_ok = query.patterns.iter().all(|pat| {
        [&pat.s, &pat.p, &pat.o].into_iter().all(|t| match t {
            TermAst::Var(_) => true,
            TermAst::Iri(i) => store.iri(i).is_some(),
            TermAst::Literal(l) => store.lookup_term(l).is_some(),
        })
    });
    let mut solutions: Vec<Vec<Option<TermId>>> = Vec::new();
    let ask_only = matches!(query.form, QueryForm::Ask) && query.union_groups.is_empty();
    if base_ok {
        if branch_patterns.is_empty() {
            let mut binding = vec![None; nvars];
            let mut used = vec![false; patterns.len()];
            join(store, &patterns, &mut used, &mut binding, &mut solutions, ask_only);
        } else {
            for (branch, ok) in &branch_patterns {
                if !ok {
                    continue;
                }
                let mut combined = patterns.clone();
                combined.extend(branch.iter().cloned());
                let mut binding = vec![None; nvars];
                let mut used = vec![false; combined.len()];
                join(store, &combined, &mut used, &mut binding, &mut solutions, false);
            }
            solutions.sort();
            solutions.dedup();
        }
    }

    // Filters.
    let filters: Vec<(usize, CmpOp, FilterVal)> = query
        .filters
        .iter()
        .map(|f| {
            let var = var_ids[&f.var];
            let val = match &f.value {
                TermAst::Literal(t) => match t.numeric_value() {
                    Some(n) => FilterVal::Num(n),
                    None => FilterVal::Term(store.lookup_term(t)),
                },
                TermAst::Iri(i) => FilterVal::Term(store.iri(i)),
                TermAst::Var(v) => FilterVal::Var(var_ids[v]),
            };
            (var, f.op, val)
        })
        .collect();
    solutions.retain(|row| filters.iter().all(|f| filter_ok(store, row, f)));

    // ORDER BY.
    if let Some((v, order)) = &query.order_by {
        let vi = var_ids[v];
        solutions.sort_by(|a, b| {
            let ka = sort_key(store, a[vi]);
            let kb = sort_key(store, b[vi]);
            let cmp = ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal);
            match order {
                Order::Asc => cmp,
                Order::Desc => cmp.reverse(),
            }
        });
    }

    // Project, dedup, slice.
    match &query.form {
        QueryForm::Ask => ResultSet {
            vars: Vec::new(),
            rows: Vec::new(),
            boolean: Some(!solutions.is_empty()),
            count: None,
        },
        QueryForm::Count(vname) => {
            let vi = var_ids[vname];
            let mut vals: Vec<TermId> = solutions.iter().filter_map(|r| r[vi]).collect();
            vals.sort_unstable();
            vals.dedup();
            ResultSet {
                vars: vec![vname.clone()],
                rows: Vec::new(),
                boolean: None,
                count: Some(vals.len()),
            }
        }
        QueryForm::Select { vars, distinct } => {
            let mut rows: Vec<Vec<TermId>> = solutions
                .iter()
                .filter_map(|r| projected.iter().map(|&vi| r[vi]).collect::<Option<Vec<_>>>())
                .collect();
            if *distinct {
                // Stable dedup to respect ORDER BY.
                let mut seen = rustc_hash::FxHashSet::default();
                rows.retain(|r| seen.insert(r.clone()));
            }
            let start = query.offset.min(rows.len());
            let end = query.limit.map_or(rows.len(), |l| (start + l).min(rows.len()));
            let rows = rows[start..end].to_vec();
            ResultSet { vars: vars.clone(), rows, boolean: None, count: None }
        }
    }
}

enum FilterVal {
    Num(f64),
    Term(Option<TermId>),
    Var(usize),
}

fn filter_ok(
    store: &Store,
    row: &[Option<TermId>],
    (var, op, val): &(usize, CmpOp, FilterVal),
) -> bool {
    let Some(lhs) = row[*var] else { return false };
    match val {
        FilterVal::Num(n) => {
            let Some(l) = store.term(lhs).numeric_value() else { return false };
            cmp_f64(l, *n, *op)
        }
        FilterVal::Term(Some(rhs)) => match op {
            CmpOp::Eq => lhs == *rhs,
            CmpOp::Ne => lhs != *rhs,
            _ => {
                let (Some(l), Some(r)) =
                    (store.term(lhs).numeric_value(), store.term(*rhs).numeric_value())
                else {
                    return false;
                };
                cmp_f64(l, r, *op)
            }
        },
        FilterVal::Term(None) => matches!(op, CmpOp::Ne),
        FilterVal::Var(v) => {
            let Some(rhs) = row[*v] else { return false };
            match op {
                CmpOp::Eq => lhs == rhs,
                CmpOp::Ne => lhs != rhs,
                _ => {
                    let (Some(l), Some(r)) =
                        (store.term(lhs).numeric_value(), store.term(rhs).numeric_value())
                    else {
                        return false;
                    };
                    cmp_f64(l, r, *op)
                }
            }
        }
    }
}

fn cmp_f64(l: f64, r: f64, op: CmpOp) -> bool {
    match op {
        CmpOp::Lt => l < r,
        CmpOp::Le => l <= r,
        CmpOp::Gt => l > r,
        CmpOp::Ge => l >= r,
        CmpOp::Eq => l == r,
        CmpOp::Ne => l != r,
    }
}

/// Sort key: numeric value when the term parses as a number (numbers sort
/// before non-numbers), else the term's text.
fn sort_key(store: &Store, id: Option<TermId>) -> (u8, f64, String) {
    match id {
        None => (2, 0.0, String::new()),
        Some(id) => {
            let t = store.term(id);
            match t.numeric_value() {
                Some(n) => (0, n, String::new()),
                None => (1, 0.0, t.to_string()),
            }
        }
    }
}

fn join(
    store: &Store,
    patterns: &[[Node; 3]],
    used: &mut [bool],
    binding: &mut Vec<Option<TermId>>,
    out: &mut Vec<Vec<Option<TermId>>>,
    ask_only: bool,
) {
    if ask_only && !out.is_empty() {
        return;
    }
    // Pick the unused pattern with the most bound positions.
    let next = (0..patterns.len())
        .filter(|&i| !used[i])
        .max_by_key(|&i| patterns[i].iter().filter(|n| is_bound(n, binding)).count());
    let Some(pi) = next else {
        out.push(binding.clone());
        return;
    };
    used[pi] = true;
    let [s, p, o] = patterns[pi];
    let pat = TriplePattern {
        s: bound_id(&s, binding),
        p: bound_id(&p, binding),
        o: bound_id(&o, binding),
    };
    let triples: Vec<_> = store.matching(pat).collect();
    for t in triples {
        let mut touched: Vec<usize> = Vec::with_capacity(3);
        if try_bind(&s, t.s, binding, &mut touched)
            && try_bind(&p, t.p, binding, &mut touched)
            && try_bind(&o, t.o, binding, &mut touched)
        {
            join(store, patterns, used, binding, out, ask_only);
        }
        for v in touched {
            binding[v] = None;
        }
        if ask_only && !out.is_empty() {
            break;
        }
    }
    used[pi] = false;
}

fn is_bound(n: &Node, binding: &[Option<TermId>]) -> bool {
    match n {
        Node::Const(_) => true,
        Node::Var(v) => binding[*v].is_some(),
    }
}

fn bound_id(n: &Node, binding: &[Option<TermId>]) -> Option<TermId> {
    match n {
        Node::Const(c) => Some(*c),
        Node::Var(v) => binding[*v],
    }
}

fn try_bind(
    n: &Node,
    val: TermId,
    binding: &mut [Option<TermId>],
    touched: &mut Vec<usize>,
) -> bool {
    match n {
        Node::Const(c) => *c == val,
        Node::Var(v) => match binding[*v] {
            Some(b) => b == val,
            None => {
                binding[*v] = Some(val);
                touched.push(*v);
                true
            }
        },
    }
}

/// Convenience: parse and evaluate in one call.
///
/// ```
/// use gqa_rdf::StoreBuilder;
///
/// let mut b = StoreBuilder::new();
/// b.add_iri("dbr:Melanie", "dbo:spouse", "dbr:Antonio");
/// let store = b.build();
///
/// let rs = gqa_sparql::run(&store, "SELECT ?w WHERE { ?w <dbo:spouse> <dbr:Antonio> }").unwrap();
/// assert_eq!(rs.rows.len(), 1);
/// ```
pub fn run(store: &Store, sparql: &str) -> Result<ResultSet, String> {
    let q = crate::parser::parse_query(sparql)?;
    Ok(evaluate(store, &q))
}

/// Convenience: evaluate and render the single projected column as terms.
pub fn run_column(store: &Store, sparql: &str) -> Result<Vec<Term>, String> {
    let rs = run(store, sparql)?;
    Ok(rs.rows.iter().filter_map(|r| r.first().map(|&id| store.term(id).clone())).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqa_rdf::StoreBuilder;

    fn movie_store() -> Store {
        let mut b = StoreBuilder::new();
        b.add_iri("dbr:Melanie_Griffith", "dbo:spouse", "dbr:Antonio_Banderas");
        b.add_iri("dbr:Antonio_Banderas", "rdf:type", "dbo:Actor");
        b.add_iri("dbr:Philadelphia_(film)", "dbo:starring", "dbr:Antonio_Banderas");
        b.add_iri("dbr:Tom_Hanks", "rdf:type", "dbo:Actor");
        b.add_iri("dbr:Philadelphia_(film)", "dbo:starring", "dbr:Tom_Hanks");
        b.add_obj("dbr:Antonio_Banderas", "dbo:height", Term::dec_lit(1.74));
        b.add_obj("dbr:Tom_Hanks", "dbo:height", Term::dec_lit(1.83));
        b.build()
    }

    #[test]
    fn running_example_query() {
        // The paper's Figure 1(b) SPARQL.
        let s = movie_store();
        let res = run(
            &s,
            "SELECT ?who WHERE { ?who <dbo:spouse> ?p . ?p <rdf:type> <dbo:Actor> . \
             <dbr:Philadelphia_(film)> <dbo:starring> ?p . }",
        )
        .unwrap();
        assert_eq!(res.rows.len(), 1);
        assert_eq!(res.rows[0][0], s.expect_iri("dbr:Melanie_Griffith"));
    }

    #[test]
    fn ask_true_and_false() {
        let s = movie_store();
        assert_eq!(
            run(&s, "ASK WHERE { <dbr:Melanie_Griffith> <dbo:spouse> <dbr:Antonio_Banderas> }")
                .unwrap()
                .boolean,
            Some(true)
        );
        assert_eq!(
            run(&s, "ASK WHERE { <dbr:Tom_Hanks> <dbo:spouse> <dbr:Antonio_Banderas> }")
                .unwrap()
                .boolean,
            Some(false)
        );
    }

    #[test]
    fn count_distinct_values() {
        let s = movie_store();
        let res = run(&s, "SELECT COUNT(?a) WHERE { ?a <rdf:type> <dbo:Actor> }").unwrap();
        assert_eq!(res.count, Some(2));
    }

    #[test]
    fn order_by_desc_limit_is_superlative() {
        let s = movie_store();
        let res =
            run(&s, "SELECT ?a WHERE { ?a <dbo:height> ?h } ORDER BY DESC(?h) LIMIT 1").unwrap();
        assert_eq!(res.rows.len(), 1);
        assert_eq!(res.rows[0][0], s.expect_iri("dbr:Tom_Hanks"));
    }

    #[test]
    fn filter_numeric() {
        let s = movie_store();
        let res = run(&s, "SELECT ?a WHERE { ?a <dbo:height> ?h . FILTER(?h > 1.80) }").unwrap();
        assert_eq!(res.rows.len(), 1);
        assert_eq!(res.rows[0][0], s.expect_iri("dbr:Tom_Hanks"));
    }

    #[test]
    fn unknown_iri_gives_empty_not_error() {
        let s = movie_store();
        let res = run(&s, "SELECT ?x WHERE { ?x <dbo:nothing> <dbr:Nobody> }").unwrap();
        assert!(res.rows.is_empty());
    }

    #[test]
    fn distinct_dedups() {
        let s = movie_store();
        // ?f starring ?a joined over two actors projects the same film twice
        // without DISTINCT.
        let res = run(&s, "SELECT DISTINCT ?f WHERE { ?f <dbo:starring> ?a }").unwrap();
        assert_eq!(res.rows.len(), 1);
    }

    #[test]
    fn offset_slices() {
        let s = movie_store();
        let all = run(&s, "SELECT ?a WHERE { ?a <rdf:type> <dbo:Actor> } ORDER BY ?a").unwrap();
        let tail =
            run(&s, "SELECT ?a WHERE { ?a <rdf:type> <dbo:Actor> } ORDER BY ?a OFFSET 1").unwrap();
        assert_eq!(all.rows.len(), 2);
        assert_eq!(tail.rows.len(), 1);
        assert_eq!(tail.rows[0], all.rows[1]);
    }

    #[test]
    fn shared_variable_joins_constrain() {
        let s = movie_store();
        // Who is married to someone starring in Philadelphia?
        let res = run(&s, "SELECT ?w WHERE { ?w <dbo:spouse> ?a . ?f <dbo:starring> ?a }").unwrap();
        assert_eq!(res.rows.len(), 1);
    }

    #[test]
    fn union_merges_branch_solutions() {
        let s = movie_store();
        // Spouse-of-Antonio OR starring-in-Philadelphia.
        let res = run(
            &s,
            "SELECT DISTINCT ?x WHERE { { ?x <dbo:spouse> <dbr:Antonio_Banderas> } UNION \
             { <dbr:Philadelphia_(film)> <dbo:starring> ?x } }",
        )
        .unwrap();
        let mut got: Vec<_> = res.rows.iter().map(|r| r[0]).collect();
        got.sort_unstable();
        let mut want = vec![
            s.expect_iri("dbr:Melanie_Griffith"),
            s.expect_iri("dbr:Antonio_Banderas"),
            s.expect_iri("dbr:Tom_Hanks"),
        ];
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn union_respects_shared_base_patterns() {
        let s = movie_store();
        // Base: ?x is an actor; branches pick the relation.
        let res = run(
            &s,
            "SELECT DISTINCT ?x WHERE { ?x <rdf:type> <dbo:Actor> . \
             { ?w <dbo:spouse> ?x } UNION { ?f <dbo:starring> ?x } }",
        )
        .unwrap();
        assert_eq!(res.rows.len(), 2, "{:?}", res.render(&s));
    }

    #[test]
    fn union_branch_with_unknown_iri_contributes_nothing() {
        let s = movie_store();
        let res = run(
            &s,
            "SELECT ?x WHERE { { ?x <dbo:spouse> <dbr:Antonio_Banderas> } UNION \
             { ?x <dbo:nothing> <dbr:Nobody> } }",
        )
        .unwrap();
        assert_eq!(res.rows.len(), 1);
    }

    #[test]
    fn union_display_parses_back() {
        let src = "SELECT DISTINCT ?x WHERE { { ?x <a> <b> . } UNION { ?x <c> <d> . } }";
        let q = crate::parser::parse_query(src).unwrap();
        assert_eq!(q.union_groups.len(), 2);
        let q2 = crate::parser::parse_query(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn render_produces_strings() {
        let s = movie_store();
        let res = run(&s, "SELECT ?w WHERE { ?w <dbo:spouse> ?a }").unwrap();
        let rendered = res.render(&s);
        assert_eq!(rendered[0][0], "<dbr:Melanie_Griffith>");
    }

    #[test]
    fn run_column_helper() {
        let s = movie_store();
        let col = run_column(&s, "SELECT ?w WHERE { ?w <dbo:spouse> ?a }").unwrap();
        assert_eq!(col, vec![Term::iri("dbr:Melanie_Griffith")]);
    }
}
