//! The query AST.

use gqa_rdf::Term;
use std::fmt;

/// A node of a triple pattern: variable, IRI, or literal.
#[derive(Clone, PartialEq, Debug)]
pub enum TermAst {
    /// `?name`.
    Var(String),
    /// `<iri>`.
    Iri(String),
    /// A literal with optional datatype.
    Literal(Term),
}

impl TermAst {
    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            TermAst::Var(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for TermAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TermAst::Var(v) => write!(f, "?{v}"),
            TermAst::Iri(i) => write!(f, "<{i}>"),
            TermAst::Literal(t) => write!(f, "{t}"),
        }
    }
}

/// One triple pattern of the WHERE clause.
#[derive(Clone, PartialEq, Debug)]
pub struct TriplePatternAst {
    /// Subject.
    pub s: TermAst,
    /// Predicate.
    pub p: TermAst,
    /// Object.
    pub o: TermAst,
}

impl fmt::Display for TriplePatternAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.s, self.p, self.o)
    }
}

/// Comparison operator of a FILTER.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

/// `FILTER(?x OP value)` — numeric comparison against a constant, or
/// equality against any term.
#[derive(Clone, PartialEq, Debug)]
pub struct Filter {
    /// The compared variable.
    pub var: String,
    /// The operator.
    pub op: CmpOp,
    /// The right-hand constant.
    pub value: TermAst,
}

/// Result form of the query.
#[derive(Clone, PartialEq, Debug)]
pub enum QueryForm {
    /// `SELECT [DISTINCT] ?a ?b …`.
    Select {
        /// Projected variables.
        vars: Vec<String>,
        /// DISTINCT flag.
        distinct: bool,
    },
    /// `SELECT COUNT(?x)`.
    Count(String),
    /// `ASK`.
    Ask,
}

/// Sort order of ORDER BY.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Order {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

/// A parsed query.
#[derive(Clone, PartialEq, Debug)]
pub struct Query {
    /// The result form.
    pub form: QueryForm,
    /// Basic graph pattern (required part).
    pub patterns: Vec<TriplePatternAst>,
    /// `{…} UNION {…}` alternatives: a solution must satisfy `patterns`
    /// plus at least one group. Empty = no union clause.
    pub union_groups: Vec<Vec<TriplePatternAst>>,
    /// Filters.
    pub filters: Vec<Filter>,
    /// `ORDER BY [DESC](?v)`.
    pub order_by: Option<(String, Order)>,
    /// `LIMIT n`.
    pub limit: Option<usize>,
    /// `OFFSET n`.
    pub offset: usize,
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.form {
            QueryForm::Select { vars, distinct } => {
                write!(f, "SELECT ")?;
                if *distinct {
                    write!(f, "DISTINCT ")?;
                }
                for v in vars {
                    write!(f, "?{v} ")?;
                }
            }
            QueryForm::Count(v) => write!(f, "SELECT COUNT(?{v}) ")?,
            QueryForm::Ask => write!(f, "ASK ")?,
        }
        write!(f, "WHERE {{ ")?;
        for p in &self.patterns {
            write!(f, "{p} . ")?;
        }
        for (i, g) in self.union_groups.iter().enumerate() {
            if i > 0 {
                write!(f, "UNION ")?;
            }
            write!(f, "{{ ")?;
            for p in g {
                write!(f, "{p} . ")?;
            }
            write!(f, "}} ")?;
        }
        for fl in &self.filters {
            let op = match fl.op {
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
                CmpOp::Eq => "=",
                CmpOp::Ne => "!=",
            };
            write!(f, "FILTER(?{} {} {}) . ", fl.var, op, fl.value)?;
        }
        write!(f, "}}")?;
        if let Some((v, o)) = &self.order_by {
            match o {
                Order::Asc => write!(f, " ORDER BY ?{v}")?,
                Order::Desc => write!(f, " ORDER BY DESC(?{v})")?,
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        if self.offset > 0 {
            write!(f, " OFFSET {}", self.offset)?;
        }
        Ok(())
    }
}

impl Query {
    /// A plain SELECT query over a BGP.
    pub fn select(vars: Vec<String>, patterns: Vec<TriplePatternAst>) -> Self {
        Query {
            form: QueryForm::Select { vars, distinct: true },
            patterns,
            union_groups: Vec::new(),
            filters: Vec::new(),
            order_by: None,
            limit: None,
            offset: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_visually() {
        let q = Query {
            form: QueryForm::Select { vars: vec!["x".into()], distinct: true },
            patterns: vec![TriplePatternAst {
                s: TermAst::Var("x".into()),
                p: TermAst::Iri("dbo:spouse".into()),
                o: TermAst::Iri("dbr:Antonio_Banderas".into()),
            }],
            union_groups: vec![],
            filters: vec![],
            order_by: Some(("x".into(), Order::Desc)),
            limit: Some(1),
            offset: 0,
        };
        let s = q.to_string();
        assert!(s.contains("SELECT DISTINCT ?x"), "{s}");
        assert!(s.contains("<dbo:spouse>"), "{s}");
        assert!(s.contains("ORDER BY DESC(?x) LIMIT 1"), "{s}");
    }

    #[test]
    fn term_ast_accessors() {
        assert_eq!(TermAst::Var("a".into()).as_var(), Some("a"));
        assert_eq!(TermAst::Iri("x".into()).as_var(), None);
    }
}
