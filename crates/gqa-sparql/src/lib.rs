//! # gqa-sparql — a SPARQL-subset engine over `gqa-rdf`
//!
//! RDF Q/A systems ultimately stand on SPARQL evaluation: the DEANNA-style
//! baseline translates questions into SPARQL and runs them, and our own
//! pipeline emits the top-k matches *as* SPARQL queries (Algorithm 3's
//! output). This crate provides the substrate: an AST ([`ast`]), a
//! recursive-descent parser ([`parser`]), and a backtracking BGP evaluator
//! ([`eval`]) with DISTINCT / ORDER BY / LIMIT / OFFSET / FILTER / UNION /
//! ASK / COUNT — enough to run every query the pipelines generate,
//! including the aggregation extension ("ORDER BY DESC(?x) OFFSET 0 LIMIT
//! 1", §6 Exp 5) and the DEANNA baseline's orientation-UNION queries.
//!
//! Deliberately *not* implemented: OPTIONAL, property paths, federation —
//! nothing in the reproduced experiments needs them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod eval;
pub mod parser;

pub use ast::{Query, QueryForm, TermAst, TriplePatternAst};
pub use eval::{evaluate, run, run_column, ResultSet};
pub use parser::parse_query;
