//! Property tests: the indexed backtracking evaluator must agree with a
//! naive cross-product reference evaluator on random stores and queries.

use gqa_rdf::{Store, StoreBuilder, TermId};
use gqa_sparql::ast::{Order, Query, QueryForm, TermAst, TriplePatternAst};
use gqa_sparql::evaluate;
use proptest::prelude::*;
use rustc_hash::FxHashMap;

fn build(edges: &[(u8, u8, u8)]) -> Store {
    let mut b = StoreBuilder::new();
    for &(s, p, o) in edges {
        b.add_iri(&format!("v{s}"), &format!("p{p}"), &format!("v{o}"));
    }
    b.build()
}

/// Exhaustive reference: enumerate all assignments of all variables to all
/// terms, filter by pattern satisfaction.
fn reference_select(store: &Store, q: &Query) -> Vec<Vec<TermId>> {
    let QueryForm::Select { vars, distinct } = &q.form else { panic!("select only") };
    // Collect variables.
    let mut all_vars: Vec<String> = Vec::new();
    let add = |t: &TermAst, vs: &mut Vec<String>| {
        if let TermAst::Var(v) = t {
            if !vs.contains(v) {
                vs.push(v.clone());
            }
        }
    };
    for p in &q.patterns {
        add(&p.s, &mut all_vars);
        add(&p.p, &mut all_vars);
        add(&p.o, &mut all_vars);
    }
    // Only pattern variables are enumerable; projecting a variable that
    // occurs in no pattern yields no rows (matching the engine, which
    // drops solutions with unbound projections).
    let universe: Vec<TermId> = store.dict().iter().map(|(id, _)| id).collect();

    let mut rows: Vec<Vec<TermId>> = Vec::new();
    let mut assignment: FxHashMap<String, TermId> = FxHashMap::default();
    enumerate(store, q, &all_vars, 0, &universe, &mut assignment, &mut rows, vars);
    if *distinct {
        rows.sort();
        rows.dedup();
    }
    rows
}

#[allow(clippy::too_many_arguments)]
fn enumerate(
    store: &Store,
    q: &Query,
    all_vars: &[String],
    depth: usize,
    universe: &[TermId],
    assignment: &mut FxHashMap<String, TermId>,
    rows: &mut Vec<Vec<TermId>>,
    projected: &[String],
) {
    if depth == all_vars.len() {
        let ok = q.patterns.iter().all(|p| {
            let term_of = |t: &TermAst| -> Option<TermId> {
                match t {
                    TermAst::Var(v) => assignment.get(v).copied(),
                    TermAst::Iri(i) => store.iri(i),
                    TermAst::Literal(l) => store.dict().lookup(l),
                }
            };
            match (term_of(&p.s), term_of(&p.p), term_of(&p.o)) {
                (Some(s), Some(pp), Some(o)) => store.contains(gqa_rdf::Triple::new(s, pp, o)),
                _ => false,
            }
        });
        if ok {
            if let Some(row) =
                projected.iter().map(|v| assignment.get(v).copied()).collect::<Option<Vec<_>>>()
            {
                rows.push(row);
            }
        }
        return;
    }
    for &id in universe {
        assignment.insert(all_vars[depth].clone(), id);
        enumerate(store, q, all_vars, depth + 1, universe, assignment, rows, projected);
    }
    assignment.remove(&all_vars[depth]);
}

/// Random triple pattern over a tiny vocabulary of vars/IRIs.
fn arb_term() -> impl Strategy<Value = TermAst> {
    prop_oneof![
        (0u8..3).prop_map(|v| TermAst::Var(format!("x{v}"))),
        (0u8..6).prop_map(|v| TermAst::Iri(format!("v{v}"))),
        (0u8..3).prop_map(|p| TermAst::Iri(format!("p{p}"))),
    ]
}

fn arb_query() -> impl Strategy<Value = Query> {
    (prop::collection::vec((arb_term(), (0u8..3), arb_term()), 1..4)).prop_map(|pats| Query {
        form: QueryForm::Select { vars: vec!["x0".into()], distinct: true },
        patterns: pats
            .into_iter()
            .enumerate()
            .map(|(i, (s, p, o))| TriplePatternAst {
                // The projected variable is guaranteed to occur (SPARQL
                // engines differ on unbound projections; ours drops them).
                s: if i == 0 { TermAst::Var("x0".into()) } else { s },
                p: TermAst::Iri(format!("p{p}")),
                o,
            })
            .collect::<Vec<_>>(),
        union_groups: vec![],
        filters: vec![],
        order_by: Some(("x0".into(), Order::Asc)),
        limit: None,
        offset: 0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn evaluator_agrees_with_reference(
        edges in prop::collection::vec((0u8..6, 0u8..3, 0u8..6), 0..14),
        query in arb_query(),
    ) {
        let store = build(&edges);
        let fast = evaluate(&store, &query);
        let mut fast_rows = fast.rows.clone();
        fast_rows.sort();
        let mut slow = reference_select(&store, &query);
        slow.sort();
        prop_assert_eq!(fast_rows, slow, "query: {}", query);
    }

    #[test]
    fn ask_matches_select_nonemptiness(
        edges in prop::collection::vec((0u8..6, 0u8..3, 0u8..6), 0..14),
        query in arb_query(),
    ) {
        let store = build(&edges);
        let select = evaluate(&store, &query);
        let ask = evaluate(&store, &Query { form: QueryForm::Ask, ..query.clone() });
        prop_assert_eq!(ask.boolean, Some(!select.rows.is_empty()));
    }

    #[test]
    fn limit_offset_slice_the_ordered_rows(
        edges in prop::collection::vec((0u8..6, 0u8..3, 0u8..6), 0..14),
        query in arb_query(),
        limit in 0usize..4,
        offset in 0usize..3,
    ) {
        let store = build(&edges);
        let full = evaluate(&store, &query);
        let sliced = evaluate(&store, &Query { limit: Some(limit), offset, ..query.clone() });
        let expected: Vec<_> = full.rows.iter().skip(offset).take(limit).cloned().collect();
        prop_assert_eq!(sliced.rows, expected);
    }

    #[test]
    fn count_equals_distinct_row_count(
        edges in prop::collection::vec((0u8..6, 0u8..3, 0u8..6), 0..14),
        query in arb_query(),
    ) {
        let store = build(&edges);
        let select = evaluate(&store, &query);
        let count = evaluate(&store, &Query { form: QueryForm::Count("x0".into()), ..query.clone() });
        let mut distinct: Vec<_> = select.rows.iter().map(|r| r[0]).collect();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(count.count, Some(distinct.len()));
    }
}
