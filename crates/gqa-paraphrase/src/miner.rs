//! Algorithm 1: mining top-k predicate paths per relation phrase.

use crate::dict::{ParaMapping, ParaphraseDict};
use crate::support::PhraseDataset;
use crate::tfidf::{document_frequency, tf_idf, PathSetSummary};
use gqa_rdf::cache::PathCache;
use gqa_rdf::paths::PathConfig;
use gqa_rdf::Store;

/// Configuration of the offline miner.
#[derive(Clone, Debug)]
pub struct MinerConfig {
    /// Path-length threshold θ (paper default 4; Table 7 also reports θ=2).
    pub theta: usize,
    /// Keep the top-k patterns per phrase (paper: top-k with k small; the
    /// precision experiment looks at P@3).
    pub top_k: usize,
    /// Safety valve for hub vertices (max paths per support pair).
    pub max_paths_per_pair: usize,
    /// Worker threads for the path-enumeration phase (1 = serial). Phrases
    /// are independent, so results are identical at any thread count.
    pub threads: usize,
}

impl Default for MinerConfig {
    fn default() -> Self {
        MinerConfig { theta: 4, top_k: 3, max_paths_per_pair: 20_000, threads: 1 }
    }
}

impl MinerConfig {
    /// A config with the given θ.
    pub fn with_theta(theta: usize) -> Self {
        MinerConfig { theta, ..Default::default() }
    }

    /// The path-enumeration limits this miner config implies (θ, per-pair
    /// path cap, schema predicates skipped). A [`PathCache`] handed to
    /// [`mine_with_cache`] must be built over exactly this config.
    pub fn path_config(&self, store: &Store) -> PathConfig {
        PathConfig { max_len: self.theta, max_paths: self.max_paths_per_pair, ..Default::default() }
            .skip_schema_predicates(store)
    }
}

/// Run Algorithm 1 over a store and phrase dataset, producing the
/// paraphrase dictionary `D`.
///
/// ```
/// use gqa_paraphrase::{mine, MinerConfig, PhraseDataset, PhraseEntry};
/// use gqa_rdf::StoreBuilder;
///
/// let mut b = StoreBuilder::new();
/// b.add_iri("dbr:Melanie", "dbo:spouse", "dbr:Antonio");
/// b.add_iri("dbr:Film", "dbo:starring", "dbr:Antonio");
/// b.add_iri("dbr:Amanda", "dbo:friend", "dbr:Neil");
/// let store = b.build();
///
/// let dataset = PhraseDataset::new(vec![
///     PhraseEntry::new("be married to", vec![("dbr:Melanie".into(), "dbr:Antonio".into())]),
///     PhraseEntry::new("play in", vec![("dbr:Antonio".into(), "dbr:Film".into())]),
///     PhraseEntry::new("know", vec![("dbr:Amanda".into(), "dbr:Neil".into())]),
/// ]);
/// let dict = mine(&store, &dataset, &MinerConfig::default());
/// let spouse = store.expect_iri("dbo:spouse");
/// let top = &dict.lookup("be married to").unwrap()[0];
/// assert_eq!(top.path.as_single_predicate(), Some(spouse));
/// ```
///
/// Steps 1–4 of the algorithm enumerate `Path(v, v′)` per supporting pair
/// (bidirectional BFS, direction-blind, length ≤ θ) and union them into
/// `PS(rel)`; steps 5–8 score every pattern with tf-idf and keep the top-k
/// per phrase. Confidence probabilities are the per-phrase max-normalized
/// tf-idf values (Equation 1, normalized as in Table 6).
pub fn mine(store: &Store, dataset: &PhraseDataset, cfg: &MinerConfig) -> ParaphraseDict {
    mine_with_corpus_size(store, dataset, cfg, dataset.entries.len())
}

/// [`mine`] with an explicit corpus size `|T|` for the idf term — used by
/// incremental maintenance, where only the affected phrases are re-mined
/// but idf must still reflect the full dictionary.
pub fn mine_with_corpus_size(
    store: &Store,
    dataset: &PhraseDataset,
    cfg: &MinerConfig,
    corpus_size: usize,
) -> ParaphraseDict {
    let cache = PathCache::new(cfg.path_config(store));
    mine_with_cache(store, dataset, cfg, corpus_size, &cache)
}

/// [`mine_with_corpus_size`] over a caller-supplied [`PathCache`], so
/// repeated supporting pairs (and pairs sharing an endpoint) skip
/// re-running the bidirectional BFS. The cache is shared across the
/// miner's worker threads and across calls — e.g. incremental re-mining
/// reuses frontiers grown by the initial run. Results are identical to the
/// uncached path; only the work changes.
///
/// Panics if the cache was built over a different [`PathConfig`] than
/// [`MinerConfig::path_config`] implies — a mismatched θ or path cap would
/// silently change mining results.
pub fn mine_with_cache(
    store: &Store,
    dataset: &PhraseDataset,
    cfg: &MinerConfig,
    corpus_size: usize,
    cache: &PathCache,
) -> ParaphraseDict {
    let path_cfg = cfg.path_config(store);
    assert_eq!(cache.config().max_len, path_cfg.max_len, "PathCache θ differs from MinerConfig θ");
    assert_eq!(
        cache.config().max_paths,
        path_cfg.max_paths,
        "PathCache path cap differs from MinerConfig"
    );

    // Phase 1: per-phrase path-set summaries.
    let summaries = summarize(store, dataset, cache, cfg.threads);

    // Phase 2: document frequencies across phrases.
    let df = document_frequency(summaries.iter());
    let total = corpus_size.max(dataset.entries.len());

    // Phase 3: score and keep top-k per phrase.
    let mut dict = ParaphraseDict::default();
    for (entry, summary) in dataset.entries.iter().zip(&summaries) {
        let mut scored: Vec<(f64, gqa_rdf::PathPattern)> = summary
            .tf
            .iter()
            .map(|(pattern, &tf)| {
                let d = df.get(pattern).copied().unwrap_or(0) as usize;
                (tf_idf(tf, total, d), pattern.clone())
            })
            .filter(|(score, _)| *score > 0.0)
            .collect();
        // Ties break toward shorter paths (the paper observes precision
        // falls with path length), then lexicographically for determinism.
        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1.len().cmp(&b.1.len()))
                .then_with(|| a.1.cmp(&b.1))
        });
        scored.truncate(cfg.top_k);
        if scored.is_empty() {
            continue;
        }
        let max = scored[0].0;
        // Confidence = max-normalized tf-idf, discounted per extra hop: the
        // paper's Exp 1 finds precision drops with path length, so equal
        // tf-idf scores must not make a 3-hop paraphrase as trusted as a
        // direct predicate.
        const LENGTH_DECAY: f64 = 0.9;
        let mappings: Vec<ParaMapping> = scored
            .into_iter()
            .map(|(score, path)| {
                let decay = LENGTH_DECAY.powi(path.len() as i32 - 1);
                ParaMapping { path, tfidf: score, confidence: (score / max) * decay }
            })
            .collect();
        dict.insert(entry.text.clone(), mappings);
    }
    dict
}

/// Phase 1 of Algorithm 1, optionally parallel: enumerate the path sets of
/// every phrase's support pairs. Phrases are embarrassingly parallel; the
/// per-phrase output order is preserved, so the result is deterministic.
fn summarize(
    store: &Store,
    dataset: &PhraseDataset,
    cache: &PathCache,
    threads: usize,
) -> Vec<PathSetSummary> {
    let summarize_one = |entry: &crate::support::PhraseEntry| {
        let mut summary = PathSetSummary::default();
        for (a, b) in &entry.support {
            let (Some(va), Some(vb)) = (store.iri(a), store.iri(b)) else {
                continue; // pair does not occur in the RDF graph
            };
            let paths = cache.simple_paths(store, va, vb);
            summary.record_pair(paths.iter().map(|p| p.pattern()));
        }
        summary
    };
    if threads <= 1 || dataset.entries.len() < 2 {
        return dataset.entries.iter().map(summarize_one).collect();
    }
    let threads = threads.min(dataset.entries.len());
    let chunk = dataset.entries.len().div_ceil(threads);
    let mut out: Vec<Vec<PathSetSummary>> = Vec::new();
    crossbeam::scope(|scope| {
        let handles: Vec<_> = dataset
            .entries
            .chunks(chunk)
            .map(|entries| {
                scope.spawn(move |_| entries.iter().map(summarize_one).collect::<Vec<_>>())
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("miner worker panicked"));
        }
    })
    .expect("miner scope");
    out.into_iter().flatten().collect()
}

/// Maintenance (§3): re-mine only the phrases whose support pairs touch a
/// set of *new* predicates, merging the result into an existing dictionary.
/// Existing entries for unaffected phrases are kept as-is. The caller
/// supplies the updated store (containing the new predicates).
pub fn remine_for_new_predicates(
    dict: &mut ParaphraseDict,
    store: &Store,
    dataset: &PhraseDataset,
    new_predicates: &[&str],
    cfg: &MinerConfig,
) {
    // Affected phrases: any whose support pair is connected through one of
    // the new predicates. Cheap over-approximation: any phrase with at
    // least one resolvable pair adjacent to a new predicate edge.
    let new_ids: Vec<_> = new_predicates.iter().filter_map(|p| store.iri(p)).collect();
    if new_ids.is_empty() {
        return;
    }
    let touches_new = |iri: &str| -> bool {
        let Some(v) = store.iri(iri) else { return false };
        store.out_edges(v).any(|t| new_ids.contains(&t.p))
            || store.in_edges(v).any(|t| new_ids.contains(&t.p))
    };
    let affected: Vec<usize> = dataset
        .entries
        .iter()
        .enumerate()
        .filter(|(_, e)| e.support.iter().any(|(a, b)| touches_new(a) || touches_new(b)))
        .map(|(i, _)| i)
        .collect();
    if affected.is_empty() {
        return;
    }
    let sub = PhraseDataset::new(affected.iter().map(|&i| dataset.entries[i].clone()).collect());
    // Document frequencies are approximated within the affected subset, but
    // the corpus size |T| stays that of the full dictionary so idf keeps its
    // scale.
    let fresh = mine_with_corpus_size(store, &sub, cfg, dataset.entries.len());
    for (phrase, mappings) in fresh.into_entries() {
        dict.insert(phrase, mappings);
    }
}

/// Maintenance (§3): delete all mappings that use any of the removed
/// predicates.
pub fn drop_removed_predicates(dict: &mut ParaphraseDict, removed: &[gqa_rdf::TermId]) {
    dict.retain_mappings(|m| m.path.0.iter().all(|s| !removed.contains(&s.pred)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support::PhraseEntry;
    use gqa_rdf::{Dir, PathPattern, PathStep, StoreBuilder};

    /// A family graph where "uncle of" requires a length-3 path and a
    /// `hasGender` noise hub exists (Figure 4).
    pub(super) fn family_store() -> Store {
        let mut b = StoreBuilder::new();
        // Two uncle instances.
        b.add_iri("Joseph_Sr", "hasChild", "Ted");
        b.add_iri("Joseph_Sr", "hasChild", "JFK");
        b.add_iri("JFK", "hasChild", "JFK_jr");
        b.add_iri("Gerry", "hasChild", "Peter");
        b.add_iri("Gerry", "hasChild", "Bernie");
        b.add_iri("Bernie", "hasChild", "Jim");
        // Spouses for "be married to".
        b.add_iri("Melanie", "spouse", "Antonio");
        b.add_iri("Jackie", "spouse", "JFK");
        // Gender noise on everyone.
        for p in ["Ted", "JFK", "JFK_jr", "Peter", "Jim", "Antonio", "Joseph_Sr", "Gerry", "Bernie"]
        {
            b.add_iri(p, "hasGender", "male");
        }
        for p in ["Melanie", "Jackie"] {
            b.add_iri(p, "hasGender", "female");
        }
        b.build()
    }

    pub(super) fn family_dataset() -> PhraseDataset {
        PhraseDataset::new(vec![
            PhraseEntry::new(
                "uncle of",
                vec![("Ted".into(), "JFK_jr".into()), ("Peter".into(), "Jim".into())],
            ),
            PhraseEntry::new(
                "be married to",
                vec![("Melanie".into(), "Antonio".into()), ("Jackie".into(), "JFK".into())],
            ),
            // A third phrase to make gender paths globally frequent.
            PhraseEntry::new(
                "brother of",
                vec![("Ted".into(), "JFK".into()), ("Peter".into(), "Bernie".into())],
            ),
        ])
    }

    #[test]
    fn uncle_mines_the_length_3_path() {
        let store = family_store();
        let dict = mine(&store, &family_dataset(), &MinerConfig::default());
        let child = store.expect_iri("hasChild");
        let uncle = PathPattern(Box::new([
            PathStep { pred: child, dir: Dir::Backward },
            PathStep { pred: child, dir: Dir::Forward },
            PathStep { pred: child, dir: Dir::Forward },
        ]));
        let maps = dict.lookup("uncle of").expect("uncle of mined");
        assert_eq!(maps[0].path, uncle, "top mapping should be the uncle path: {maps:?}");
        // Max-normalized, then length-discounted (0.9 per extra hop).
        assert!((maps[0].confidence - 0.9f64.powi(2)).abs() < 1e-12, "{maps:?}");
    }

    #[test]
    fn married_mines_the_spouse_predicate() {
        let store = family_store();
        let dict = mine(&store, &family_dataset(), &MinerConfig::default());
        let spouse = PathPattern::single(store.expect_iri("spouse"));
        let maps = dict.lookup("be married to").unwrap();
        assert_eq!(maps[0].path, spouse);
    }

    #[test]
    fn gender_noise_is_ranked_below_true_paths() {
        let store = family_store();
        let dict =
            mine(&store, &family_dataset(), &MinerConfig { top_k: 10, ..Default::default() });
        let gender = store.expect_iri("hasGender");
        let noise = PathPattern(Box::new([
            PathStep { pred: gender, dir: Dir::Forward },
            PathStep { pred: gender, dir: Dir::Backward },
        ]));
        let maps = dict.lookup("uncle of").unwrap();
        let noise_rank = maps.iter().position(|m| m.path == noise);
        // tf-idf must not put the gender hub first.
        assert_ne!(noise_rank, Some(0), "{maps:?}");
    }

    #[test]
    fn theta_limits_path_length() {
        let store = family_store();
        let dict = mine(&store, &family_dataset(), &MinerConfig::with_theta(2));
        // With θ=2 the uncle path (length 3) cannot be mined.
        if let Some(maps) = dict.lookup("uncle of") {
            assert!(maps.iter().all(|m| m.path.len() <= 2), "{maps:?}");
        }
    }

    #[test]
    fn unresolvable_pairs_are_skipped() {
        let store = family_store();
        let ds = PhraseDataset::new(vec![PhraseEntry::new(
            "teleport to",
            vec![("NotInGraph".into(), "AlsoMissing".into())],
        )]);
        let dict = mine(&store, &ds, &MinerConfig::default());
        assert!(dict.lookup("teleport to").is_none());
    }

    #[test]
    fn drop_removed_predicates_filters_mappings() {
        let store = family_store();
        let mut dict = mine(&store, &family_dataset(), &MinerConfig::default());
        let spouse = store.expect_iri("spouse");
        drop_removed_predicates(&mut dict, &[spouse]);
        assert!(dict.lookup("be married to").is_none(), "all spouse mappings must vanish");
        assert!(dict.lookup("uncle of").is_some(), "unrelated mappings survive");
    }

    #[test]
    fn remine_merges_affected_phrases_only() {
        // Start from a store lacking `spouse`, then re-mine with it present.
        let mut b = StoreBuilder::new();
        b.add_iri("Joseph_Sr", "hasChild", "Ted");
        b.add_iri("Joseph_Sr", "hasChild", "JFK");
        b.add_iri("JFK", "hasChild", "JFK_jr");
        b.add_iri("Gerry", "hasChild", "Peter");
        b.add_iri("Gerry", "hasChild", "Bernie");
        b.add_iri("Bernie", "hasChild", "Jim");
        let old_store = b.build();
        let ds = family_dataset();
        let mut dict = mine(&old_store, &ds, &MinerConfig::default());
        assert!(dict.lookup("be married to").is_none());

        let new_store = family_store();
        remine_for_new_predicates(&mut dict, &new_store, &ds, &["spouse"], &MinerConfig::default());
        assert!(dict.lookup("be married to").is_some());
        assert!(dict.lookup("uncle of").is_some());
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use crate::support::PhraseEntry;
    use gqa_rdf::StoreBuilder;

    #[test]
    fn parallel_mining_equals_serial() {
        let mut b = StoreBuilder::new();
        for i in 0..40 {
            b.add_iri(&format!("a{i}"), "p", &format!("b{i}"));
            b.add_iri(&format!("b{i}"), "q", &format!("c{i}"));
        }
        let store = b.build();
        let dataset = PhraseDataset::new(
            (0..40)
                .map(|i| {
                    PhraseEntry::new(format!("rel{i} of"), vec![(format!("a{i}"), format!("c{i}"))])
                })
                .collect(),
        );
        let serial = mine(&store, &dataset, &MinerConfig { threads: 1, ..Default::default() });
        let parallel = mine(&store, &dataset, &MinerConfig { threads: 4, ..Default::default() });
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(parallel.iter()) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.len(), b.1.len());
            for (x, y) in a.1.iter().zip(b.1.iter()) {
                assert_eq!(x.path, y.path);
                assert!((x.confidence - y.confidence).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn shared_cache_mining_equals_uncached_and_records_hits() {
        let store = super::tests::family_store();
        let ds = super::tests::family_dataset();
        let cfg = MinerConfig::default();
        let reference = mine(&store, &ds, &cfg);
        let cache = PathCache::new(cfg.path_config(&store));
        // Mine twice over one cache: the second run is served entirely from
        // memory yet must produce the identical dictionary.
        let first = mine_with_cache(&store, &ds, &cfg, ds.entries.len(), &cache);
        let stats_after_first = cache.stats();
        let second = mine_with_cache(&store, &ds, &cfg, ds.entries.len(), &cache);
        let stats_after_second = cache.stats();
        for d in [&first, &second] {
            assert_eq!(d.len(), reference.len());
            for (a, b) in reference.iter().zip(d.iter()) {
                assert_eq!(a.0, b.0);
                for (x, y) in a.1.iter().zip(b.1.iter()) {
                    assert_eq!(x.path, y.path);
                    assert!((x.confidence - y.confidence).abs() < 1e-12);
                }
            }
        }
        assert_eq!(stats_after_second.misses, stats_after_first.misses, "second run all hits");
        assert!(stats_after_second.hits > stats_after_first.hits);
    }

    #[test]
    #[should_panic(expected = "PathCache θ differs")]
    fn mismatched_cache_theta_is_rejected() {
        let store = super::tests::family_store();
        let ds = super::tests::family_dataset();
        let cache = PathCache::new(MinerConfig::with_theta(2).path_config(&store));
        mine_with_cache(&store, &ds, &MinerConfig::with_theta(4), ds.entries.len(), &cache);
    }

    #[test]
    fn thread_count_beyond_phrases_is_safe() {
        let mut b = StoreBuilder::new();
        b.add_iri("a", "p", "b");
        b.add_iri("c", "q", "d");
        b.add_iri("e", "r", "f");
        let store = b.build();
        // Three phrases so idf stays positive: Definition 4's
        // idf = ln(|T|/(df+1)) zeroes out for |T| ≤ 2 with df = 1.
        let dataset = PhraseDataset::new(vec![
            PhraseEntry::new("p of", vec![("a".into(), "b".into())]),
            PhraseEntry::new("q of", vec![("c".into(), "d".into())]),
            PhraseEntry::new("r of", vec![("e".into(), "f".into())]),
        ]);
        let d = mine(&store, &dataset, &MinerConfig { threads: 16, ..Default::default() });
        assert_eq!(d.len(), 3);
    }
}
