//! tf-idf scoring of predicate paths (Definition 4).
//!
//! Each relation phrase's path multiset `PS(rel)` is a *virtual document*;
//! the path patterns are *virtual words*; the corpus is the collection of
//! all `PS(rel_i)`. A pattern frequent within one phrase's path sets but
//! rare across phrases scores high; globally common noise like
//! `→hasGender·←hasGender` (Figure 4) scores low.

use gqa_rdf::PathPattern;
use rustc_hash::FxHashMap;

/// Per-phrase pattern frequencies: for each pattern `L`, the number of
/// support pairs whose path set contains `L` — this is
/// `tf(L, PS(rel)) = |{Path(v,v′) : L ∈ Path(v,v′)}|`.
#[derive(Clone, Debug, Default)]
pub struct PathSetSummary {
    /// Pattern → number of support-pair path sets containing it.
    pub tf: FxHashMap<PathPattern, u32>,
    /// Number of support pairs that resolved and were searched.
    pub pairs_searched: usize,
}

impl PathSetSummary {
    /// Record the patterns of one support pair's path set (deduplicated —
    /// a pattern counts once per pair even if several concrete paths
    /// realize it).
    pub fn record_pair(&mut self, patterns: impl IntoIterator<Item = PathPattern>) {
        self.pairs_searched += 1;
        let mut seen: Vec<PathPattern> = patterns.into_iter().collect();
        seen.sort_unstable();
        seen.dedup();
        for p in seen {
            *self.tf.entry(p).or_insert(0) += 1;
        }
    }
}

/// `idf(L, T) = log(|T| / (|{rel ∈ T : L ∈ PS(rel)}| + 1))` (Definition 4).
pub fn idf(total_phrases: usize, phrases_containing: usize) -> f64 {
    (total_phrases as f64 / (phrases_containing as f64 + 1.0)).ln()
}

/// `tf-idf(L, PS(rel), T) = tf × idf` (Definition 4).
pub fn tf_idf(tf: u32, total_phrases: usize, phrases_containing: usize) -> f64 {
    tf as f64 * idf(total_phrases, phrases_containing)
}

/// Document frequency per pattern across all phrase summaries.
pub fn document_frequency<'a>(
    summaries: impl IntoIterator<Item = &'a PathSetSummary>,
) -> FxHashMap<PathPattern, u32> {
    let mut df: FxHashMap<PathPattern, u32> = FxHashMap::default();
    for s in summaries {
        for pattern in s.tf.keys() {
            *df.entry(pattern.clone()).or_insert(0) += 1;
        }
    }
    df
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqa_rdf::{Dir, PathStep, TermId};

    fn pat(p: u32) -> PathPattern {
        PathPattern(Box::new([PathStep { pred: TermId(p), dir: Dir::Forward }]))
    }

    #[test]
    fn tf_counts_pairs_not_paths() {
        let mut s = PathSetSummary::default();
        // One pair whose path set realizes pattern 1 twice: tf must be 1.
        s.record_pair(vec![pat(1), pat(1), pat(2)]);
        s.record_pair(vec![pat(1)]);
        assert_eq!(s.tf[&pat(1)], 2);
        assert_eq!(s.tf[&pat(2)], 1);
        assert_eq!(s.pairs_searched, 2);
    }

    #[test]
    fn idf_penalizes_common_patterns() {
        // Pattern in 1 of 100 phrases vs in 99 of 100.
        assert!(idf(100, 1) > idf(100, 99));
        assert!(idf(100, 99) < 0.01_f64.max(0.1)); // ln(100/100) = 0
    }

    #[test]
    fn idf_matches_definition() {
        assert!((idf(10, 4) - (10f64 / 5f64).ln()).abs() < 1e-12);
        assert!((tf_idf(3, 10, 4) - 3.0 * (2f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn df_across_summaries() {
        let mut a = PathSetSummary::default();
        a.record_pair(vec![pat(1), pat(2)]);
        let mut b = PathSetSummary::default();
        b.record_pair(vec![pat(1)]);
        let df = document_frequency([&a, &b]);
        assert_eq!(df[&pat(1)], 2);
        assert_eq!(df[&pat(2)], 1);
    }

    #[test]
    fn noise_pattern_scores_below_specific_pattern() {
        // The Figure-4 scenario: `gender` appears in every phrase's path
        // sets; `uncle` only in one. With equal tf, tf-idf must rank the
        // specific pattern higher.
        let phrases = 50;
        let specific = tf_idf(5, phrases, 1);
        let noise = tf_idf(5, phrases, 50);
        assert!(specific > noise);
        assert!(noise <= 0.0 + 1e-12);
    }
}
