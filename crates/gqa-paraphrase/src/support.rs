//! Relation phrases and their supporting entity pairs (the paper's
//! dictionary `T`, Table 2).
//!
//! A relation phrase is stored in lemma form (`"be married to"`), matching
//! the lemmas the dependency layer produces; supporting entity pairs are IRI
//! texts resolved against a store at mining time. The paper reports that
//! ~67 % of Patty's support pairs occur in DBpedia — pairs that do not
//! resolve are counted but skipped.

use std::fmt;

/// One relation phrase with its support set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhraseEntry {
    /// The phrase text in lemma form, single-space separated.
    pub text: String,
    /// The phrase's words (split of `text`).
    pub words: Vec<String>,
    /// Supporting `(subject-ish, object-ish)` entity IRI pairs.
    pub support: Vec<(String, String)>,
}

impl PhraseEntry {
    /// Build an entry from phrase text and support pairs.
    pub fn new(text: impl Into<String>, support: Vec<(String, String)>) -> Self {
        let text = text.into();
        let words = text.split_whitespace().map(str::to_owned).collect();
        PhraseEntry { text, words, support }
    }
}

/// A whole relation-phrase dataset (the paper's `T`; cf. Table 5).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhraseDataset {
    /// The entries, in stable order.
    pub entries: Vec<PhraseEntry>,
}

/// Statistics over a phrase dataset (the rows of Table 5).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DatasetStats {
    /// "Number of Textual Patterns".
    pub phrases: usize,
    /// "Number of Entity Pairs".
    pub entity_pairs: usize,
    /// "Average Entity Pair Number For Each Pattern".
    pub avg_pairs_per_phrase: f64,
}

impl PhraseDataset {
    /// Dataset from entries.
    pub fn new(entries: Vec<PhraseEntry>) -> Self {
        PhraseDataset { entries }
    }

    /// Number of phrases (`|T|`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Table-5-style statistics.
    pub fn stats(&self) -> DatasetStats {
        let pairs: usize = self.entries.iter().map(|e| e.support.len()).sum();
        DatasetStats {
            phrases: self.entries.len(),
            entity_pairs: pairs,
            avg_pairs_per_phrase: if self.entries.is_empty() {
                0.0
            } else {
                pairs as f64 / self.entries.len() as f64
            },
        }
    }

    /// Fraction of support pairs whose *both* endpoints resolve in `store`
    /// (the paper's "more than 67 % of entity pairs … occur in DBpedia").
    pub fn resolvable_fraction(&self, store: &gqa_rdf::Store) -> f64 {
        let mut total = 0usize;
        let mut ok = 0usize;
        for e in &self.entries {
            for (a, b) in &e.support {
                total += 1;
                if store.iri(a).is_some() && store.iri(b).is_some() {
                    ok += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            ok as f64 / total as f64
        }
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Number of Textual Patterns  {}", self.phrases)?;
        writeln!(f, "Number of Entity Pairs      {}", self.entity_pairs)?;
        write!(f, "Average Entity Pairs/Pattern {:.1}", self.avg_pairs_per_phrase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqa_rdf::StoreBuilder;

    #[test]
    fn entry_splits_words() {
        let e = PhraseEntry::new("be married to", vec![]);
        assert_eq!(e.words, vec!["be", "married", "to"]);
    }

    #[test]
    fn stats() {
        let d = PhraseDataset::new(vec![
            PhraseEntry::new("play in", vec![("a".into(), "b".into()), ("c".into(), "d".into())]),
            PhraseEntry::new("uncle of", vec![("e".into(), "f".into())]),
        ]);
        let s = d.stats();
        assert_eq!(s.phrases, 2);
        assert_eq!(s.entity_pairs, 3);
        assert!((s.avg_pairs_per_phrase - 1.5).abs() < 1e-12);
        assert!(d.stats().to_string().contains("Textual Patterns"));
    }

    #[test]
    fn empty_dataset_stats() {
        let d = PhraseDataset::default();
        assert!(d.is_empty());
        assert_eq!(d.stats().avg_pairs_per_phrase, 0.0);
    }

    #[test]
    fn resolvable_fraction_counts_pairs_in_store() {
        let mut b = StoreBuilder::new();
        b.add_iri("a", "p", "b");
        let store = b.build();
        let d = PhraseDataset::new(vec![PhraseEntry::new(
            "p of",
            vec![("a".into(), "b".into()), ("a".into(), "missing".into())],
        )]);
        assert!((d.resolvable_fraction(&store) - 0.5).abs() < 1e-12);
    }
}
