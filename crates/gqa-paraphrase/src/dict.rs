//! The paraphrase dictionary `D` (paper Figure 3) and its word-level
//! inverted index (built offline for Algorithm 2).

use gqa_rdf::paths::{Dir, PathPattern, PathStep};
use gqa_rdf::Store;
use rustc_hash::FxHashMap;
use std::fmt;

/// One mapping `rel ↦ L` with its scores.
#[derive(Clone, Debug, PartialEq)]
pub struct ParaMapping {
    /// The predicate path pattern.
    pub path: PathPattern,
    /// Raw tf-idf score (Definition 4).
    pub tfidf: f64,
    /// Confidence probability `δ(rel, L)` — per-phrase max-normalized
    /// tf-idf, as displayed in Table 6.
    pub confidence: f64,
}

/// The paraphrase dictionary: relation phrase → ranked candidate predicate
/// paths, plus the word → phrase inverted index.
#[derive(Clone, Debug, Default)]
pub struct ParaphraseDict {
    /// Phrase texts, in insertion order (index = phrase id).
    phrases: Vec<String>,
    /// Phrase words per phrase id (split of the phrase text).
    words: Vec<Vec<String>>,
    /// Phrase id → mappings, ranked by descending confidence.
    mappings: Vec<Vec<ParaMapping>>,
    /// Phrase text → phrase id.
    by_text: FxHashMap<String, usize>,
    /// Word → phrase ids containing it (the Algorithm-2 inverted index).
    inverted: FxHashMap<String, Vec<usize>>,
}

impl ParaphraseDict {
    /// Empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) the mappings of a phrase.
    pub fn insert(&mut self, phrase: String, mut mappings: Vec<ParaMapping>) {
        mappings.sort_by(|a, b| {
            b.confidence.partial_cmp(&a.confidence).unwrap_or(std::cmp::Ordering::Equal)
        });
        if let Some(&id) = self.by_text.get(&phrase) {
            self.mappings[id] = mappings;
            return;
        }
        let id = self.phrases.len();
        let ws: Vec<String> = phrase.split_whitespace().map(str::to_owned).collect();
        for w in &ws {
            let entry = self.inverted.entry(w.clone()).or_default();
            if entry.last() != Some(&id) {
                entry.push(id);
            }
        }
        self.by_text.insert(phrase.clone(), id);
        self.phrases.push(phrase);
        self.words.push(ws);
        self.mappings.push(mappings);
    }

    /// Mappings of a phrase by text, if present and nonempty.
    pub fn lookup(&self, phrase: &str) -> Option<&[ParaMapping]> {
        let &id = self.by_text.get(phrase)?;
        let m = self.mappings[id].as_slice();
        (!m.is_empty()).then_some(m)
    }

    /// Phrase ids whose phrase contains `word` (Algorithm 2, steps 1–2).
    pub fn phrases_with_word(&self, word: &str) -> &[usize] {
        self.inverted.get(word).map_or(&[], Vec::as_slice)
    }

    /// The words of phrase `id`.
    pub fn phrase_words(&self, id: usize) -> &[String] {
        &self.words[id]
    }

    /// The text of phrase `id`.
    pub fn phrase_text(&self, id: usize) -> &str {
        &self.phrases[id]
    }

    /// Mappings of phrase `id`.
    pub fn mappings_of(&self, id: usize) -> &[ParaMapping] {
        &self.mappings[id]
    }

    /// Number of phrases with at least one mapping.
    pub fn len(&self) -> usize {
        self.mappings.iter().filter(|m| !m.is_empty()).count()
    }

    /// Whether no phrase has mappings.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate `(phrase, mappings)` in insertion order (nonempty only).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[ParaMapping])> {
        self.phrases
            .iter()
            .zip(&self.mappings)
            .filter(|(_, m)| !m.is_empty())
            .map(|(p, m)| (p.as_str(), m.as_slice()))
    }

    /// Consume into `(phrase, mappings)` pairs.
    pub fn into_entries(self) -> impl Iterator<Item = (String, Vec<ParaMapping>)> {
        self.phrases.into_iter().zip(self.mappings)
    }

    /// Keep only the mappings satisfying `pred`; phrases left without
    /// mappings disappear from lookups.
    pub fn retain_mappings(&mut self, pred: impl Fn(&ParaMapping) -> bool) {
        for m in &mut self.mappings {
            m.retain(&pred);
        }
    }

    /// Serialize to a plain-text format: one line per mapping,
    /// `phrase <TAB> confidence <TAB> tfidf <TAB> step step …` where a step
    /// is `>predIRI` (forward) or `<predIRI` (backward).
    pub fn to_text(&self, store: &Store) -> String {
        let mut out = String::new();
        for (phrase, maps) in self.iter() {
            for m in maps {
                out.push_str(phrase);
                out.push('\t');
                out.push_str(&format!("{:.6}\t{:.6}\t", m.confidence, m.tfidf));
                for (i, s) in m.path.0.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    out.push(match s.dir {
                        Dir::Forward => '>',
                        Dir::Backward => '<',
                    });
                    out.push_str(store.term(s.pred).as_iri().unwrap_or("?"));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Parse the [`Self::to_text`] format against a store. Mappings whose
    /// predicates are unknown to the store are skipped.
    pub fn from_text(text: &str, store: &Store) -> Result<Self, String> {
        let mut dict = ParaphraseDict::new();
        let mut pending: FxHashMap<String, Vec<ParaMapping>> = FxHashMap::default();
        let mut order: Vec<String> = Vec::new();
        for (lno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.split('\t');
            let (Some(phrase), Some(conf), Some(tfidf), Some(steps)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(format!("line {}: expected 4 tab-separated fields", lno + 1));
            };
            let confidence: f64 =
                conf.parse().map_err(|e| format!("line {}: bad confidence: {e}", lno + 1))?;
            let tfidf: f64 =
                tfidf.parse().map_err(|e| format!("line {}: bad tfidf: {e}", lno + 1))?;
            let mut path = Vec::new();
            let mut ok = true;
            for s in steps.split(' ') {
                let (dir, iri) = match s.split_at(1) {
                    (">", rest) => (Dir::Forward, rest),
                    ("<", rest) => (Dir::Backward, rest),
                    _ => return Err(format!("line {}: bad step {s:?}", lno + 1)),
                };
                match store.try_iri(iri) {
                    Ok(id) => path.push(PathStep { pred: id, dir }),
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            if !pending.contains_key(phrase) {
                order.push(phrase.to_owned());
            }
            pending.entry(phrase.to_owned()).or_default().push(ParaMapping {
                path: PathPattern(path.into_boxed_slice()),
                tfidf,
                confidence,
            });
        }
        for phrase in order {
            let maps = pending.remove(&phrase).unwrap_or_default();
            dict.insert(phrase, maps);
        }
        Ok(dict)
    }
}

impl fmt::Display for ParaphraseDict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ParaphraseDict({} phrases)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqa_rdf::{StoreBuilder, TermId};

    fn mapping(pred: TermId, conf: f64) -> ParaMapping {
        ParaMapping { path: PathPattern::single(pred), tfidf: conf * 10.0, confidence: conf }
    }

    #[test]
    fn insert_lookup_and_inverted_index() {
        let mut d = ParaphraseDict::new();
        d.insert("be married to".into(), vec![mapping(TermId(0), 1.0)]);
        d.insert("play in".into(), vec![mapping(TermId(1), 0.9), mapping(TermId(2), 0.5)]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.lookup("play in").unwrap().len(), 2);
        assert!(d.lookup("unknown").is_none());
        assert_eq!(d.phrases_with_word("married"), &[0]);
        assert_eq!(d.phrases_with_word("in"), &[1]);
        assert_eq!(d.phrase_words(0), &["be", "married", "to"]);
    }

    #[test]
    fn mappings_are_sorted_by_confidence() {
        let mut d = ParaphraseDict::new();
        d.insert("p".into(), vec![mapping(TermId(1), 0.2), mapping(TermId(2), 0.9)]);
        let m = d.lookup("p").unwrap();
        assert!(m[0].confidence >= m[1].confidence);
    }

    #[test]
    fn reinsert_replaces() {
        let mut d = ParaphraseDict::new();
        d.insert("p q".into(), vec![mapping(TermId(1), 1.0)]);
        d.insert("p q".into(), vec![mapping(TermId(2), 0.7), mapping(TermId(3), 0.6)]);
        assert_eq!(d.lookup("p q").unwrap().len(), 2);
        // Inverted index does not duplicate.
        assert_eq!(d.phrases_with_word("p"), &[0]);
    }

    #[test]
    fn retain_hides_empty_phrases() {
        let mut d = ParaphraseDict::new();
        d.insert("a".into(), vec![mapping(TermId(1), 1.0)]);
        d.retain_mappings(|m| m.path.as_single_predicate() != Some(TermId(1)));
        assert!(d.lookup("a").is_none());
        assert!(d.is_empty());
    }

    #[test]
    fn text_roundtrip() {
        let mut b = StoreBuilder::new();
        b.add_iri("x", "dbo:spouse", "y");
        b.add_iri("x", "dbo:hasChild", "y");
        let store = b.build();
        let spouse = store.expect_iri("dbo:spouse");
        let child = store.expect_iri("dbo:hasChild");

        let mut d = ParaphraseDict::new();
        d.insert("be married to".into(), vec![mapping(spouse, 1.0)]);
        d.insert(
            "uncle of".into(),
            vec![ParaMapping {
                path: PathPattern(Box::new([
                    PathStep { pred: child, dir: Dir::Backward },
                    PathStep { pred: child, dir: Dir::Forward },
                ])),
                tfidf: 4.2,
                confidence: 0.8,
            }],
        );
        let text = d.to_text(&store);
        let back = ParaphraseDict::from_text(&text, &store).unwrap();
        assert_eq!(back.len(), 2);
        let m = back.lookup("uncle of").unwrap();
        assert_eq!(m[0].path.len(), 2);
        assert_eq!(m[0].path.0[0].dir, Dir::Backward);
        assert!((m[0].confidence - 0.8).abs() < 1e-9);
    }

    #[test]
    fn from_text_skips_unknown_predicates() {
        let store = StoreBuilder::new().build();
        let text = "be married to\t1.000000\t3.000000\t>dbo:spouse\n";
        let d = ParaphraseDict::from_text(text, &store).unwrap();
        assert!(d.lookup("be married to").is_none());
    }

    #[test]
    fn from_text_rejects_malformed_lines() {
        let store = StoreBuilder::new().build();
        assert!(ParaphraseDict::from_text("only two\tfields\n", &store).is_err());
        assert!(ParaphraseDict::from_text("p\tx\t1.0\t>a\n", &store).is_err());
        assert!(ParaphraseDict::from_text("p\t1.0\t1.0\t?bad\n", &store).is_err());
    }
}
