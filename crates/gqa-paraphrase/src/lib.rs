//! # gqa-paraphrase — the offline paraphrase dictionary (paper §3)
//!
//! The offline phase mines the semantic equivalence between **relation
//! phrases** (as found by Patty/ReVerb-style extractors — here supplied by
//! `gqa-datagen`) and **predicates or predicate paths** in the RDF graph:
//!
//! 1. each relation phrase `rel` comes with a support set of entity pairs
//!    ([`support::PhraseDataset`]);
//! 2. for every supporting pair present in the graph, all simple paths up to
//!    length θ are enumerated, direction-blind (`gqa_rdf::paths`);
//! 3. a path pattern frequent in `PS(rel)` *but rare across other phrases'
//!    path sets* is a good paraphrase — scored with tf-idf (Definition 4,
//!    [`tfidf`]);
//! 4. the top-k patterns per phrase, with normalized confidence
//!    probabilities `δ(rel, L)` (Equation 1), form the paraphrase dictionary
//!    [`dict::ParaphraseDict`] (the paper's `D`, Figure 3).
//!
//! The dictionary also carries the word → phrase **inverted index** consumed
//! by the online embedding finder (Algorithm 2), and supports the
//! maintenance operations sketched in §3 (re-mining for new predicates,
//! dropping mappings of removed predicates).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dict;
pub mod miner;
pub mod support;
pub mod tfidf;

pub use dict::{ParaMapping, ParaphraseDict};
pub use miner::{mine, mine_with_cache, MinerConfig};
pub use support::{PhraseDataset, PhraseEntry};
