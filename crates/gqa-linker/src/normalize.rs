//! Text normalization shared by index construction and lookup.

/// Normalize a label or mention for matching: lowercase, underscores and
/// punctuation to spaces, parenthesized disambiguators dropped, whitespace
/// collapsed.
///
/// `"Philadelphia_(film)"` → `"philadelphia"`,
/// `"Salt Lake City"` → `"salt lake city"`,
/// `"John F. Kennedy"` → `"john f kennedy"`.
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut in_paren = 0usize;
    let mut last_space = true;
    for c in s.chars() {
        match c {
            '(' => in_paren += 1,
            ')' => in_paren = in_paren.saturating_sub(1),
            _ if in_paren > 0 => {}
            c if c.is_alphanumeric() => {
                for l in c.to_lowercase() {
                    out.push(l);
                }
                last_space = false;
            }
            _ => {
                if !last_space {
                    out.push(' ');
                    last_space = true;
                }
            }
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// The normalized form *keeping* the parenthetical (used as a secondary
/// alias so "philadelphia film" also resolves).
pub fn normalize_keep_paren(s: &str) -> String {
    let no_paren: String = s.chars().map(|c| if c == '(' || c == ')' { ' ' } else { c }).collect();
    normalize(&no_paren)
}

/// Token list of a normalized string.
pub fn tokens(normalized: &str) -> Vec<&str> {
    normalized.split(' ').filter(|t| !t.is_empty()).collect()
}

/// Token-overlap similarity between two normalized strings: |∩| / |∪|
/// (Jaccard over token multiset-as-set).
pub fn token_jaccard(a: &str, b: &str) -> f64 {
    let ta = tokens(a);
    let tb = tokens(b);
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let mut inter = 0usize;
    for t in &ta {
        if tb.contains(t) {
            inter += 1;
        }
    }
    let union = ta.len() + tb.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_iri_fragments() {
        assert_eq!(normalize("Philadelphia_(film)"), "philadelphia");
        assert_eq!(normalize("Salt_Lake_City"), "salt lake city");
        assert_eq!(normalize("John_F._Kennedy"), "john f kennedy");
        assert_eq!(normalize("Philadelphia_76ers"), "philadelphia 76ers");
    }

    #[test]
    fn keep_paren_variant() {
        assert_eq!(normalize_keep_paren("Philadelphia_(film)"), "philadelphia film");
    }

    #[test]
    fn tokens_and_jaccard() {
        assert_eq!(tokens("salt lake city"), vec!["salt", "lake", "city"]);
        assert!((token_jaccard("philadelphia", "philadelphia 76ers") - 0.5).abs() < 1e-12);
        assert!((token_jaccard("a b", "a b") - 1.0).abs() < 1e-12);
        assert_eq!(token_jaccard("", "x"), 0.0);
    }

    #[test]
    fn collapses_whitespace_and_case() {
        assert_eq!(normalize("  The   MAYOR  "), "the mayor");
        assert_eq!(normalize("U.S."), "u s");
    }
}
