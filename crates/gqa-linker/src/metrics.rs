//! Linker instrumentation counters.
//!
//! Mirrors `gqa_rdf::metrics`: counting is off by default (one relaxed load
//! per probe site), shared across clones of the [`Linker`](crate::Linker),
//! read out via [`LinkerMetrics::snapshot`] for publishing into an external
//! registry — this crate has no obs dependency.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};

/// Shared, gate-protected counters for one linker (and its clones).
#[derive(Debug, Default)]
pub struct LinkerMetrics {
    enabled: AtomicBool,
    link_calls: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    candidates_kept: AtomicU64,
    candidates_dropped: AtomicU64,
}

/// A point-in-time copy of every counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkerMetricsSnapshot {
    /// Total `link` invocations.
    pub link_calls: u64,
    /// Invocations returning at least one candidate.
    pub hits: u64,
    /// Invocations returning no candidate.
    pub misses: u64,
    /// Candidates returned (post-cap) across all invocations.
    pub candidates_kept: u64,
    /// Candidates discarded by the `max_candidates` cap.
    pub candidates_dropped: u64,
}

impl LinkerMetrics {
    /// Turn counting on (idempotent).
    pub fn enable(&self) {
        self.enabled.store(true, Relaxed);
    }

    /// Whether counting is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Relaxed)
    }

    /// Copy all counters.
    pub fn snapshot(&self) -> LinkerMetricsSnapshot {
        LinkerMetricsSnapshot {
            link_calls: self.link_calls.load(Relaxed),
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            candidates_kept: self.candidates_kept.load(Relaxed),
            candidates_dropped: self.candidates_dropped.load(Relaxed),
        }
    }

    pub(crate) fn record_link(&self, kept: usize, dropped: usize) {
        if !self.enabled.load(Relaxed) {
            return;
        }
        self.link_calls.fetch_add(1, Relaxed);
        if kept > 0 {
            self.hits.fetch_add(1, Relaxed);
        } else {
            self.misses.fetch_add(1, Relaxed);
        }
        self.candidates_kept.fetch_add(kept as u64, Relaxed);
        self.candidates_dropped.fetch_add(dropped as u64, Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default() {
        let m = LinkerMetrics::default();
        m.record_link(3, 1);
        assert_eq!(m.snapshot(), LinkerMetricsSnapshot::default());
    }

    #[test]
    fn hit_miss_accounting() {
        let m = LinkerMetrics::default();
        m.enable();
        m.record_link(3, 2);
        m.record_link(0, 0);
        let s = m.snapshot();
        assert_eq!(s.link_calls, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.candidates_kept, 3);
        assert_eq!(s.candidates_dropped, 2);
    }
}
