//! # gqa-linker — entity and class linking (paper §4.2.1)
//!
//! Maps an argument phrase `arg` of the semantic query graph to a ranked
//! candidate list `C_v` of entities and classes with confidence
//! probabilities `δ(arg, u)`. The paper delegates this to the DBpedia
//! Lookup web service; this crate is the local stand-in, built over the
//! store's `rdfs:label` literals and IRI fragments.
//!
//! Deliberate **ambiguity is preserved**: "Philadelphia" links to the city,
//! the film and the basketball team; disambiguation happens later, during
//! subgraph matching (the paper's core idea).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod index;
pub mod metrics;
pub mod normalize;

pub use index::{Candidate, LinkResult, Linker};
pub use metrics::{LinkerMetrics, LinkerMetricsSnapshot};
