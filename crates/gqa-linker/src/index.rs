//! The label index and the linker proper.

use crate::metrics::LinkerMetrics;
use crate::normalize::{normalize, normalize_keep_paren, token_jaccard, tokens};
use gqa_fault::FaultPlan;
use gqa_rdf::schema::Schema;
use gqa_rdf::term::vocab;
use gqa_rdf::{Store, TermId};
use rustc_hash::FxHashMap;
use std::sync::Arc;

/// Fault-injection site name for candidate lookup. An `error` rule here
/// makes [`Linker::link_detailed`] return an empty candidate list (the
/// lookup "service" failed), which downstream surfaces as an
/// entity-linking failure rather than a crash.
pub const FAULT_SITE_LOOKUP: &str = "linker.lookup";

/// One linking candidate with its confidence `δ(arg, u)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Candidate {
    /// The linked vertex (entity or class).
    pub id: TermId,
    /// Confidence probability in `(0, 1]`.
    pub confidence: f64,
    /// Whether the vertex is a class (paper Def. 3 distinguishes the two).
    pub is_class: bool,
}

/// Entity/class linker over one store. Construction scans every vertex's
/// `rdfs:label`s and IRI fragment; lookups are hash probes plus a bounded
/// token-overlap scan.
///
/// ```
/// use gqa_linker::Linker;
/// use gqa_rdf::{schema::Schema, StoreBuilder};
///
/// let mut b = StoreBuilder::new();
/// b.add_iri("dbr:Philadelphia", "rdf:type", "dbo:City");
/// b.add_iri("dbr:Philadelphia_(film)", "rdf:type", "dbo:Film");
/// let store = b.build();
/// let schema = Schema::new(&store);
///
/// let linker = Linker::new(&store, &schema);
/// let candidates = linker.link("Philadelphia");
/// assert_eq!(candidates.len(), 2, "both readings stay alive");
/// ```
#[derive(Debug, Clone)]
pub struct Linker {
    /// normalized alias → vertex ids.
    by_alias: FxHashMap<String, Vec<TermId>>,
    /// alias token → (alias, ids) for partial matches.
    by_token: FxHashMap<String, Vec<(String, TermId)>>,
    /// vertex degree, used as a popularity tiebreak (DBpedia Lookup ranks
    /// by refCount; degree is the local analogue).
    degree: FxHashMap<TermId, usize>,
    /// class vertices.
    class_ids: Vec<TermId>,
    max_candidates: usize,
    /// Hit/miss counters, shared across clones; disabled by default.
    metrics: Arc<LinkerMetrics>,
    /// Fault-injection plan; empty (inert) unless a chaos run installs one.
    fault: FaultPlan,
}

/// Outcome of one [`Linker::link_detailed`] call: the candidates that
/// survived the per-mention cap, plus how many were dropped by it.
#[derive(Clone, Debug, Default)]
pub struct LinkResult {
    /// Candidates kept, ranked by descending confidence.
    pub candidates: Vec<Candidate>,
    /// Candidates discarded past the `max_candidates` cut.
    pub dropped: usize,
}

impl Linker {
    /// Build the index. `schema` must come from the same store.
    pub fn new(store: &Store, schema: &Schema) -> Self {
        let mut by_alias: FxHashMap<String, Vec<TermId>> = FxHashMap::default();
        let mut by_token: FxHashMap<String, Vec<(String, TermId)>> = FxHashMap::default();
        let mut degree: FxHashMap<TermId, usize> = FxHashMap::default();
        let label_pred = store.iri(vocab::RDFS_LABEL);

        let mut add_alias = |alias: String, id: TermId| {
            if alias.is_empty() {
                return;
            }
            for tok in tokens(&alias) {
                let entry = by_token.entry(tok.to_owned()).or_default();
                if !entry.iter().any(|(a, i)| a == &alias && *i == id) {
                    entry.push((alias.clone(), id));
                }
            }
            let entry = by_alias.entry(alias).or_default();
            if !entry.contains(&id) {
                entry.push(id);
            }
        };

        for v in store.vertices() {
            let term = store.term(v);
            if !term.is_iri() {
                continue;
            }
            degree.insert(v, store.degree(v));
            // IRI-fragment aliases.
            let frag = term.label();
            add_alias(normalize(&frag), v);
            let with_paren = term.as_iri().map(normalize_keep_paren).unwrap_or_default();
            add_alias(keep_fragment(&with_paren, term.as_iri().unwrap_or("")), v);
            // rdfs:label aliases.
            if let Some(lp) = label_pred {
                for t in store.out_edges_with(v, lp) {
                    if let Some(text) = store.term(t.o).as_literal() {
                        add_alias(normalize(text), v);
                    }
                }
            }
        }

        let mut class_ids: Vec<TermId> = schema.classes().collect();
        class_ids.sort_unstable();

        Linker {
            by_alias,
            by_token,
            degree,
            class_ids,
            max_candidates: 8,
            metrics: Arc::new(LinkerMetrics::default()),
            fault: FaultPlan::none(),
        }
    }

    /// Install a fault-injection plan (see [`FAULT_SITE_LOOKUP`]).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = plan;
    }

    /// Instrumentation counters for this linker (shared across clones).
    /// Disabled by default; see [`LinkerMetrics::enable`].
    pub fn metrics(&self) -> &LinkerMetrics {
        &self.metrics
    }

    /// Link a mention. Returns candidates ranked by descending confidence
    /// (ties broken by vertex degree). Entities and classes both appear;
    /// `is_class` distinguishes them.
    pub fn link(&self, mention: &str) -> Vec<Candidate> {
        self.link_detailed(mention).candidates
    }

    /// Like [`Linker::link`], but also reports how many candidates the
    /// per-mention cap discarded (for EXPLAIN traces).
    pub fn link_detailed(&self, mention: &str) -> LinkResult {
        if self.fault.fire(FAULT_SITE_LOOKUP).is_err() {
            // Injected lookup failure: behave like a mention no index
            // covers, so the pipeline degrades along its normal
            // entity-linking failure path.
            self.metrics.record_link(0, 0);
            return LinkResult::default();
        }
        let q = normalize(mention);
        if q.is_empty() {
            self.metrics.record_link(0, 0);
            return LinkResult::default();
        }
        let mut out: Vec<(f64, usize, TermId)> = Vec::new();
        let push = |conf: f64, id: TermId, out: &mut Vec<(f64, usize, TermId)>| {
            if let Some(existing) = out.iter_mut().find(|(_, _, i)| *i == id) {
                if conf > existing.0 {
                    existing.0 = conf;
                }
                return;
            }
            out.push((conf, self.degree.get(&id).copied().unwrap_or(0), id));
        };

        // Exact alias hits: confidence 1.0.
        if let Some(ids) = self.by_alias.get(&q) {
            for &id in ids {
                push(1.0, id, &mut out);
            }
        }
        // Partial hits sharing any token: token-Jaccard confidence.
        for tok in tokens(&q) {
            if let Some(cands) = self.by_token.get(tok) {
                for (alias, id) in cands {
                    let sim = token_jaccard(&q, alias);
                    if sim > 0.3 && sim < 1.0 {
                        push(sim, *id, &mut out);
                    }
                }
            }
        }

        out.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| b.1.cmp(&a.1))
                .then_with(|| a.2.cmp(&b.2))
        });
        let dropped = out.len().saturating_sub(self.max_candidates);
        out.truncate(self.max_candidates);
        let candidates: Vec<Candidate> = out
            .into_iter()
            .map(|(conf, _, id)| Candidate {
                id,
                confidence: conf,
                is_class: self.class_ids.binary_search(&id).is_ok(),
            })
            .collect();
        self.metrics.record_link(candidates.len(), dropped);
        LinkResult { candidates, dropped }
    }

    /// Link a mention, keeping only class candidates (used for type
    /// arguments like "actor").
    pub fn link_classes(&self, mention: &str) -> Vec<Candidate> {
        self.link(mention).into_iter().filter(|c| c.is_class).collect()
    }

    /// All class vertices (for wh-arguments, which "can match all entities
    /// and classes").
    pub fn classes(&self) -> &[TermId] {
        &self.class_ids
    }

    /// Change the per-mention candidate cap (default 8).
    pub fn set_max_candidates(&mut self, k: usize) {
        self.max_candidates = k.max(1);
    }
}

/// For the keep-paren alias we want the *fragment* with its disambiguator,
/// not the whole IRI: `dbr:Philadelphia_(film)` → `philadelphia film`.
fn keep_fragment(normalized_full: &str, iri: &str) -> String {
    // The normalized full IRI includes the namespace prefix (e.g. "dbr");
    // recompute from the fragment alone.
    let frag = iri.rsplit(['/', '#', ':']).next().unwrap_or(iri);
    let _ = normalized_full;
    normalize_keep_paren(frag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqa_rdf::{StoreBuilder, Term};

    fn sample() -> (Store, Schema) {
        let mut b = StoreBuilder::new();
        b.add_iri("dbr:Philadelphia", "rdf:type", "dbo:City");
        b.add_iri("dbr:Philadelphia_(film)", "rdf:type", "dbo:Film");
        b.add_iri("dbr:Philadelphia_76ers", "rdf:type", "dbo:BasketballTeam");
        b.add_iri("dbr:Philadelphia", "dbo:country", "dbr:United_States");
        b.add_iri("dbr:Philadelphia", "dbo:leaderName", "dbr:Jim_Kenney");
        b.add_obj("dbo:Actor", "rdfs:label", Term::lit("actor"));
        b.add_iri("dbr:Antonio_Banderas", "rdf:type", "dbo:Actor");
        b.add_obj("dbr:An_Actor_Prepares", "rdfs:label", Term::lit("An Actor Prepares"));
        b.add_iri("dbr:An_Actor_Prepares", "rdf:type", "dbo:Book");
        let store = b.build();
        let schema = Schema::new(&store);
        (store, schema)
    }

    #[test]
    fn ambiguous_mention_returns_all_three_philadelphias() {
        let (store, schema) = sample();
        let linker = Linker::new(&store, &schema);
        let cands = linker.link("Philadelphia");
        let ids: Vec<_> = cands.iter().map(|c| c.id).collect();
        for iri in ["dbr:Philadelphia", "dbr:Philadelphia_(film)", "dbr:Philadelphia_76ers"] {
            assert!(ids.contains(&store.expect_iri(iri)), "{iri} missing from {cands:?}");
        }
        // The city (highest degree) ranks first among the exact matches.
        assert_eq!(cands[0].id, store.expect_iri("dbr:Philadelphia"));
        assert!(cands[0].confidence >= cands.last().unwrap().confidence);
    }

    #[test]
    fn film_resolves_exactly_via_paren_alias() {
        let (store, schema) = sample();
        let linker = Linker::new(&store, &schema);
        let cands = linker.link("Philadelphia film");
        assert_eq!(cands[0].id, store.expect_iri("dbr:Philadelphia_(film)"));
        assert!((cands[0].confidence - 1.0).abs() < 1e-12);
    }

    #[test]
    fn class_and_entity_for_actor() {
        // Paper §2.2: "actor" maps to class ⟨Actor⟩ and entity
        // ⟨An_Actor_Prepares⟩.
        let (store, schema) = sample();
        let linker = Linker::new(&store, &schema);
        let cands = linker.link("actor");
        let class =
            cands.iter().find(|c| c.id == store.expect_iri("dbo:Actor")).expect("class candidate");
        assert!(class.is_class);
        assert!(cands
            .iter()
            .any(|c| c.id == store.expect_iri("dbr:An_Actor_Prepares") && !c.is_class));
        let only_classes = linker.link_classes("actor");
        assert!(only_classes.iter().all(|c| c.is_class));
        assert!(!only_classes.is_empty());
    }

    #[test]
    fn multiword_exact_match() {
        let (store, schema) = sample();
        let linker = Linker::new(&store, &schema);
        let cands = linker.link("Antonio Banderas");
        assert_eq!(cands[0].id, store.expect_iri("dbr:Antonio_Banderas"));
        assert!((cands[0].confidence - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_mention_yields_nothing() {
        let (store, schema) = sample();
        let linker = Linker::new(&store, &schema);
        assert!(linker.link("Zanzibar Floof").is_empty());
        assert!(linker.link("").is_empty());
    }

    #[test]
    fn injected_lookup_errors_turn_into_empty_results() {
        let (store, schema) = sample();
        let mut linker = Linker::new(&store, &schema);
        linker.set_fault_plan(FaultPlan::parse("linker.lookup:error:1.0", 0).unwrap());
        assert!(linker.link("Philadelphia").is_empty());
        assert_eq!(linker.fault.fired(FAULT_SITE_LOOKUP), 1);
        // Removing the plan restores normal lookups.
        linker.set_fault_plan(FaultPlan::none());
        assert!(!linker.link("Philadelphia").is_empty());
    }

    #[test]
    fn candidate_cap_is_respected() {
        let (store, schema) = sample();
        let mut linker = Linker::new(&store, &schema);
        linker.set_max_candidates(1);
        assert_eq!(linker.link("Philadelphia").len(), 1);
    }
}
