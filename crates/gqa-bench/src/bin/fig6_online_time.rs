//! Figure 6 — online running time, our method vs DEANNA.
//!
//! For every question both systems answer (the paper tests "all questions
//! that can be answered by both DEANNA and our method"), prints the
//! question-understanding time and the total time of each system plus the
//! speedup factor. The paper's claims to reproduce: DEANNA's understanding
//! stage dominates (joint disambiguation with on-the-fly coherence), ours
//! stays small, and the total speedup lands in the 2–68× band.
//!
//! Run on the **ambiguity-augmented** store (every mentioned entity gains
//! label-colliding decoys): the paper's DBpedia setting gives every mention
//! many candidates, which is precisely what makes eager joint
//! disambiguation expensive — the plain mini graph is too unambiguous to
//! show the asymmetry.

use gqa_baselines::{Deanna, DeannaConfig};
use gqa_bench::{emit_metrics, print_table, score, SystemOutput};
use gqa_core::pipeline::{GAnswer, GAnswerConfig};
use gqa_datagen::minidbp::ambiguous_dbpedia;
use gqa_datagen::patty::mini_dict;
use gqa_datagen::qald::benchmark;
use gqa_obs::Obs;

fn main() {
    let st = ambiguous_dbpedia(7, 42);
    let ours = GAnswer::with_obs(&st, mini_dict(&st), GAnswerConfig::default(), Obs::new());
    let base =
        Deanna::new(&st, mini_dict(&st), DeannaConfig { max_candidates: 8, ..Default::default() });

    let mut rows = Vec::new();
    let mut speedups: Vec<f64> = Vec::new();
    for q in &benchmark() {
        let r = ours.answer(q.text);
        let d = base.answer(q.text);
        let ours_right = score(q, &SystemOutput::from_response(&r)).right;
        let deanna_out =
            SystemOutput { answers: d.answers.clone(), boolean: d.boolean, count: None };
        let deanna_right = score(q, &deanna_out).right;
        if !(ours_right && deanna_right) {
            continue;
        }
        // Warm timings: best of 3.
        let (mut ou, mut ot, mut du, mut dt) = (f64::MAX, f64::MAX, f64::MAX, f64::MAX);
        for _ in 0..3 {
            let r = ours.answer(q.text);
            ou = ou.min(r.understanding_time.as_secs_f64());
            ot = ot.min(r.total_time().as_secs_f64());
            let d = base.answer(q.text);
            du = du.min(d.understanding_time.as_secs_f64());
            dt = dt.min(d.total_time().as_secs_f64());
        }
        let speedup = dt / ot.max(1e-9);
        speedups.push(speedup);
        rows.push(vec![
            format!("Q{}", q.id),
            format!("{:.3}", ou * 1e3),
            format!("{:.3}", ot * 1e3),
            format!("{:.3}", du * 1e3),
            format!("{:.3}", dt * 1e3),
            format!("{:.1}x", speedup),
            format!("{}", d.coherence_probes),
        ]);
    }
    print_table(
        "Figure 6 — online running time (ms): ours vs DEANNA, questions both answer",
        &[
            "ID",
            "ours understand",
            "ours total",
            "DEANNA understand",
            "DEANNA total",
            "speedup",
            "DEANNA probes",
        ],
        &rows,
    );
    if !speedups.is_empty() {
        speedups.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "\nspeedup: min {:.1}x, median {:.1}x, max {:.1}x over {} questions (paper: total response 2–68x faster)",
            speedups[0],
            speedups[speedups.len() / 2],
            speedups[speedups.len() - 1],
            speedups.len()
        );
    }

    emit_metrics(&ours);

    ambiguity_sweep();
}

/// The origin of Figure 6's gap: cost vs per-mention ambiguity. DEANNA's
/// joint disambiguation explores the candidate product space (exponential
/// in the number of ambiguous phrases, candidate-count driven), while the
/// TA-style lazy search prunes candidates with index probes and terminates
/// on the score bound.
fn ambiguity_sweep() {
    let question = "Who was married to an actor that played in Philadelphia?";
    let mut rows = Vec::new();
    for decoys in [0usize, 2, 4, 8, 16, 24] {
        let st = ambiguous_dbpedia(decoys, 42);
        let cap = decoys + 4;
        let ours = GAnswer::new(
            &st,
            mini_dict(&st),
            GAnswerConfig { max_link_candidates: cap, ..Default::default() },
        );
        let base = Deanna::new(
            &st,
            mini_dict(&st),
            DeannaConfig { max_candidates: cap, ..Default::default() },
        );
        let (mut ot, mut dt) = (f64::MAX, f64::MAX);
        let (mut probes, mut assignments, mut ta_probes) = (0usize, 0usize, 0usize);
        for _ in 0..3 {
            let r = ours.answer(question);
            ot = ot.min(r.total_time().as_secs_f64());
            ta_probes = r.ta_stats.probes;
            let d = base.answer(question);
            dt = dt.min(d.total_time().as_secs_f64());
            probes = d.coherence_probes;
            assignments = d.assignments_explored;
        }
        rows.push(vec![
            decoys.to_string(),
            format!("{:.3}", ot * 1e3),
            format!("{:.3}", dt * 1e3),
            format!("{:.1}x", dt / ot.max(1e-12)),
            ta_probes.to_string(),
            format!("{probes} / {assignments}"),
        ]);
    }
    print_table(
        "Figure 6 origin — cost vs mention ambiguity (running example)",
        &[
            "decoys/mention",
            "ours total (ms)",
            "DEANNA total (ms)",
            "speedup",
            "our TA probes",
            "DEANNA probes/assignments",
        ],
        &rows,
    );
}
