//! Figure 6 — online running time, our method vs DEANNA.
//!
//! For every question both systems answer (the paper tests "all questions
//! that can be answered by both DEANNA and our method"), prints the
//! question-understanding time and the total time of each system plus the
//! speedup factor. The paper's claims to reproduce: DEANNA's understanding
//! stage dominates (joint disambiguation with on-the-fly coherence), ours
//! stays small, and the total speedup lands in the 2–68× band.
//!
//! Run on the **ambiguity-augmented** store (every mentioned entity gains
//! label-colliding decoys): the paper's DBpedia setting gives every mention
//! many candidates, which is precisely what makes eager joint
//! disambiguation expensive — the plain mini graph is too unambiguous to
//! show the asymmetry.

use gqa_baselines::{Deanna, DeannaConfig};
use gqa_bench::{
    emit_metrics, median, percentile, print_table, score, threads_arg, write_bench_artifact,
    SystemOutput,
};
use gqa_core::concurrency::Concurrency;
use gqa_core::pipeline::{GAnswer, GAnswerConfig, Response};
use gqa_datagen::minidbp::ambiguous_dbpedia;
use gqa_datagen::patty::mini_dict;
use gqa_datagen::qald::benchmark;
use gqa_obs::Obs;
use gqa_rdf::Store;
use std::time::Instant;

fn main() {
    let st = ambiguous_dbpedia(7, 42);
    let ours = GAnswer::with_obs(&st, mini_dict(&st), GAnswerConfig::default(), Obs::new());
    let base =
        Deanna::new(&st, mini_dict(&st), DeannaConfig { max_candidates: 8, ..Default::default() });

    let mut rows = Vec::new();
    let mut speedups: Vec<f64> = Vec::new();
    for q in &benchmark() {
        let r = ours.answer(q.text);
        let d = base.answer(q.text);
        let ours_right = score(q, &SystemOutput::from_response(&r)).right;
        let deanna_out =
            SystemOutput { answers: d.answers.clone(), boolean: d.boolean, count: None };
        let deanna_right = score(q, &deanna_out).right;
        if !(ours_right && deanna_right) {
            continue;
        }
        // Warm timings: best of 3.
        let (mut ou, mut ot, mut du, mut dt) = (f64::MAX, f64::MAX, f64::MAX, f64::MAX);
        for _ in 0..3 {
            let r = ours.answer(q.text);
            ou = ou.min(r.understanding_time.as_secs_f64());
            ot = ot.min(r.total_time().as_secs_f64());
            let d = base.answer(q.text);
            du = du.min(d.understanding_time.as_secs_f64());
            dt = dt.min(d.total_time().as_secs_f64());
        }
        let speedup = dt / ot.max(1e-9);
        speedups.push(speedup);
        rows.push(vec![
            format!("Q{}", q.id),
            format!("{:.3}", ou * 1e3),
            format!("{:.3}", ot * 1e3),
            format!("{:.3}", du * 1e3),
            format!("{:.3}", dt * 1e3),
            format!("{:.1}x", speedup),
            format!("{}", d.coherence_probes),
        ]);
    }
    print_table(
        "Figure 6 — online running time (ms): ours vs DEANNA, questions both answer",
        &[
            "ID",
            "ours understand",
            "ours total",
            "DEANNA understand",
            "DEANNA total",
            "speedup",
            "DEANNA probes",
        ],
        &rows,
    );
    if !speedups.is_empty() {
        speedups.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "\nspeedup: min {:.1}x, median {:.1}x, max {:.1}x over {} questions (paper: total response 2–68x faster)",
            speedups[0],
            speedups[speedups.len() / 2],
            speedups[speedups.len() - 1],
            speedups.len()
        );
    }

    emit_metrics(&ours);

    ambiguity_sweep();

    thread_scaling(&st);
}

/// Canonical, order-independent rendering of one response; the smoke test
/// diffs these lines across `--threads` settings.
fn canonical_answer(r: &Response) -> String {
    if let Some(f) = &r.failure {
        return format!("no_answer({})", f.reason());
    }
    if let Some(b) = r.boolean {
        return format!("bool({b})");
    }
    if let Some(c) = r.count {
        return format!("count({c})");
    }
    let mut texts = r.texts();
    texts.sort_unstable();
    texts.join(" | ")
}

/// One `{"median_ms": …, "p95_ms": …, "n": …}` JSON fragment.
fn stage_json(samples: &[f64]) -> String {
    format!(
        "{{\"median_ms\": {:.6}, \"p95_ms\": {:.6}, \"n\": {}}}",
        median(samples) * 1e3,
        percentile(samples, 95.0) * 1e3,
        samples.len()
    )
}

/// The parallel-online-answering measurement: identical answers at every
/// thread count, per-stage medians at `--threads 1` vs the parallel
/// setting, and batch (`answer_all`) throughput — persisted as
/// `BENCH_online.json` at the repo root so the perf trajectory is tracked
/// across PRs.
fn thread_scaling(st: &Store) {
    let par_threads = threads_arg().unwrap_or(4).max(1);
    let questions = benchmark();
    let texts: Vec<&str> = questions.iter().map(|q| q.text).collect();
    let system_with = |threads: usize| {
        GAnswer::new(
            st,
            mini_dict(st),
            GAnswerConfig { concurrency: Concurrency::with_threads(threads), ..Default::default() },
        )
    };

    // Result identity first: every question, serial vs parallel.
    let serial_sys = system_with(1);
    let par_sys = system_with(par_threads);
    let serial: Vec<Response> = texts.iter().map(|t| serial_sys.answer(t)).collect();
    let parallel: Vec<Response> = texts.iter().map(|t| par_sys.answer(t)).collect();
    let answers_identical = serial.iter().zip(&parallel).all(|(s, p)| {
        canonical_answer(s) == canonical_answer(p)
            && s.matches.len() == p.matches.len()
            && s.matches
                .iter()
                .zip(&p.matches)
                .all(|(a, b)| a.bindings == b.bindings && (a.score - b.score).abs() < 1e-12)
            && s.ta_stats.rounds == p.ta_stats.rounds
            && s.ta_stats.early_terminated == p.ta_stats.early_terminated
    });
    println!("\n== thread scaling — {} questions, threads 1 vs {par_threads} ==", questions.len());
    println!(
        "answers identical across thread counts: {answers_identical} (matches, scores, TA rounds)"
    );
    // One line per question, stable across thread counts (the CI smoke diff).
    for (q, r) in questions.iter().zip(&parallel) {
        println!("ANSWER Q{}: {}", q.id, canonical_answer(r));
    }

    // Timed runs: per-stage samples over 3 warm repetitions per question.
    const REPS: usize = 3;
    let timed = |sys: &GAnswer<'_>| {
        let (mut und, mut eva, mut tot) = (Vec::new(), Vec::new(), Vec::new());
        for _ in 0..REPS {
            for t in &texts {
                let r = sys.answer(t);
                und.push(r.understanding_time.as_secs_f64());
                eva.push(r.evaluation_time.as_secs_f64());
                tot.push(r.total_time().as_secs_f64());
            }
        }
        (und, eva, tot)
    };
    let mut run_entries = Vec::new();
    let mut medians = Vec::new();
    for threads in [1, par_threads] {
        let sys = system_with(threads);
        let (und, eva, tot) = timed(&sys);
        medians.push(median(&tot));
        println!(
            "threads={threads}: total median {:.3} ms, p95 {:.3} ms (evaluate median {:.3} ms)",
            median(&tot) * 1e3,
            percentile(&tot, 95.0) * 1e3,
            median(&eva) * 1e3,
        );
        run_entries.push(format!(
            "{{\"threads\": {threads}, \"questions\": {}, \"reps\": {REPS}, \"stages\": \
             {{\"understand\": {}, \"evaluate\": {}, \"total\": {}}}}}",
            texts.len(),
            stage_json(&und),
            stage_json(&eva),
            stage_json(&tot)
        ));
    }
    if let [serial_med, par_med] = medians[..] {
        println!(
            "speedup at --threads {par_threads}: {:.2}x over --threads 1",
            serial_med / par_med.max(1e-12)
        );
    }

    // Batch throughput: answer_all fans questions over the budget.
    let t0 = Instant::now();
    let batch = par_sys.answer_all(&texts);
    let batch_secs = t0.elapsed().as_secs_f64();
    let batch_identical =
        batch.iter().zip(&serial).all(|(b, s)| canonical_answer(b) == canonical_answer(s));
    println!(
        "batch answer_all({} questions, threads={par_threads}): {:.3} ms total, {:.1} q/s, \
         answers identical: {batch_identical}",
        texts.len(),
        batch_secs * 1e3,
        texts.len() as f64 / batch_secs.max(1e-12)
    );

    let host = std::thread::available_parallelism().map_or(1, usize::from);
    let json = format!(
        "{{\n  \"benchmark\": \"fig6_online_time\",\n  \"host_threads\": {host},\n  \
         \"answers_identical\": {},\n  \"runs\": [\n    {}\n  ],\n  \"batch\": \
         {{\"threads\": {par_threads}, \"questions\": {}, \"seconds\": {batch_secs:.6}, \
         \"throughput_qps\": {:.3}, \"answers_identical\": {batch_identical}}}\n}}\n",
        answers_identical && batch_identical,
        run_entries.join(",\n    "),
        texts.len(),
        texts.len() as f64 / batch_secs.max(1e-12)
    );
    write_bench_artifact("BENCH_online.json", &json);
}

/// The origin of Figure 6's gap: cost vs per-mention ambiguity. DEANNA's
/// joint disambiguation explores the candidate product space (exponential
/// in the number of ambiguous phrases, candidate-count driven), while the
/// TA-style lazy search prunes candidates with index probes and terminates
/// on the score bound.
fn ambiguity_sweep() {
    let question = "Who was married to an actor that played in Philadelphia?";
    let mut rows = Vec::new();
    for decoys in [0usize, 2, 4, 8, 16, 24] {
        let st = ambiguous_dbpedia(decoys, 42);
        let cap = decoys + 4;
        let ours = GAnswer::new(
            &st,
            mini_dict(&st),
            GAnswerConfig { max_link_candidates: cap, ..Default::default() },
        );
        let base = Deanna::new(
            &st,
            mini_dict(&st),
            DeannaConfig { max_candidates: cap, ..Default::default() },
        );
        let (mut ot, mut dt) = (f64::MAX, f64::MAX);
        let (mut probes, mut assignments, mut ta_probes) = (0usize, 0usize, 0usize);
        for _ in 0..3 {
            let r = ours.answer(question);
            ot = ot.min(r.total_time().as_secs_f64());
            ta_probes = r.ta_stats.probes;
            let d = base.answer(question);
            dt = dt.min(d.total_time().as_secs_f64());
            probes = d.coherence_probes;
            assignments = d.assignments_explored;
        }
        rows.push(vec![
            decoys.to_string(),
            format!("{:.3}", ot * 1e3),
            format!("{:.3}", dt * 1e3),
            format!("{:.1}x", dt / ot.max(1e-12)),
            ta_probes.to_string(),
            format!("{probes} / {assignments}"),
        ]);
    }
    print_table(
        "Figure 6 origin — cost vs mention ambiguity (running example)",
        &[
            "decoys/mention",
            "ours total (ms)",
            "DEANNA total (ms)",
            "speedup",
            "our TA probes",
            "DEANNA probes/assignments",
        ],
        &rows,
    );
}
