//! Exp 3 / Table 8 — end-to-end QALD-style evaluation.
//!
//! Runs all 99 benchmark questions through our graph-driven system, the
//! DEANNA-style baseline, and the keyword baseline; prints the Table-8 row
//! format (`Processed | Right | Partially | Recall | Precision | F-1`).
//! The published QALD-3 campaign rows for the systems we cannot re-run
//! (squall2sparql, CASIA, …) are appended as reference values.

use gqa_baselines::KeywordBaseline;
use gqa_bench::{
    deanna, emit_metrics, ganswer_instrumented, print_table, score, store, QScore, SystemOutput,
    TableRow,
};
use gqa_datagen::qald::benchmark;

fn main() {
    let st = store();
    let ours = ganswer_instrumented(&st);
    let base = deanna(&st);
    let keyword = KeywordBaseline::new(&st);
    let questions = benchmark();

    let mut ours_scores: Vec<QScore> = Vec::new();
    let mut deanna_scores: Vec<QScore> = Vec::new();
    let mut keyword_scores: Vec<QScore> = Vec::new();
    let mut per_question: Vec<Vec<String>> = Vec::new();

    for q in &questions {
        let r = ours.answer(q.text);
        let ours_out = SystemOutput::from_response(&r);
        let d = base.answer(q.text);
        let deanna_out =
            SystemOutput { answers: d.answers.clone(), boolean: d.boolean, count: None };
        let k = SystemOutput::from_texts(keyword.answer(q.text));

        let so = score(q, &ours_out);
        let sd = score(q, &deanna_out);
        let sk = score(q, &k);
        ours_scores.push(so);
        deanna_scores.push(sd);
        keyword_scores.push(sk);
        per_question.push(vec![
            format!("Q{}", q.id),
            format!("{}", q.category),
            verdict(&so),
            verdict(&sd),
            verdict(&sk),
        ]);
    }

    print_table(
        "Per-question verdicts (ours / DEANNA / keyword)",
        &["id", "category", "ours", "DEANNA", "keyword"],
        &per_question,
    );

    let rows: Vec<Vec<String>> = [
        ("Our Method", TableRow::aggregate(&ours_scores)),
        ("DEANNA (reimpl.)", TableRow::aggregate(&deanna_scores)),
        ("Keyword", TableRow::aggregate(&keyword_scores)),
    ]
    .iter()
    .map(|(name, row)| {
        vec![
            (*name).to_owned(),
            row.processed.to_string(),
            row.right.to_string(),
            row.partial.to_string(),
            format!("{:.2}", row.recall),
            format!("{:.2}", row.precision),
            format!("{:.2}", row.f1()),
        ]
    })
    .collect();
    print_table(
        "Table 8 — Evaluating QALD-3-style testing questions",
        &["System", "Processed", "Right", "Partially", "Recall", "Precision", "F-1"],
        &rows,
    );

    // Published QALD-3 rows (paper Table 8) — reference values, not re-run.
    let reference = [
        ("Our Method (paper)", 76, 32, 11, 0.40, 0.40, 0.40),
        ("squall2sparql*", 96, 77, 13, 0.85, 0.89, 0.87),
        ("CASIA", 52, 29, 8, 0.36, 0.35, 0.36),
        ("Scalewelis", 70, 1, 38, 0.33, 0.33, 0.33),
        ("RTV", 55, 30, 4, 0.34, 0.32, 0.33),
        ("Intui2", 99, 28, 4, 0.32, 0.32, 0.32),
        ("SWIP", 21, 14, 2, 0.15, 0.16, 0.16),
        ("DEANNA (paper)", 27, 21, 0, 0.21, 0.21, 0.21),
    ];
    let ref_rows: Vec<Vec<String>> = reference
        .iter()
        .map(|(n, p, r, pa, re, pr, f1)| {
            vec![
                (*n).to_owned(),
                p.to_string(),
                r.to_string(),
                pa.to_string(),
                format!("{re:.2}"),
                format!("{pr:.2}"),
                format!("{f1:.2}"),
            ]
        })
        .collect();
    print_table(
        "Reference: published QALD-3 campaign results (paper Table 8; * takes controlled English, not NL)",
        &["System", "Processed", "Right", "Partially", "Recall", "Precision", "F-1"],
        &ref_rows,
    );

    emit_metrics(&ours);
}

fn verdict(s: &QScore) -> String {
    if s.right {
        "right".into()
    } else if s.partial {
        "partial".into()
    } else if s.processed {
        "wrong".into()
    } else {
        "-".into()
    }
}
