//! `loadgen` — closed-loop load harness for the gqa-server HTTP service.
//!
//! Drives `POST /answer` with a pool of client threads, each sending the
//! next request only after reading the previous response (closed loop, so
//! offered load tracks server capacity instead of running away). Two
//! phases by default:
//!
//! * **steady** — a few clients, below capacity: measures baseline qps and
//!   latency quantiles;
//! * **overload** — many more clients than workers + queue slots: the
//!   server must shed (503) rather than queue unboundedly, and the p95
//!   latency of *accepted* requests must stay bounded by the request
//!   deadline (the ISSUE acceptance criterion — deadlines start at accept
//!   time, so queue wait cannot push served latency past `timeout_ms`).
//!
//! Afterward the harness scrapes `/metrics` and cross-checks the server's
//! own counters against the client-observed tallies (request / shed /
//! timeout agreement), then writes everything machine-readable to
//! `BENCH_server.json` at the repo root.
//!
//! ```text
//! # self-contained: boots an in-process server on a loopback port
//! cargo run --release -p gqa-bench --bin loadgen
//!
//! # against an already-running `ganswer --serve ADDR`
//! cargo run --release -p gqa-bench --bin loadgen -- --addr 127.0.0.1:7411
//! ```

use gqa_bench::{median, percentile, threads_arg, write_bench_artifact};
use gqa_core::concurrency::Concurrency;
use gqa_core::pipeline::{GAnswer, GAnswerConfig};
use gqa_datagen::minidbp::mini_dbpedia;
use gqa_datagen::patty::mini_dict;
use gqa_datagen::scaleqa::{scale_qa, ScaleQaConfig};
use gqa_fault::{Budget, FaultPlan};
use gqa_obs::Obs;
use gqa_paraphrase::miner::{mine, MinerConfig};
use gqa_rdf::Store;
use gqa_server::{Engine, Registry, Server, ServerConfig, FAULT_SITE_WORKER};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct Opts {
    addr: Option<String>,
    clients: usize,
    overload_clients: usize,
    requests: u64,
    overload_requests: u64,
    timeout_ms: u64,
    queue: usize,
    out: String,
    chaos: Option<u64>,
    cache: usize,
    tenants: bool,
    /// `--crash SEED`: run the kill-9 crash-recovery phase with this seed.
    crash: Option<u64>,
    /// `--server-bin PATH`: the `ganswer` binary the crash phase spawns
    /// (default: a `ganswer` sibling of the loadgen executable).
    server_bin: Option<String>,
    /// `--crash-faults SPEC`: fault spec armed on the crash phase's last
    /// round (WAL sites; acked upserts must survive even when appends fail).
    crash_faults: String,
    /// `--group-commit SEED`: run the WAL group-commit phase with this seed.
    group_commit: Option<u64>,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        addr: None,
        clients: 2,
        overload_clients: 12,
        requests: 60,
        overload_requests: 150,
        timeout_ms: 2000,
        queue: 4,
        out: "BENCH_server.json".to_owned(),
        chaos: None,
        cache: 0,
        tenants: true,
        crash: None,
        server_bin: None,
        crash_faults: "wal.fsync:error:0.2".to_owned(),
        group_commit: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            args.next()
                .ok_or(format!("{name} needs a value"))?
                .parse()
                .map_err(|e| format!("bad {name}: {e}"))
        };
        match a.as_str() {
            "--addr" => opts.addr = Some(args.next().ok_or("--addr needs HOST:PORT")?),
            "--clients" => opts.clients = num("--clients")? as usize,
            "--overload-clients" => opts.overload_clients = num("--overload-clients")? as usize,
            "--requests" => opts.requests = num("--requests")?,
            "--overload-requests" => opts.overload_requests = num("--overload-requests")?,
            "--timeout-ms" => opts.timeout_ms = num("--timeout-ms")?,
            "--queue" => opts.queue = num("--queue")? as usize,
            "--out" => opts.out = args.next().ok_or("--out needs a file name")?,
            "--chaos" => opts.chaos = Some(num("--chaos")?),
            "--cache" => opts.cache = num("--cache")? as usize,
            "--no-tenants" => opts.tenants = false,
            "--crash" => opts.crash = Some(num("--crash")?),
            "--server-bin" => {
                opts.server_bin = Some(args.next().ok_or("--server-bin needs a path")?);
            }
            "--crash-faults" => {
                opts.crash_faults = args.next().ok_or("--crash-faults needs a spec")?;
            }
            "--group-commit" => opts.group_commit = Some(num("--group-commit")?),
            "--threads" => {
                let _ = num("--threads")?; // consumed by threads_arg()
            }
            "--help" | "-h" => {
                println!(
                    "usage: loadgen [--addr HOST:PORT] [--clients N] [--requests N]\n\
                     \x20              [--overload-clients N] [--overload-requests N]\n\
                     \x20              [--timeout-ms MS] [--queue N] [--threads N] [--out FILE]\n\
                     \x20              [--chaos SEED] [--cache N]\n\n\
                     Without --addr, boots an in-process gqa-server on a loopback port\n\
                     (--threads sets its worker count, --queue its admission queue).\n\
                     With --addr, drives an external server and skips the overload phase\n\
                     unless its queue size is known to be small.\n\n\
                     --chaos SEED   after the main phases, boot a second in-process server\n\
                     \x20              with seeded worker-panic injection and a tight search\n\
                     \x20              budget, drive it, and cross-check client-observed 500s\n\
                     \x20              and degraded answers against the fault plan's own\n\
                     \x20              counters and /metrics (in-process only)\n\
                     --cache N      after the main phases, boot an in-process server with an\n\
                     \x20              answer cache of N responses and drive a Zipf-skewed\n\
                     \x20              repeated-question phase; records hit rate and p50/p95\n\
                     \x20              deltas vs the (uncached) steady phase. With --chaos,\n\
                     \x20              the chaos server also gets the cache, proving an armed\n\
                     \x20              fault plan bypasses it (in-process only)\n\
                     --no-tenants   skip the multi-tenant phase (on by default in-process):\n\
                     \x20              two stores in one registry server, one churned by\n\
                     \x20              reloads + upserts under load while the other's traffic\n\
                     \x20              must see zero errors and reconciling per-store tallies\n\
                     --crash SEED   kill-9 crash-recovery phase: spawn `ganswer --serve\n\
                     \x20              --durable` as a subprocess, churn upserts, SIGKILL it\n\
                     \x20              at a seeded point, restart over the same directory, and\n\
                     \x20              verify every acked upsert is answerable with an exact\n\
                     \x20              tally reconciliation (3 rounds; WAL faults armed on the\n\
                     \x20              last via --crash-faults)\n\
                     \x20              A final round loads a store over /admin/stores/load,\n\
                     \x20              acks a few upserts, kills -9, and requires the restart\n\
                     \x20              to bring the runtime-loaded tenant back from the\n\
                     \x20              registry manifest at the acked epoch\n\
                     --server-bin P ganswer binary for --crash / --group-commit\n\
                     \x20              (default: sibling of loadgen)\n\
                     --crash-faults SPEC\n\
                     \x20              fault spec for the crash phase's last kill-9 round\n\
                     \x20              (default \"wal.fsync:error:0.2\")\n\
                     --group-commit SEED\n\
                     \x20              WAL group-commit phase: spawn `ganswer --serve\n\
                     \x20              --durable` with a seeded 2 ms fsync latency, hammer\n\
                     \x20              the upsert route from 8 concurrent writers, and\n\
                     \x20              require the fsync count to come in strictly below the\n\
                     \x20              ack count (one sync_data amortized over a batch)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

/// One phase's client-side observations.
#[derive(Default)]
struct PhaseResult {
    latencies_ms: Vec<f64>, // latency of 200s only (accepted + answered)
    status_counts: BTreeMap<u16, u64>,
    /// One echoed request id per observed status (last seen), proving the
    /// ids in BENCH_server.json are live handles into the server's
    /// access log and `/debug/requests` views.
    sample_ids: BTreeMap<u16, String>,
    /// Responses whose `X-Request-Id` was absent or didn't echo the
    /// client-chosen id. Must end the run at zero.
    missing_ids: u64,
    wall: Duration,
    io_errors: u64,
}

impl PhaseResult {
    fn note_echo(&mut self, status: u16, sent: &str, echoed: Option<String>) {
        match echoed {
            // 503 sheds answer straight from the acceptor with a
            // server-generated id (shedding never parses the request);
            // every other response must echo the client's id exactly.
            Some(id) if status == 503 || id == sent => {
                self.sample_ids.insert(status, id);
            }
            _ => self.missing_ids += 1,
        }
    }

    fn merge_into(self, m: &mut PhaseResult) {
        m.latencies_ms.extend_from_slice(&self.latencies_ms);
        for (k, v) in &self.status_counts {
            *m.status_counts.entry(*k).or_insert(0) += v;
        }
        for (k, v) in self.sample_ids {
            m.sample_ids.insert(k, v);
        }
        m.missing_ids += self.missing_ids;
        m.io_errors += self.io_errors;
    }
}

/// First value of a response header, by case-insensitive name.
fn header_value(response: &str, name: &str) -> Option<String> {
    let head = response.split("\r\n\r\n").next()?;
    head.lines().skip(1).find_map(|l| {
        let (k, v) = l.split_once(':')?;
        k.trim().eq_ignore_ascii_case(name).then(|| v.trim().to_owned())
    })
}

fn send_answer_request(
    addr: SocketAddr,
    question: &str,
    timeout_ms: u64,
    request_id: &str,
) -> Result<(u16, Option<String>), String> {
    // One request per connection by design (the closed loop measures full
    // connection cost); `Connection: close` keeps the keep-alive server
    // closing after the response so read_to_end terminates promptly.
    // Every request carries a client-chosen X-Request-Id the server must
    // echo — the returned value is the echo (None if the header is gone).
    let body = format!("{{\"question\": \"{question}\", \"k\": 3, \"timeout_ms\": {timeout_ms}}}");
    let req = format!(
        "POST /answer HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\nX-Request-Id: {request_id}\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    s.set_read_timeout(Some(Duration::from_secs(60))).map_err(|e| e.to_string())?;
    s.write_all(req.as_bytes()).map_err(|e| format!("write: {e}"))?;
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).map_err(|e| format!("read: {e}"))?;
    let text = String::from_utf8_lossy(&buf);
    let status: u16 = text.split(' ').nth(1).and_then(|w| w.parse().ok()).ok_or("bad response")?;
    Ok((status, header_value(&text, "x-request-id")))
}

fn http_get(addr: SocketAddr, path: &str) -> Result<String, String> {
    let req = format!("GET {path} HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n");
    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    s.set_read_timeout(Some(Duration::from_secs(30))).map_err(|e| e.to_string())?;
    s.write_all(req.as_bytes()).map_err(|e| format!("write: {e}"))?;
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).map_err(|e| format!("read: {e}"))?;
    let text = String::from_utf8_lossy(&buf);
    Ok(text.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default())
}

/// First sample of a Prometheus series in a text exposition, matched by
/// exact `name{labels}` prefix.
fn metric_value(exposition: &str, series: &str) -> f64 {
    exposition
        .lines()
        .find_map(|l| l.strip_prefix(series)?.strip_prefix(' ')?.trim().parse().ok())
        .unwrap_or(0.0)
}

/// Closed-loop phase: `clients` threads pull request slots from a shared
/// budget of `total` requests; each waits for its response before sending
/// the next. `tag` makes the client-chosen request ids unique per phase.
fn run_phase(
    addr: SocketAddr,
    clients: usize,
    total: u64,
    timeout_ms: u64,
    tag: &str,
) -> PhaseResult {
    const QUESTIONS: [&str; 3] = [
        "Who is the mayor of Berlin?",
        "Is Michelle Obama the wife of Barack Obama?",
        "Who was married to an actor that played in Philadelphia?",
    ];
    let budget = AtomicU64::new(total);
    let merged = Mutex::new(PhaseResult::default());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients.max(1) {
            scope.spawn(|| {
                let mut local = PhaseResult::default();
                loop {
                    let slot = budget.fetch_sub(1, Ordering::Relaxed);
                    if slot == 0 || slot > total {
                        budget.store(0, Ordering::Relaxed);
                        break;
                    }
                    let q = QUESTIONS[(slot % QUESTIONS.len() as u64) as usize];
                    let rid = format!("lg-{tag}-{slot}");
                    let t0 = Instant::now();
                    match send_answer_request(addr, q, timeout_ms, &rid) {
                        Ok((status, echoed)) => {
                            *local.status_counts.entry(status).or_insert(0) += 1;
                            local.note_echo(status, &rid, echoed);
                            if status == 200 {
                                local.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                            }
                        }
                        Err(_) => local.io_errors += 1,
                    }
                }
                local.merge_into(&mut merged.lock().unwrap());
            });
        }
    });
    let mut result = merged.into_inner().unwrap();
    result.wall = start.elapsed();
    result
}

fn phase_json(name: &str, clients: usize, r: &PhaseResult, deadline_ms: u64) -> String {
    let responses: u64 = r.status_counts.values().sum();
    let qps = responses as f64 / r.wall.as_secs_f64().max(1e-9);
    let statuses: Vec<String> =
        r.status_counts.iter().map(|(s, n)| format!("\"{s}\": {n}")).collect();
    let samples: Vec<String> =
        r.sample_ids.iter().map(|(s, id)| format!("\"{s}\": \"{id}\"")).collect();
    let p95 = percentile(&r.latencies_ms, 95.0);
    let max = r.latencies_ms.iter().copied().fold(0.0f64, f64::max);
    // Slack covers response write + client read on top of the deadline.
    let bounded = r.latencies_ms.is_empty() || p95 <= deadline_ms as f64 + 250.0;
    format!(
        "    \"{name}\": {{\n\
         \x20     \"clients\": {clients},\n\
         \x20     \"responses\": {responses},\n\
         \x20     \"io_errors\": {},\n\
         \x20     \"wall_s\": {:.4},\n\
         \x20     \"qps\": {qps:.2},\n\
         \x20     \"latency_ms\": {{\"p50\": {:.3}, \"p95\": {p95:.3}, \"p99\": {:.3}, \"p999\": {:.3}, \"max\": {max:.3}, \"n\": {}}},\n\
         \x20     \"status_counts\": {{{}}},\n\
         \x20     \"sample_request_ids\": {{{}}},\n\
         \x20     \"request_id_missing\": {},\n\
         \x20     \"p95_within_deadline\": {bounded}\n\
         \x20   }}",
        r.io_errors,
        r.wall.as_secs_f64(),
        median(&r.latencies_ms),
        percentile(&r.latencies_ms, 99.0),
        percentile(&r.latencies_ms, 99.9),
        r.latencies_ms.len(),
        statuses.join(", "),
        samples.join(", "),
        r.missing_ids,
    )
}

/// What the chaos phase saw, client side and server side.
struct ChaosOutcome {
    seed: u64,
    phase: PhaseResult,
    /// 200s whose body carried a `"degraded": {...}` object.
    degraded_responses: u64,
    /// Injections recorded by the fault plan itself.
    injected: u64,
    /// `gqa_server_worker_panics_total` after the phase.
    panics_metric: u64,
    /// `gqa_pipeline_degraded_total{budget="frontier"}` after the phase.
    degraded_metric: u64,
    /// Answer-cache capacity the chaos server was configured with
    /// (`--cache`; 0 = none).
    cache_capacity: usize,
    /// `gqa_server_cache_hits_total` after the phase — must stay 0: an
    /// armed fault plan (and the finite budget) bypasses the cache, so a
    /// memoized answer can never absorb an injection.
    cache_hits: u64,
    stats: gqa_server::ServeStats,
}

impl ChaosOutcome {
    /// Client tallies, fault-plan counters, and /metrics must all agree,
    /// and the drain must not lose a single accepted request.
    fn agree(&self) -> bool {
        let client_500 = self.phase.status_counts.get(&500).copied().unwrap_or(0);
        client_500 == self.injected
            && client_500 == self.panics_metric
            && self.degraded_responses == self.degraded_metric
            && self.stats.served == self.stats.accepted
            && self.phase.io_errors == 0
            && self.cache_hits == 0
    }
}

/// Boot a dedicated in-process server with seeded worker-panic injection
/// and a tight frontier budget, drive it closed-loop, and reconcile every
/// independent tally. The main phases stay fault-free — chaos gets its
/// own server, registry, and fault plan.
fn run_chaos(store: &Store, seed: u64, opts: &Opts) -> ChaosOutcome {
    let plan = FaultPlan::parse(&format!("{FAULT_SITE_WORKER}:panic:0.05"), seed)
        .expect("chaos fault spec");
    let system = GAnswer::with_obs(
        store,
        mini_dict(store),
        GAnswerConfig {
            concurrency: Concurrency::serial(),
            budget: Budget { max_frontier: 8, ..Budget::unlimited() },
            ..Default::default()
        },
        Obs::new(),
    );
    let server = Server::bind(
        "127.0.0.1:0",
        &system,
        ServerConfig {
            workers: 2,
            queue_capacity: opts.queue,
            default_timeout_ms: opts.timeout_ms,
            cache_capacity: opts.cache,
            fault: plan.clone(),
            ..ServerConfig::default()
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("error: chaos bind: {e}");
        std::process::exit(2);
    });
    let addr = server.local_addr().expect("local_addr");
    let shutdown = server.shutdown_handle();
    println!(
        "chaos phase: seed {seed}, {} clients x {} requests, 5% worker panics, frontier budget 8 ...",
        opts.clients, opts.requests
    );
    let (phase, degraded_responses, metrics, stats) = std::thread::scope(|scope| {
        let run = scope.spawn(|| server.run());
        let (phase, degraded) = run_chaos_phase(addr, opts.clients, opts.requests, opts.timeout_ms);
        let metrics = http_get(addr, "/metrics").unwrap_or_default();
        shutdown.store(true, Ordering::SeqCst);
        (phase, degraded, metrics, run.join().expect("chaos server thread panicked"))
    });
    ChaosOutcome {
        seed,
        phase,
        degraded_responses,
        injected: plan.fired(FAULT_SITE_WORKER),
        panics_metric: metric_value(&metrics, "gqa_server_worker_panics_total") as u64,
        degraded_metric: metric_value(&metrics, "gqa_pipeline_degraded_total{budget=\"frontier\"}")
            as u64,
        cache_capacity: opts.cache,
        cache_hits: metric_value(&metrics, "gqa_server_cache_hits_total") as u64,
        stats,
    }
}

/// Closed-loop like [`run_phase`], but reads full response bodies to
/// count degraded answers. Control endpoints are exempt from the
/// `server.worker` site, so the post-phase /metrics scrape is reliable
/// and the fault plan's fired counter covers exactly the `/answer`
/// traffic the clients tallied.
fn run_chaos_phase(
    addr: SocketAddr,
    clients: usize,
    total: u64,
    timeout_ms: u64,
) -> (PhaseResult, u64) {
    const QUESTIONS: [&str; 3] = [
        "Who is the mayor of Berlin?",
        "Is Michelle Obama the wife of Barack Obama?",
        "Who was married to an actor that played in Philadelphia?",
    ];
    let budget = AtomicU64::new(total);
    let degraded = AtomicU64::new(0);
    let merged = Mutex::new(PhaseResult::default());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients.max(1) {
            scope.spawn(|| {
                let mut local = PhaseResult::default();
                loop {
                    let slot = budget.fetch_sub(1, Ordering::Relaxed);
                    if slot == 0 || slot > total {
                        budget.store(0, Ordering::Relaxed);
                        break;
                    }
                    let q = QUESTIONS[(slot % QUESTIONS.len() as u64) as usize];
                    let rid = format!("lg-chaos-{slot}");
                    let t0 = Instant::now();
                    match send_answer_full(addr, q, timeout_ms, &rid) {
                        Ok((status, body, echoed)) => {
                            *local.status_counts.entry(status).or_insert(0) += 1;
                            local.note_echo(status, &rid, echoed);
                            if status == 200 {
                                local.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                                if body.contains("\"degraded\":{") {
                                    degraded.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        Err(_) => local.io_errors += 1,
                    }
                }
                local.merge_into(&mut merged.lock().unwrap());
            });
        }
    });
    let mut result = merged.into_inner().unwrap();
    result.wall = start.elapsed();
    (result, degraded.into_inner())
}

fn send_answer_full(
    addr: SocketAddr,
    question: &str,
    timeout_ms: u64,
    request_id: &str,
) -> Result<(u16, String, Option<String>), String> {
    let body = format!("{{\"question\": \"{question}\", \"k\": 3, \"timeout_ms\": {timeout_ms}}}");
    let req = format!(
        "POST /answer HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\nX-Request-Id: {request_id}\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    s.set_read_timeout(Some(Duration::from_secs(60))).map_err(|e| e.to_string())?;
    s.write_all(req.as_bytes()).map_err(|e| format!("write: {e}"))?;
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).map_err(|e| format!("read: {e}"))?;
    let text = String::from_utf8_lossy(&buf);
    let status: u16 = text.split(' ').nth(1).and_then(|w| w.parse().ok()).ok_or("bad response")?;
    Ok((
        status,
        text.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default(),
        header_value(&text, "x-request-id"),
    ))
}

/// What the cache phase saw: client latencies plus the server's own
/// cache counters (scraped from a fresh registry, so absolutes are
/// per-phase).
struct CacheOutcome {
    capacity: usize,
    phase: PhaseResult,
    hits: u64,
    misses: u64,
    stale: u64,
}

impl CacheOutcome {
    fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.stale;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The ISSUE acceptance bar: a Zipf-skewed repeated-question workload
    /// must hit ≥ 90% of the time.
    fn hit_rate_ok(&self) -> bool {
        self.hit_rate() >= 0.9
    }
}

/// splitmix64 — deterministic per-thread question selection without any
/// RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Boot a dedicated in-process server with an answer cache of `capacity`
/// responses (the main phases stay cacheless, so the steady baseline is a
/// true cold-pipeline measurement) and drive a Zipf-skewed repeated-
/// question workload against it.
fn run_cache(store: &Store, capacity: usize, opts: &Opts) -> CacheOutcome {
    let system = GAnswer::with_obs(
        store,
        mini_dict(store),
        GAnswerConfig { concurrency: Concurrency::serial(), ..Default::default() },
        Obs::new(),
    );
    let server = Server::bind(
        "127.0.0.1:0",
        &system,
        ServerConfig {
            workers: 2,
            queue_capacity: opts.queue,
            default_timeout_ms: opts.timeout_ms,
            cache_capacity: capacity,
            ..ServerConfig::default()
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("error: cache bind: {e}");
        std::process::exit(2);
    });
    let addr = server.local_addr().expect("local_addr");
    let shutdown = server.shutdown_handle();
    let requests = opts.requests.max(60);
    println!(
        "cache phase: {} clients x {requests} requests, Zipf-skewed repeats, cache {capacity} ...",
        opts.clients
    );
    let (phase, metrics) = std::thread::scope(|scope| {
        let run = scope.spawn(|| server.run());
        let phase = run_zipf_phase(addr, opts.clients, requests, opts.timeout_ms);
        let metrics = http_get(addr, "/metrics").unwrap_or_default();
        shutdown.store(true, Ordering::SeqCst);
        run.join().expect("cache server thread panicked");
        (phase, metrics)
    });
    CacheOutcome {
        capacity,
        phase,
        hits: metric_value(&metrics, "gqa_server_cache_hits_total") as u64,
        misses: metric_value(&metrics, "gqa_server_cache_misses_total") as u64,
        stale: metric_value(&metrics, "gqa_server_cache_stale_total") as u64,
    }
}

/// Closed-loop like [`run_phase`], but question selection is Zipf-skewed
/// over the three canonical questions (rank r drawn with weight 1/r) and
/// each send picks one of five case/whitespace/punctuation spellings —
/// all of which normalize to the same cache key, which is exactly the
/// production pattern an answer cache exists for.
fn run_zipf_phase(addr: SocketAddr, clients: usize, total: u64, timeout_ms: u64) -> PhaseResult {
    const QUESTIONS: [&str; 3] = [
        "Who is the mayor of Berlin?",
        "Is Michelle Obama the wife of Barack Obama?",
        "Who was married to an actor that played in Philadelphia?",
    ];
    // Zipf s=1 over 3 ranks: cumulative weights of 1, 1/2, 1/3.
    const CUM: [f64; 3] = [6.0 / 11.0, 9.0 / 11.0, 1.0];
    fn spelling(q: &str, which: u64) -> String {
        match which % 5 {
            0 => q.to_owned(),
            1 => q.to_uppercase(),
            2 => q.to_lowercase(),
            3 => format!("  {q}  "),
            _ => q.replace('?', "???"),
        }
    }
    let budget = AtomicU64::new(total);
    let merged = Mutex::new(PhaseResult::default());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients.max(1) {
            let (budget, merged) = (&budget, &merged);
            scope.spawn(move || {
                let mut rng = 0x5EED_0000 + client as u64;
                let mut local = PhaseResult::default();
                loop {
                    let slot = budget.fetch_sub(1, Ordering::Relaxed);
                    if slot == 0 || slot > total {
                        budget.store(0, Ordering::Relaxed);
                        break;
                    }
                    let u = (splitmix64(&mut rng) >> 11) as f64 / (1u64 << 53) as f64;
                    let rank = CUM.iter().position(|c| u < *c).unwrap_or(2);
                    let q = spelling(QUESTIONS[rank], splitmix64(&mut rng));
                    let rid = format!("lg-zipf-{slot}");
                    let t0 = Instant::now();
                    match send_answer_request(addr, &q, timeout_ms, &rid) {
                        Ok((status, echoed)) => {
                            *local.status_counts.entry(status).or_insert(0) += 1;
                            local.note_echo(status, &rid, echoed);
                            if status == 200 {
                                local.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                            }
                        }
                        Err(_) => local.io_errors += 1,
                    }
                }
                local.merge_into(&mut merged.lock().unwrap());
            });
        }
    });
    let mut result = merged.into_inner().unwrap();
    result.wall = start.elapsed();
    result
}

/// Like [`send_answer_request`] but routed at a named tenant via the
/// body's optional `store` field (`None` = the default tenant).
fn send_tenant_answer(
    addr: SocketAddr,
    question: &str,
    timeout_ms: u64,
    request_id: &str,
    store: Option<&str>,
) -> Result<(u16, Option<String>), String> {
    let store_field = store.map(|s| format!(", \"store\": \"{s}\"")).unwrap_or_default();
    let body = format!(
        "{{\"question\": \"{question}\", \"k\": 3, \"timeout_ms\": {timeout_ms}{store_field}}}"
    );
    let req = format!(
        "POST /answer HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\nX-Request-Id: {request_id}\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    s.set_read_timeout(Some(Duration::from_secs(60))).map_err(|e| e.to_string())?;
    s.write_all(req.as_bytes()).map_err(|e| format!("write: {e}"))?;
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).map_err(|e| format!("read: {e}"))?;
    let text = String::from_utf8_lossy(&buf);
    let status: u16 = text.split(' ').nth(1).and_then(|w| w.parse().ok()).ok_or("bad response")?;
    Ok((status, header_value(&text, "x-request-id")))
}

fn http_post(addr: SocketAddr, path: &str, body: &str) -> Result<(u16, String), String> {
    let req = format!(
        "POST {path} HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    s.set_read_timeout(Some(Duration::from_secs(60))).map_err(|e| e.to_string())?;
    s.write_all(req.as_bytes()).map_err(|e| format!("write: {e}"))?;
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).map_err(|e| format!("read: {e}"))?;
    let text = String::from_utf8_lossy(&buf);
    let status: u16 = text.split(' ').nth(1).and_then(|w| w.parse().ok()).ok_or("bad response")?;
    Ok((status, text.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default()))
}

/// Closed-loop like [`run_phase`], but every request targets one tenant
/// (`store`) and rotates through that tenant's own question list.
fn run_tenant_phase(
    addr: SocketAddr,
    clients: usize,
    total: u64,
    timeout_ms: u64,
    tag: &str,
    store: Option<&str>,
    questions: &[String],
) -> PhaseResult {
    let budget = AtomicU64::new(total);
    let merged = Mutex::new(PhaseResult::default());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients.max(1) {
            scope.spawn(|| {
                let mut local = PhaseResult::default();
                loop {
                    let slot = budget.fetch_sub(1, Ordering::Relaxed);
                    if slot == 0 || slot > total {
                        budget.store(0, Ordering::Relaxed);
                        break;
                    }
                    let q = &questions[(slot % questions.len() as u64) as usize];
                    let rid = format!("lg-{tag}-{slot}");
                    let t0 = Instant::now();
                    match send_tenant_answer(addr, q, timeout_ms, &rid, store) {
                        Ok((status, echoed)) => {
                            *local.status_counts.entry(status).or_insert(0) += 1;
                            local.note_echo(status, &rid, echoed);
                            if status == 200 {
                                local.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                            }
                        }
                        Err(_) => local.io_errors += 1,
                    }
                }
                local.merge_into(&mut merged.lock().unwrap());
            });
        }
    });
    let mut result = merged.into_inner().unwrap();
    result.wall = start.elapsed();
    result
}

/// An [`Engine`] whose upserts re-assemble the system around the mutated
/// store without re-reading any source (same recipe the CLI server uses).
fn upsertable_engine(
    initial: GAnswer<'static>,
    rebuild: impl Fn() -> Result<GAnswer<'static>, String> + Send + Sync + 'static,
) -> Engine {
    let dict = initial.dict().clone();
    let config = initial.config.clone();
    let obs = initial.obs().clone();
    Engine::with_assemble(initial, rebuild, move |store| {
        Ok(GAnswer::shared(Arc::new(store), dict.clone(), config.clone(), obs.clone()))
    })
}

/// What the multi-tenant phase saw: per-tenant client tallies plus the
/// registry's own per-store counters and epochs.
struct TenantOutcome {
    cache_capacity: usize,
    scale_triples: usize,
    default_phase: PhaseResult,
    scale_phase: PhaseResult,
    /// Δ(hits + misses + stale) of the tenant's labeled cache series over
    /// the phase. Lookup outcomes are mutually exclusive, so this must
    /// equal the tenant's client-observed 200 count exactly.
    default_lookup_delta: u64,
    scale_lookup_delta: u64,
    default_epoch: u64,
    scale_epoch: u64,
    reload_ms: Vec<f64>,
    upsert_ms: Vec<f64>,
    mutation_errors: u64,
    stats: gqa_server::ServeStats,
}

impl TenantOutcome {
    fn count(phase: &PhaseResult, status: u16) -> u64 {
        phase.status_counts.get(&status).copied().unwrap_or(0)
    }

    /// Every response on this tenant was a 200 and nothing failed at the
    /// socket level — the ISSUE bar for traffic on the *un-mutated*
    /// tenant while the other one is churned, applied to both.
    fn clean(phase: &PhaseResult) -> bool {
        let total: u64 = phase.status_counts.values().sum();
        Self::count(phase, 200) == total && phase.io_errors == 0
    }

    fn default_reconciles(&self) -> bool {
        Self::count(&self.default_phase, 200) == self.default_lookup_delta
    }

    fn scale_reconciles(&self) -> bool {
        Self::count(&self.scale_phase, 200) == self.scale_lookup_delta
    }

    /// reload p50 / upsert p50 — the "incremental ingestion is much
    /// cheaper than a snapshot reload" acceptance ratio.
    fn upsert_speedup(&self) -> f64 {
        let up = median(&self.upsert_ms);
        if up <= 0.0 {
            0.0
        } else {
            median(&self.reload_ms) / up
        }
    }

    fn ok(&self) -> bool {
        Self::clean(&self.default_phase)
            && Self::clean(&self.scale_phase)
            && self.default_reconciles()
            && self.scale_reconciles()
            && self.mutation_errors == 0
            // Churning "scale" must not have touched the default tenant's
            // epoch; every successful mutation must have bumped scale's.
            && self.default_epoch == 1
            && self.scale_epoch == 1 + (self.reload_ms.len() + self.upsert_ms.len()) as u64
            // Measured ~4x at the 1M-triple point (upsert pays only index
            // re-assembly; reload adds read + parse + mine + CSR build).
            // Gate at 1.5x to absorb loaded-machine noise.
            && self.upsert_speedup() > 1.5
            && self.stats.served == self.stats.accepted
    }
}

/// Boot a dedicated in-process *registry* server with two tenants — the
/// curated mini graph as `default` and a synthetic multi-thousand-triple
/// graph as `scale` — then drive both tenants concurrently while a
/// mutator thread churns `scale` with full snapshot reloads and
/// single-triple upserts over the admin API. Reconciles each tenant's
/// client tallies against its own `store="<name>"` metric series and
/// proves the churn never leaked into the default tenant.
fn run_tenants(opts: &Opts) -> TenantOutcome {
    const CACHE: usize = 256;
    const MUTATION_ROUNDS: u64 = 12; // every 4th is a reload, rest upserts
    let obs = Obs::new();
    let config = || GAnswerConfig { concurrency: Concurrency::serial(), ..Default::default() };

    let build_mini = {
        let obs = obs.clone();
        move || {
            let store = mini_dbpedia();
            let dict = mini_dict(&store);
            Ok(GAnswer::shared(Arc::new(store), dict, config(), obs.clone()))
        }
    };
    let mini_engine = upsertable_engine(build_mini().expect("mini build"), build_mini);

    // The scale tenant reloads from a real N-Triples file on disk, so the
    // reload latency below prices what a production snapshot reload costs:
    // re-read + re-parse the source, re-mine the paraphrase dict, and
    // re-assemble every index. The upsert path skips all but the last.
    // ~1M triples: the ISSUE's acceptance point for "upsert « reload".
    let scale_cfg = ScaleQaConfig {
        entities: 50_000,
        edges_per_predicate: 150_000,
        noise_predicates: 10,
        noise_edges: 15_000,
        questions: 12,
        two_hop_fraction: 0.0,
        seed: 11,
    };
    let qa = scale_qa(&scale_cfg);
    let scale_questions: Vec<String> = qa.questions.iter().map(|q| q.text.clone()).collect();
    let scale_triples = qa.store.len();
    let scale_path =
        std::env::temp_dir().join(format!("gqa-loadgen-scale-{}.nt", std::process::id()));
    std::fs::write(&scale_path, gqa_rdf::ntriples::serialize(&qa.store))
        .expect("write scale tenant source");
    let dict = mine(&qa.store, &qa.phrases, &MinerConfig { theta: 2, ..Default::default() });
    let scale_initial = GAnswer::shared(Arc::new(qa.store), dict, config(), obs.clone());
    let build_scale = {
        let obs = obs.clone();
        let phrases = qa.phrases.clone();
        let path = scale_path.clone();
        move || {
            let text = std::fs::read_to_string(&path).map_err(|e| format!("read {path:?}: {e}"))?;
            let store = gqa_rdf::ntriples::parse(&text).map_err(|e| e.to_string())?;
            let dict = mine(&store, &phrases, &MinerConfig { theta: 2, ..Default::default() });
            Ok(GAnswer::shared(Arc::new(store), dict, config(), obs.clone()))
        }
    };
    let scale_engine = upsertable_engine(scale_initial, build_scale);

    let registry =
        Registry::new("default", Arc::new(mini_engine), CACHE, obs.clone()).expect("registry");
    registry.insert("scale", Arc::new(scale_engine)).expect("insert scale tenant");
    let registry = Arc::new(registry);

    // Generous deadline: this phase measures isolation and reconciliation,
    // not shedding — a 504 on either tenant would fail the run.
    let deadline_ms = opts.timeout_ms.max(10_000);
    let server = Server::bind_registry(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServerConfig {
            // Both tenants' client pools plus the mutator must fit without
            // queueing: a mutation waiting behind a 10 ms answer would
            // inflate reload *and* upsert latency by the same constant and
            // wash out their ratio — the thing this phase measures.
            workers: (opts.clients.max(1) * 2 + 1).clamp(3, 12),
            queue_capacity: 16,
            default_timeout_ms: deadline_ms,
            cache_capacity: CACHE,
            ..ServerConfig::default()
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("error: tenant bind: {e}");
        std::process::exit(2);
    });
    let addr = server.local_addr().expect("local_addr");
    let shutdown = server.shutdown_handle();
    let requests = opts.requests.max(40);
    println!(
        "multi-tenant phase: 2 stores (default={} triples, scale={scale_triples}), \
         {} clients x {requests} requests per store, {MUTATION_ROUNDS} mutations on scale ...",
        mini_dbpedia().len(),
        opts.clients,
    );

    let mini_questions: Vec<String> = [
        "Who is the mayor of Berlin?",
        "Is Michelle Obama the wife of Barack Obama?",
        "Who was married to an actor that played in Philadelphia?",
    ]
    .into_iter()
    .map(str::to_owned)
    .collect();

    let mutate = || {
        let (mut reloads, mut upserts, mut errors) = (Vec::new(), Vec::new(), 0u64);
        for round in 0..MUTATION_ROUNDS {
            let t0 = Instant::now();
            let result = if round % 4 == 0 {
                http_post(addr, "/admin/stores/reload", "{\"name\": \"scale\"}")
            } else {
                let delta = format!("<up:s{round}> <up:grew> <up:o{round}> .\n");
                http_post(addr, "/admin/stores/scale/upsert", &delta)
            };
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            match result {
                Ok((200, _)) if round % 4 == 0 => reloads.push(ms),
                Ok((200, _)) => upserts.push(ms),
                _ => errors += 1,
            }
        }
        (reloads, upserts, errors)
    };

    let (default_phase, scale_phase, (reload_ms, upsert_ms, mutation_errors), before, after, stats) =
        std::thread::scope(|scope| {
            let run = scope.spawn(|| server.run());
            let before = http_get(addr, "/metrics").unwrap_or_default();
            let d = scope.spawn(|| {
                run_tenant_phase(
                    addr,
                    opts.clients,
                    requests,
                    deadline_ms,
                    "mt-default",
                    None,
                    &mini_questions,
                )
            });
            let s = scope.spawn(|| {
                run_tenant_phase(
                    addr,
                    opts.clients,
                    requests,
                    deadline_ms,
                    "mt-scale",
                    Some("scale"),
                    &scale_questions,
                )
            });
            let m = scope.spawn(mutate);
            let default_phase = d.join().expect("default tenant clients panicked");
            let scale_phase = s.join().expect("scale tenant clients panicked");
            let mutations = m.join().expect("mutator panicked");
            let after = http_get(addr, "/metrics").unwrap_or_default();
            shutdown.store(true, Ordering::SeqCst);
            let stats = run.join().expect("tenant server thread panicked");
            (default_phase, scale_phase, mutations, before, after, stats)
        });

    let _ = std::fs::remove_file(&scale_path);
    let lookups = |exposition: &str, store: &str| -> f64 {
        ["hits", "misses", "stale"]
            .iter()
            .map(|k| {
                metric_value(
                    exposition,
                    &format!("gqa_server_cache_{k}_total{{store=\"{store}\"}}"),
                )
            })
            .sum()
    };
    let epoch = |name: Option<&str>| registry.get(name).map(|t| t.engine().epoch()).unwrap_or(0);
    TenantOutcome {
        cache_capacity: CACHE,
        scale_triples,
        default_lookup_delta: (lookups(&after, "default") - lookups(&before, "default")) as u64,
        scale_lookup_delta: (lookups(&after, "scale") - lookups(&before, "scale")) as u64,
        default_epoch: epoch(None),
        scale_epoch: epoch(Some("scale")),
        default_phase,
        scale_phase,
        reload_ms,
        upsert_ms,
        mutation_errors,
        stats,
    }
}

/// First integer value after `"key":` in a compact JSON body (the admin
/// endpoints emit no whitespace around separators).
fn json_u64(body: &str, key: &str) -> Option<u64> {
    let pattern = format!("\"{key}\":");
    let at = body.find(&pattern)? + pattern.len();
    let rest = &body[at..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The slice of an `/admin/stores` body describing one named store: the
/// whole JSON object carrying `"name":"<name>"`. Keys serialize sorted, so
/// fields sit on both sides of `"name"`; walk out to the enclosing braces
/// (nested objects on either side are balanced, so depth counting works).
fn store_chunk<'a>(stores: &'a str, name: &str) -> Option<&'a str> {
    let at = stores.find(&format!("\"name\":\"{name}\""))?;
    let bytes = stores.as_bytes();
    let mut depth = 0i32;
    let mut start = None;
    for i in (0..at).rev() {
        match bytes[i] {
            b'}' => depth += 1,
            b'{' if depth == 0 => {
                start = Some(i);
                break;
            }
            b'{' => depth -= 1,
            _ => {}
        }
    }
    let start = start?;
    let mut depth = 0i32;
    for (i, &b) in bytes.iter().enumerate().skip(start) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&stores[start..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// The `ganswer` binary the subprocess phases spawn: `--server-bin`, else
/// a sibling of the loadgen executable, else `ganswer` on PATH.
fn server_binary(opts: &Opts) -> std::path::PathBuf {
    opts.server_bin
        .clone()
        .map(std::path::PathBuf::from)
        .or_else(|| {
            std::env::current_exe().ok().and_then(|p| p.parent().map(|d| d.join("ganswer")))
        })
        .unwrap_or_else(|| std::path::PathBuf::from("ganswer"))
}

/// A `ganswer --serve` subprocess the crash phase can `kill -9`.
struct ServerProc {
    child: std::process::Child,
    addr: SocketAddr,
}

impl ServerProc {
    /// SIGKILL — no drain, no flush; exactly the crash under test.
    fn kill9(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawn `ganswer --serve 127.0.0.1:0 --durable DIR`, parse the bound
/// address from its startup banner, and wait for `/healthz`.
fn spawn_durable_server(
    bin: &std::path::Path,
    dir: &std::path::Path,
    faults: Option<(&str, u64)>,
    threads: Option<u64>,
) -> Result<ServerProc, String> {
    use std::io::BufRead;
    use std::process::{Command, Stdio};
    let mut cmd = Command::new(bin);
    cmd.args(["--serve", "127.0.0.1:0", "--durable"])
        .arg(dir)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if let Some((spec, seed)) = faults {
        cmd.args(["--faults", spec, "--fault-seed", &seed.to_string()]);
    }
    if let Some(n) = threads {
        cmd.args(["--threads", &n.to_string()]);
    }
    let mut child = cmd.spawn().map_err(|e| format!("spawn {}: {e}", bin.display()))?;
    let stdout = child.stdout.take().ok_or("server stdout not piped")?;
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    let addr = loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err("server exited before printing its address".into());
            }
            Ok(_) => {}
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(format!("read server banner: {e}"));
            }
        }
        if let Some(rest) = line.split("http://").nth(1) {
            if let Ok(a) = rest.split_whitespace().next().unwrap_or("").parse::<SocketAddr>() {
                break a;
            }
        }
    };
    // Keep draining stdout so the child can never block on a full pipe.
    std::thread::spawn(move || {
        let mut sink = Vec::new();
        let _ = std::io::Read::read_to_end(&mut reader, &mut sink);
    });
    for _ in 0..200 {
        if http_get(addr, "/healthz").is_ok() {
            return Ok(ServerProc { child, addr });
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = child.kill();
    let _ = child.wait();
    Err("server never became healthy".into())
}

/// One kill-9 round of the crash phase.
struct CrashRound {
    faults: Option<String>,
    kill_after: u64,
    acked: u64,
    failed: u64,
    recovered_epoch: u64,
    max_acked_epoch: u64,
    replayed_records: u64,
    reconciled_noops: u64,
    reconciled_added: u64,
    absent_failed_added: u64,
    ok: bool,
}

/// The manifest leg of the crash phase: a store loaded over HTTP at
/// runtime, killed -9 moments after its upserts were acked. Only the
/// registry manifest remembers the tenant existed, so recovery must bring
/// it back by itself, at (or past) the last acked epoch, and answering.
struct RuntimeLoadRound {
    acked: u64,
    max_acked_epoch: u64,
    recovered_epoch: u64,
    recovered_ready: bool,
    reconciled_noops: u64,
    reconciled_added: u64,
    answer_status: u16,
    ok: bool,
}

/// What the crash phase saw across all rounds.
struct CrashOutcome {
    seed: u64,
    server_bin: String,
    rounds: Vec<CrashRound>,
    runtime: Option<RuntimeLoadRound>,
    total_acked: u64,
    spawn_error: Option<String>,
}

impl CrashOutcome {
    fn ok(&self) -> bool {
        self.spawn_error.is_none()
            && !self.rounds.is_empty()
            && self.rounds.iter().all(|r| r.ok)
            && self.runtime.as_ref().is_some_and(|r| r.ok)
    }
}

/// The durability invariant, end to end: spawn the real server binary with
/// `--durable`, churn single-triple upserts against it, `kill -9` at a
/// seeded point mid-churn, restart over the same directory, and verify
/// that (a) the recovered epoch is at least the last acked epoch, (b)
/// re-upserting every triple ever acked — across all rounds — comes back
/// as pure no-ops (nothing acked was lost), and (c) upserts that *failed*
/// under an armed WAL fault plan are absent after recovery (a failed
/// append is never half-applied). Three rounds; the WAL log and its
/// checkpoint directory persist across rounds, so later rounds also prove
/// replay-over-recovered-state is idempotent.
fn run_crash(seed: u64, opts: &Opts) -> CrashOutcome {
    let bin = server_binary(opts);
    let mut outcome = CrashOutcome {
        seed,
        server_bin: bin.display().to_string(),
        rounds: Vec::new(),
        runtime: None,
        total_acked: 0,
        spawn_error: None,
    };
    if !bin.exists() {
        outcome.spawn_error = Some(format!(
            "{} not found — build the ganswer binary or pass --server-bin",
            bin.display()
        ));
        return outcome;
    }
    let dir = std::env::temp_dir().join(format!("gqa-loadgen-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut rng = seed;
    let mut next_n = 0u64;
    let mut global_acked: Vec<u64> = Vec::new();
    let mut max_acked_epoch = 0u64;
    let fact = |n: u64| format!("<up:c{n}> <up:grew> <up:o{n}> .\n");

    for round in 0..3u64 {
        let fault_spec = (round == 2).then(|| opts.crash_faults.clone());
        let kill_after = 4 + splitmix64(&mut rng) % 12;
        println!(
            "crash round {}: kill -9 after {kill_after} acked upserts{} ...",
            round + 1,
            fault_spec.as_deref().map(|s| format!(", faults \"{s}\"")).unwrap_or_default(),
        );
        let server = match spawn_durable_server(
            &bin,
            &dir,
            fault_spec.as_deref().map(|s| (s, seed ^ round)),
            None,
        ) {
            Ok(s) => s,
            Err(e) => {
                outcome.spawn_error = Some(e);
                break;
            }
        };
        let addr = server.addr;

        // Churn: a closed loop of single-triple upserts; the killer thread
        // SIGKILLs the server the moment the seeded ack count is reached,
        // so the kill lands mid-churn (an in-flight request simply errors
        // — it was never acked, so it carries no durability promise).
        let acked = Mutex::new(Vec::new()); // (n, epoch)
        let failed = Mutex::new(Vec::new()); // n
        let done = AtomicU64::new(0);
        let end_n = std::thread::scope(|scope| {
            let churner = scope.spawn(|| {
                let mut n = next_n;
                loop {
                    if done.load(Ordering::Relaxed) != 0 {
                        break;
                    }
                    match http_post(addr, "/admin/stores/default/upsert", &fact(n)) {
                        Ok((200, body)) => {
                            let epoch = json_u64(&body, "epoch").unwrap_or(0);
                            acked.lock().unwrap().push((n, epoch));
                        }
                        Ok(_) => failed.lock().unwrap().push(n),
                        Err(_) => break, // the kill landed mid-request
                    }
                    n += 1;
                }
                n
            });
            let deadline = Instant::now() + Duration::from_secs(60);
            while (acked.lock().unwrap().len() as u64) < kill_after
                && Instant::now() < deadline
                && !churner.is_finished()
            {
                std::thread::sleep(Duration::from_millis(2));
            }
            server.kill9();
            done.store(1, Ordering::Relaxed);
            churner.join().expect("churn thread panicked")
        });
        next_n = end_n;
        let round_acked = acked.into_inner().unwrap();
        let round_failed = failed.into_inner().unwrap();
        let churn_max_epoch = round_acked.iter().map(|&(_, e)| e).max().unwrap_or(0);
        max_acked_epoch = max_acked_epoch.max(churn_max_epoch);
        global_acked.extend(round_acked.iter().map(|&(n, _)| n));

        // Restart over the same durable directory — recovery replays the
        // WAL — and reconcile, always fault-free (recovery is the part
        // under test here, not the fault plan).
        let verify = match spawn_durable_server(&bin, &dir, None, None) {
            Ok(s) => s,
            Err(e) => {
                outcome.spawn_error = Some(format!("restart after kill: {e}"));
                break;
            }
        };
        let stores = http_get(verify.addr, "/admin/stores").unwrap_or_default();
        let recovered_epoch = json_u64(&stores, "epoch").unwrap_or(0);
        let replayed_records = json_u64(&stores, "replayed_records").unwrap_or(0);
        // Every epoch ever acked — this round's churn and earlier rounds'
        // reconciliation upserts alike — must be at or below the epoch the
        // restarted server recovered to.
        let epoch_floor = max_acked_epoch;

        let body: String = global_acked.iter().map(|&n| fact(n)).collect();
        let (reconciled_noops, reconciled_added) =
            match http_post(verify.addr, "/admin/stores/default/upsert", &body) {
                Ok((200, b)) => {
                    max_acked_epoch = max_acked_epoch.max(json_u64(&b, "epoch").unwrap_or(0));
                    (json_u64(&b, "noops").unwrap_or(0), json_u64(&b, "added").unwrap_or(0))
                }
                _ => (0, u64::MAX),
            };
        // Upserts that failed under the fault plan must NOT have survived:
        // re-sending them now must add every one as a brand-new triple.
        let absent_failed_added = if round_failed.is_empty() {
            0
        } else {
            let body: String = round_failed.iter().map(|&n| fact(n)).collect();
            match http_post(verify.addr, "/admin/stores/default/upsert", &body) {
                Ok((200, b)) => {
                    max_acked_epoch = max_acked_epoch.max(json_u64(&b, "epoch").unwrap_or(0));
                    json_u64(&b, "added").unwrap_or(0)
                }
                _ => u64::MAX,
            }
        };
        // Those formerly-failed triples are acked now — fold them into the
        // global set so later rounds demand they survive too.
        global_acked.extend(round_failed.iter().copied());
        verify.kill9();

        let ok = recovered_epoch >= epoch_floor
            && replayed_records >= round_acked.len() as u64
            && reconciled_noops == (global_acked.len() - round_failed.len()) as u64
            && reconciled_added == 0
            && absent_failed_added == round_failed.len() as u64;
        println!(
            "crash round {}: {} acked, {} failed, recovered epoch {recovered_epoch} \
             (max acked {epoch_floor}), {replayed_records} replayed, \
             reconciled {reconciled_noops} noops / {reconciled_added} added — ok: {ok}",
            round + 1,
            round_acked.len(),
            round_failed.len(),
        );
        outcome.total_acked += round_acked.len() as u64;
        outcome.rounds.push(CrashRound {
            faults: fault_spec,
            kill_after,
            acked: round_acked.len() as u64,
            failed: round_failed.len() as u64,
            recovered_epoch,
            max_acked_epoch: epoch_floor,
            replayed_records,
            reconciled_noops,
            reconciled_added,
            absent_failed_added,
            ok,
        });
    }
    if outcome.spawn_error.is_none() {
        match run_runtime_load(&bin, &dir) {
            Ok(round) => {
                outcome.total_acked += round.acked;
                outcome.runtime = Some(round);
            }
            Err(e) => outcome.spawn_error = Some(e),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    outcome
}

/// The crash phase's runtime-load round: load a store over
/// `/admin/stores/load`, ack a handful of upserts to it, `kill -9`
/// immediately, restart over the same durable directory, and require the
/// tenant to come back — listed ready, at or past the last acked epoch,
/// with every acked triple still present and the store answering. Without
/// the registry manifest this fails outright: nothing else records that
/// the tenant was ever loaded.
fn run_runtime_load(
    bin: &std::path::Path,
    dir: &std::path::Path,
) -> Result<RuntimeLoadRound, String> {
    const UPSERTS: u64 = 6;
    let fact = |n: u64| format!("<rt:c{n}> <rt:grew> <rt:o{n}> .\n");
    println!("crash runtime-load round: load \"runtime\" over HTTP, kill -9 after {UPSERTS} acked upserts ...");
    let server = spawn_durable_server(bin, dir, None, None)?;
    let addr = server.addr;
    match http_post(addr, "/admin/stores/load", "{\"name\": \"runtime\", \"source\": \"mini\"}") {
        Ok((200, _)) => {}
        Ok((status, body)) => {
            server.kill9();
            return Err(format!("/admin/stores/load -> {status}: {body}"));
        }
        Err(e) => {
            server.kill9();
            return Err(format!("/admin/stores/load: {e}"));
        }
    }
    let (mut acked, mut max_acked_epoch) = (0u64, 0u64);
    for n in 0..UPSERTS {
        if let Ok((200, body)) = http_post(addr, "/admin/stores/runtime/upsert", &fact(n)) {
            acked += 1;
            max_acked_epoch = max_acked_epoch.max(json_u64(&body, "epoch").unwrap_or(0));
        }
    }
    // The crash under test: no drain, no flush, no unload — the manifest
    // write happened inside the load call or not at all.
    server.kill9();

    let verify = spawn_durable_server(bin, dir, None, None)
        .map_err(|e| format!("restart after runtime-load kill: {e}"))?;
    let stores = http_get(verify.addr, "/admin/stores").unwrap_or_default();
    let chunk = store_chunk(&stores, "runtime").unwrap_or("");
    let recovered_epoch = json_u64(chunk, "epoch").unwrap_or(0);
    let recovered_ready = chunk.contains("\"state\":\"ready\"");
    let body: String = (0..UPSERTS).map(fact).collect();
    let (reconciled_noops, reconciled_added) =
        match http_post(verify.addr, "/admin/stores/runtime/upsert", &body) {
            Ok((200, b)) => {
                (json_u64(&b, "noops").unwrap_or(0), json_u64(&b, "added").unwrap_or(u64::MAX))
            }
            _ => (0, u64::MAX),
        };
    let answer_status = http_post(
        verify.addr,
        "/answer",
        "{\"question\": \"Who is the mayor of Berlin?\", \"k\": 3, \"timeout_ms\": 2000, \
         \"store\": \"runtime\"}",
    )
    .map_or(0, |(status, _)| status);
    verify.kill9();

    let ok = acked == UPSERTS
        && recovered_ready
        && recovered_epoch >= max_acked_epoch
        && reconciled_noops == UPSERTS
        && reconciled_added == 0
        && answer_status == 200;
    println!(
        "crash runtime-load round: {acked} acked, recovered epoch {recovered_epoch} \
         (max acked {max_acked_epoch}), ready {recovered_ready}, reconciled \
         {reconciled_noops} noops / {reconciled_added} added, answer {answer_status} — ok: {ok}"
    );
    Ok(RuntimeLoadRound {
        acked,
        max_acked_epoch,
        recovered_epoch,
        recovered_ready,
        reconciled_noops,
        reconciled_added,
        answer_status,
        ok,
    })
}

/// What the group-commit phase measured.
struct GroupCommitOutcome {
    seed: u64,
    writers: u64,
    per_writer: u64,
    fsync_latency_ms: u64,
    acked: u64,
    failed: u64,
    syncs: u64,
    commits: u64,
    max_batch: u64,
    metrics_exported: bool,
    spawn_error: Option<String>,
}

impl GroupCommitOutcome {
    fn ok(&self) -> bool {
        self.spawn_error.is_none()
            && self.failed == 0
            && self.acked == self.writers * self.per_writer
            && self.commits == self.acked
            && self.syncs > 0
            && self.syncs < self.acked
            && self.max_batch > 1
            && self.metrics_exported
    }
}

/// The group-commit property, end to end: boot the real server binary
/// with `--durable` and a seeded fsync latency (tmpfs syncs too fast to
/// contend on their own), hammer the default store's upsert route from
/// concurrent writers, and require the WAL to have amortized its fsyncs —
/// every ack is exactly one commit, but the `sync_data` count must come
/// in strictly below the ack count, with at least one multi-record batch.
fn run_group_commit(seed: u64, opts: &Opts) -> GroupCommitOutcome {
    const WRITERS: u64 = 8;
    const PER_WRITER: u64 = 40;
    const FSYNC_LATENCY_MS: u64 = 2;
    let bin = server_binary(opts);
    let mut outcome = GroupCommitOutcome {
        seed,
        writers: WRITERS,
        per_writer: PER_WRITER,
        fsync_latency_ms: FSYNC_LATENCY_MS,
        acked: 0,
        failed: 0,
        syncs: 0,
        commits: 0,
        max_batch: 0,
        metrics_exported: false,
        spawn_error: None,
    };
    if !bin.exists() {
        outcome.spawn_error = Some(format!(
            "{} not found — build the ganswer binary or pass --server-bin",
            bin.display()
        ));
        return outcome;
    }
    let dir = std::env::temp_dir().join(format!("gqa-loadgen-group-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let plan = format!("wal.fsync:latency:1.0:{FSYNC_LATENCY_MS}");
    println!(
        "group-commit phase: {WRITERS} writers x {PER_WRITER} upserts, \
         fsync +{FSYNC_LATENCY_MS} ms (\"{plan}\") ..."
    );
    let server = match spawn_durable_server(&bin, &dir, Some((&plan, seed)), Some(WRITERS)) {
        Ok(s) => s,
        Err(e) => {
            outcome.spawn_error = Some(e);
            let _ = std::fs::remove_dir_all(&dir);
            return outcome;
        }
    };
    let addr = server.addr;
    (outcome.acked, outcome.failed) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                scope.spawn(move || {
                    let (mut acked, mut failed) = (0u64, 0u64);
                    for i in 0..PER_WRITER {
                        let n = w * PER_WRITER + i;
                        let fact = format!("<gc:s{n}> <gc:p> <gc:o{n}> .\n");
                        match http_post(addr, "/admin/stores/default/upsert", &fact) {
                            Ok((200, _)) => acked += 1,
                            _ => failed += 1,
                        }
                    }
                    (acked, failed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("writer thread panicked"))
            .fold((0, 0), |(a, f), (x, y)| (a + x, f + y))
    });
    let stores = http_get(addr, "/admin/stores").unwrap_or_default();
    if let Some(chunk) = store_chunk(&stores, "default") {
        outcome.syncs = json_u64(chunk, "group_syncs").unwrap_or(0);
        outcome.commits = json_u64(chunk, "group_commits").unwrap_or(0);
        outcome.max_batch = json_u64(chunk, "group_max_batch").unwrap_or(0);
    }
    // The same numbers must be visible to scrapers (the CI smoke job greps
    // these series), so require the exposition to carry them too.
    let metrics = http_get(addr, "/metrics").unwrap_or_default();
    outcome.metrics_exported = metrics.contains("gqa_wal_group_syncs_total")
        && metrics.contains("gqa_wal_group_commits_total")
        && metrics.contains("gqa_wal_group_max_batch");
    server.kill9();
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "group-commit: {} acked / {} failed, {} fsyncs over {} commits \
         (max batch {}), exported {} — ok: {}",
        outcome.acked,
        outcome.failed,
        outcome.syncs,
        outcome.commits,
        outcome.max_batch,
        outcome.metrics_exported,
        outcome.ok(),
    );
    outcome
}

/// Everything measured while the server was up.
struct Report {
    addr: SocketAddr,
    in_process: bool,
    before: String,
    after: String,
    steady: PhaseResult,
    overload: Option<PhaseResult>,
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let host_threads = std::thread::available_parallelism().map_or(1, usize::from);

    // In-process server unless --addr points elsewhere.
    if let Some(a) = opts.addr.clone() {
        if opts.chaos.is_some() {
            eprintln!("error: --chaos needs the in-process server (drop --addr)");
            std::process::exit(2);
        }
        if opts.cache > 0 {
            eprintln!("error: --cache needs the in-process server (drop --addr)");
            std::process::exit(2);
        }
        let addr: SocketAddr = a.parse().unwrap_or_else(|e| {
            eprintln!("error: bad --addr {a:?}: {e}");
            std::process::exit(2);
        });
        let report = drive(addr, false, &opts, host_threads);
        let crash = opts.crash.map(|seed| run_crash(seed, &opts));
        let group = opts.group_commit.map(|seed| run_group_commit(seed, &opts));
        finish(report, None, &opts, host_threads, None, None, None, crash, group);
    } else {
        let store = mini_dbpedia();
        let workers = threads_arg()
            .or_else(|| std::env::var("GQA_THREADS").ok().and_then(|v| v.parse().ok()))
            .unwrap_or(host_threads);
        let system = GAnswer::with_obs(
            &store,
            mini_dict(&store),
            GAnswerConfig { concurrency: Concurrency::serial(), ..Default::default() },
            Obs::new(),
        );
        let server = Server::bind(
            "127.0.0.1:0",
            &system,
            ServerConfig {
                workers,
                queue_capacity: opts.queue,
                default_timeout_ms: opts.timeout_ms,
                ..ServerConfig::default()
            },
        )
        .unwrap_or_else(|e| {
            eprintln!("error: bind: {e}");
            std::process::exit(2);
        });
        let addr = server.local_addr().expect("local_addr");
        let shutdown = server.shutdown_handle();
        let (report, stats) = std::thread::scope(|scope| {
            let run = scope.spawn(|| server.run());
            let report = drive(addr, true, &opts, host_threads);
            // The loadgen equivalent of SIGTERM: flip the flag, drain, join.
            shutdown.store(true, Ordering::SeqCst);
            (report, run.join().expect("server thread panicked"))
        });
        let cache = (opts.cache > 0).then(|| run_cache(&store, opts.cache, &opts));
        let chaos = opts.chaos.map(|seed| run_chaos(&store, seed, &opts));
        let tenants = opts.tenants.then(|| run_tenants(&opts));
        let crash = opts.crash.map(|seed| run_crash(seed, &opts));
        let group = opts.group_commit.map(|seed| run_group_commit(seed, &opts));
        finish(report, Some(stats), &opts, host_threads, chaos, cache, tenants, crash, group);
    }
}

/// Run the phases against a live server and collect metric snapshots.
fn drive(addr: SocketAddr, in_process: bool, opts: &Opts, host_threads: usize) -> Report {
    // Snapshot server counters before the run.
    let before = http_get(addr, "/metrics").unwrap_or_else(|e| {
        eprintln!("error: cannot scrape /metrics at {addr}: {e}");
        std::process::exit(1);
    });
    let server_workers = metric_value(&before, "gqa_server_worker_threads") as u64;
    let queue_capacity = metric_value(&before, "gqa_server_queue_capacity") as u64;

    println!(
        "loadgen: target {addr} ({}), server workers={server_workers}, queue={queue_capacity}, host threads={host_threads}",
        if in_process { "in-process" } else { "external" },
    );

    // Phase 1: steady state.
    println!(
        "steady phase: {} clients x {} requests, timeout {} ms ...",
        opts.clients, opts.requests, opts.timeout_ms
    );
    let steady = run_phase(addr, opts.clients, opts.requests, opts.timeout_ms, "steady");

    // Phase 2: overload — only meaningful when we know the queue is small
    // relative to the client count (always true in-process).
    let overload = if in_process || opts.overload_clients > 0 {
        println!(
            "overload phase: {} clients x {} requests ...",
            opts.overload_clients, opts.overload_requests
        );
        Some(run_phase(
            addr,
            opts.overload_clients,
            opts.overload_requests,
            opts.timeout_ms,
            "over",
        ))
    } else {
        None
    };

    let after = http_get(addr, "/metrics").unwrap_or_default();
    Report { addr, in_process, before, after, steady, overload }
}

/// Check metrics agreement, write the artifact, print the summary, and set
/// the exit status (the CI smoke job depends on it).
#[allow(clippy::too_many_arguments)]
fn finish(
    report: Report,
    server_stats: Option<gqa_server::ServeStats>,
    opts: &Opts,
    host_threads: usize,
    chaos: Option<ChaosOutcome>,
    cache: Option<CacheOutcome>,
    tenants: Option<TenantOutcome>,
    crash: Option<CrashOutcome>,
    group: Option<GroupCommitOutcome>,
) {
    let Report { addr, in_process, before, after, steady, overload } = report;
    let server_workers = metric_value(&before, "gqa_server_worker_threads") as u64;
    let queue_capacity = metric_value(&before, "gqa_server_queue_capacity") as u64;

    // Agreement between what the clients saw and the server's counters.
    let delta = |series: &str| metric_value(&after, series) - metric_value(&before, series);
    let answered_delta = delta("gqa_server_requests_total{endpoint=\"answer\"}");
    let shed_delta = delta("gqa_server_shed_total");
    let timeout_delta = delta("gqa_server_timeouts_total");

    let count = |status: u16| -> u64 {
        steady.status_counts.get(&status).copied().unwrap_or(0)
            + overload.as_ref().and_then(|o| o.status_counts.get(&status).copied()).unwrap_or(0)
    };
    let client_answered = count(200) + count(400) + count(504);
    let client_shed = count(503);
    let client_timeouts = count(504);
    let requests_agree = answered_delta as u64 == client_answered;
    let shed_agree = shed_delta as u64 == client_shed;
    let timeouts_agree = timeout_delta as u64 == client_timeouts;

    // The in-process server's final drain stats, when we ran one.
    let server_stats_json = if let Some(stats) = server_stats {
        format!(
            ",\n  \"server_stats\": {{\"accepted\": {}, \"served\": {}, \"shed\": {}, \"timeouts\": {}}}",
            stats.accepted, stats.served, stats.shed, stats.timeouts
        )
    } else {
        String::new()
    };

    let mut phases = vec![phase_json("steady", opts.clients, &steady, opts.timeout_ms)];
    if let Some(o) = &overload {
        phases.push(phase_json("overload", opts.overload_clients, o, opts.timeout_ms));
    }

    let cache_json = if let Some(c) = &cache {
        let statuses: Vec<String> =
            c.phase.status_counts.iter().map(|(s, n)| format!("\"{s}\": {n}")).collect();
        let p50 = median(&c.phase.latencies_ms);
        let p95 = percentile(&c.phase.latencies_ms, 95.0);
        format!(
            ",\n  \"cache\": {{\n\
             \x20   \"enabled\": true,\n\
             \x20   \"capacity\": {},\n\
             \x20   \"status_counts\": {{{}}},\n\
             \x20   \"io_errors\": {},\n\
             \x20   \"hits\": {},\n\
             \x20   \"misses\": {},\n\
             \x20   \"stale\": {},\n\
             \x20   \"hit_rate\": {:.4},\n\
             \x20   \"hit_rate_ok\": {},\n\
             \x20   \"latency_ms\": {{\"p50\": {p50:.3}, \"p95\": {p95:.3}, \"n\": {}}},\n\
             \x20   \"p50_delta_vs_steady_ms\": {:.3},\n\
             \x20   \"p95_delta_vs_steady_ms\": {:.3}\n\
             \x20 }}",
            c.capacity,
            statuses.join(", "),
            c.phase.io_errors,
            c.hits,
            c.misses,
            c.stale,
            c.hit_rate(),
            c.hit_rate_ok(),
            c.phase.latencies_ms.len(),
            p50 - median(&steady.latencies_ms),
            p95 - percentile(&steady.latencies_ms, 95.0),
        )
    } else {
        ",\n  \"cache\": {\"enabled\": false}".to_owned()
    };

    let tenants_json = if let Some(t) = &tenants {
        let tenant_block = |phase: &PhaseResult,
                            epoch: u64,
                            lookup_delta: u64,
                            reconciles: bool| {
            let statuses: Vec<String> =
                phase.status_counts.iter().map(|(s, n)| format!("\"{s}\": {n}")).collect();
            format!(
                "{{\"status_counts\": {{{}}}, \"io_errors\": {}, \
                 \"latency_ms\": {{\"p50\": {:.3}, \"p95\": {:.3}, \"n\": {}}}, \
                 \"epoch_after\": {epoch}, \
                 \"cache_lookups\": {{\"client_200\": {}, \"server_delta\": {lookup_delta}, \"agree\": {reconciles}}}}}",
                statuses.join(", "),
                phase.io_errors,
                median(&phase.latencies_ms),
                percentile(&phase.latencies_ms, 95.0),
                phase.latencies_ms.len(),
                TenantOutcome::count(phase, 200),
            )
        };
        format!(
            ",\n  \"multi_tenant\": {{\n\
             \x20   \"enabled\": true,\n\
             \x20   \"cache_capacity\": {},\n\
             \x20   \"scale_store_triples\": {},\n\
             \x20   \"default\": {},\n\
             \x20   \"scale\": {},\n\
             \x20   \"mutations\": {{\"reloads\": {}, \"upserts\": {}, \"errors\": {}, \
             \"reload_ms\": {{\"p50\": {:.3}, \"max\": {:.3}}}, \
             \"upsert_ms\": {{\"p50\": {:.3}, \"max\": {:.3}}}, \
             \"upsert_speedup_x\": {:.1}}},\n\
             \x20   \"default_tenant_unaffected\": {},\n\
             \x20   \"server_stats\": {{\"accepted\": {}, \"served\": {}}},\n\
             \x20   \"ok\": {}\n\
             \x20 }}",
            t.cache_capacity,
            t.scale_triples,
            tenant_block(
                &t.default_phase,
                t.default_epoch,
                t.default_lookup_delta,
                t.default_reconciles()
            ),
            tenant_block(&t.scale_phase, t.scale_epoch, t.scale_lookup_delta, t.scale_reconciles()),
            t.reload_ms.len(),
            t.upsert_ms.len(),
            t.mutation_errors,
            median(&t.reload_ms),
            t.reload_ms.iter().copied().fold(0.0f64, f64::max),
            median(&t.upsert_ms),
            t.upsert_ms.iter().copied().fold(0.0f64, f64::max),
            t.upsert_speedup(),
            TenantOutcome::clean(&t.default_phase) && t.default_epoch == 1,
            t.stats.accepted,
            t.stats.served,
            t.ok(),
        )
    } else {
        ",\n  \"multi_tenant\": {\"enabled\": false}".to_owned()
    };

    let crash_json = if let Some(c) = &crash {
        let rounds: Vec<String> = c
            .rounds
            .iter()
            .enumerate()
            .map(|(i, r)| {
                format!(
                    "{{\"round\": {}, \"faults\": {}, \"kill_after_acks\": {}, \
                     \"acked\": {}, \"failed\": {}, \"recovered_epoch\": {}, \
                     \"max_acked_epoch\": {}, \"replayed_records\": {}, \
                     \"reconciled_noops\": {}, \"reconciled_added\": {}, \
                     \"absent_failed_added\": {}, \"ok\": {}}}",
                    i + 1,
                    r.faults.as_deref().map_or("null".to_owned(), |s| format!("\"{s}\"")),
                    r.kill_after,
                    r.acked,
                    r.failed,
                    r.recovered_epoch,
                    r.max_acked_epoch,
                    r.replayed_records,
                    r.reconciled_noops,
                    r.reconciled_added,
                    r.absent_failed_added,
                    r.ok,
                )
            })
            .collect();
        let runtime = c.runtime.as_ref().map_or("null".to_owned(), |r| {
            format!(
                "{{\"acked\": {}, \"max_acked_epoch\": {}, \"recovered_epoch\": {}, \
                 \"recovered_ready\": {}, \"reconciled_noops\": {}, \
                 \"reconciled_added\": {}, \"answer_status\": {}, \"ok\": {}}}",
                r.acked,
                r.max_acked_epoch,
                r.recovered_epoch,
                r.recovered_ready,
                r.reconciled_noops,
                r.reconciled_added,
                r.answer_status,
                r.ok,
            )
        });
        format!(
            ",\n  \"crash\": {{\n\
             \x20   \"enabled\": true,\n\
             \x20   \"seed\": {},\n\
             \x20   \"server_bin\": \"{}\",\n\
             \x20   \"spawn_error\": {},\n\
             \x20   \"total_acked\": {},\n\
             \x20   \"rounds\": [{}],\n\
             \x20   \"runtime_load\": {runtime},\n\
             \x20   \"ok\": {}\n\
             \x20 }}",
            c.seed,
            c.server_bin,
            c.spawn_error.as_deref().map_or("null".to_owned(), |e| format!("\"{e}\"")),
            c.total_acked,
            rounds.join(", "),
            c.ok(),
        )
    } else {
        ",\n  \"crash\": {\"enabled\": false}".to_owned()
    };

    let group_json = if let Some(g) = &group {
        format!(
            ",\n  \"group_commit\": {{\n\
             \x20   \"enabled\": true,\n\
             \x20   \"seed\": {},\n\
             \x20   \"writers\": {},\n\
             \x20   \"per_writer\": {},\n\
             \x20   \"fsync_latency_ms\": {},\n\
             \x20   \"spawn_error\": {},\n\
             \x20   \"acked\": {},\n\
             \x20   \"failed\": {},\n\
             \x20   \"fsyncs\": {},\n\
             \x20   \"commits\": {},\n\
             \x20   \"max_batch\": {},\n\
             \x20   \"metrics_exported\": {},\n\
             \x20   \"ok\": {}\n\
             \x20 }}",
            g.seed,
            g.writers,
            g.per_writer,
            g.fsync_latency_ms,
            g.spawn_error.as_deref().map_or("null".to_owned(), |e| format!("\"{e}\"")),
            g.acked,
            g.failed,
            g.syncs,
            g.commits,
            g.max_batch,
            g.metrics_exported,
            g.ok(),
        )
    } else {
        ",\n  \"group_commit\": {\"enabled\": false}".to_owned()
    };

    let chaos_json = if let Some(c) = &chaos {
        let client_500 = c.phase.status_counts.get(&500).copied().unwrap_or(0);
        let statuses: Vec<String> =
            c.phase.status_counts.iter().map(|(s, n)| format!("\"{s}\": {n}")).collect();
        format!(
            ",\n  \"chaos\": {{\n\
             \x20   \"seed\": {},\n\
             \x20   \"plan\": \"{FAULT_SITE_WORKER}:panic:0.05\",\n\
             \x20   \"status_counts\": {{{}}},\n\
             \x20   \"io_errors\": {},\n\
             \x20   \"injected_panics\": {},\n\
             \x20   \"client_500s\": {client_500},\n\
             \x20   \"worker_panics_metric\": {},\n\
             \x20   \"degraded_responses\": {},\n\
             \x20   \"degraded_metric\": {},\n\
             \x20   \"cache_capacity\": {},\n\
             \x20   \"cache_hits\": {},\n\
             \x20   \"server_stats\": {{\"accepted\": {}, \"served\": {}}},\n\
             \x20   \"agree\": {}\n\
             \x20 }}",
            c.seed,
            statuses.join(", "),
            c.phase.io_errors,
            c.injected,
            c.panics_metric,
            c.degraded_responses,
            c.degraded_metric,
            c.cache_capacity,
            c.cache_hits,
            c.stats.accepted,
            c.stats.served,
            c.agree(),
        )
    } else {
        String::new()
    };

    let json = format!(
        "{{\n\
         \x20 \"bench\": \"server\",\n\
         \x20 \"host_threads\": {host_threads},\n\
         \x20 \"server\": {{\"addr\": \"{addr}\", \"in_process\": {in_process}, \"worker_threads\": {server_workers}, \"queue_capacity\": {queue_capacity}, \"timeout_ms\": {}}},\n\
         \x20 \"phases\": {{\n{}\n  }},\n\
         \x20 \"metrics_agreement\": {{\n\
         \x20   \"answer_requests\": {{\"client\": {client_answered}, \"server_delta\": {answered_delta:.0}, \"agree\": {requests_agree}}},\n\
         \x20   \"shed\": {{\"client\": {client_shed}, \"server_delta\": {shed_delta:.0}, \"agree\": {shed_agree}}},\n\
         \x20   \"timeouts\": {{\"client\": {client_timeouts}, \"server_delta\": {timeout_delta:.0}, \"agree\": {timeouts_agree}}}\n\
         \x20 }}{server_stats_json}{cache_json}{tenants_json}{chaos_json}{crash_json}{group_json}\n\
         }}\n",
        opts.timeout_ms,
        phases.join(",\n"),
    );
    write_bench_artifact(&opts.out, &json);

    // Human summary + exit status for the CI smoke job.
    let shed_total = count(503);
    println!(
        "\nsteady:   qps {:.1}, p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms over {} ok",
        steady.status_counts.values().sum::<u64>() as f64 / steady.wall.as_secs_f64(),
        median(&steady.latencies_ms),
        percentile(&steady.latencies_ms, 95.0),
        percentile(&steady.latencies_ms, 99.0),
        steady.latencies_ms.len()
    );
    if let Some(o) = &overload {
        println!(
            "overload: qps {:.1}, p95 {:.1} ms, {} ok / {} shed / {} timeout",
            o.status_counts.values().sum::<u64>() as f64 / o.wall.as_secs_f64(),
            percentile(&o.latencies_ms, 95.0),
            o.status_counts.get(&200).copied().unwrap_or(0),
            o.status_counts.get(&503).copied().unwrap_or(0),
            o.status_counts.get(&504).copied().unwrap_or(0),
        );
    }
    println!(
        "metrics agreement: answer {requests_agree}, shed {shed_agree} ({shed_total} shed), timeouts {timeouts_agree}"
    );
    if let Some(c) = &cache {
        println!(
            "cache:    capacity {}, {} hits / {} misses / {} stale (rate {:.1}%), \
             p50 {:.1} ms vs steady {:.1} ms — hit rate ok: {}",
            c.capacity,
            c.hits,
            c.misses,
            c.stale,
            c.hit_rate() * 100.0,
            median(&c.phase.latencies_ms),
            median(&steady.latencies_ms),
            c.hit_rate_ok(),
        );
    }
    if let Some(t) = &tenants {
        println!(
            "tenants:  default {}/{} ok @ epoch {}, scale {}/{} ok @ epoch {} \
             ({} reloads, {} upserts); upsert p50 {:.1} ms vs reload p50 {:.1} ms \
             ({:.0}x) — ok: {}",
            TenantOutcome::count(&t.default_phase, 200),
            t.default_phase.status_counts.values().sum::<u64>(),
            t.default_epoch,
            TenantOutcome::count(&t.scale_phase, 200),
            t.scale_phase.status_counts.values().sum::<u64>(),
            t.scale_epoch,
            t.reload_ms.len(),
            t.upsert_ms.len(),
            median(&t.upsert_ms),
            median(&t.reload_ms),
            t.upsert_speedup(),
            t.ok(),
        );
    }
    if let Some(c) = &chaos {
        let client_500 = c.phase.status_counts.get(&500).copied().unwrap_or(0);
        println!(
            "chaos:    seed {}, {} injected panics -> {client_500} client 500s \
             (metric {}), {} degraded (metric {}), drain {}/{} — agree: {}",
            c.seed,
            c.injected,
            c.panics_metric,
            c.degraded_responses,
            c.degraded_metric,
            c.stats.served,
            c.stats.accepted,
            c.agree(),
        );
    }
    if let Some(c) = &crash {
        if let Some(e) = &c.spawn_error {
            println!("crash:    seed {}, spawn error: {e}", c.seed);
        } else {
            println!(
                "crash:    seed {}, {} rounds, {} acked upserts total, every ack \
                 answerable after kill -9 + recovery: {}",
                c.seed,
                c.rounds.len(),
                c.total_acked,
                c.ok(),
            );
            if let Some(r) = &c.runtime {
                println!(
                    "          runtime-load: {} acked, tenant back from the manifest at \
                     epoch {} (>= acked {}), answering: {}",
                    r.acked, r.recovered_epoch, r.max_acked_epoch, r.ok,
                );
            }
        }
    }
    if let Some(g) = &group {
        if let Some(e) = &g.spawn_error {
            println!("group:    seed {}, spawn error: {e}", g.seed);
        } else {
            println!(
                "group:    seed {}, {} writers, {} acked upserts over {} fsyncs \
                 (max batch {}) — ok: {}",
                g.seed,
                g.writers,
                g.acked,
                g.syncs,
                g.max_batch,
                g.ok(),
            );
        }
    }
    let chaos_agree = chaos.as_ref().is_none_or(ChaosOutcome::agree);
    let cache_ok = cache.as_ref().is_none_or(|c| c.hit_rate_ok() && c.phase.io_errors == 0);
    let tenants_ok = tenants.as_ref().is_none_or(TenantOutcome::ok);
    let crash_ok = crash.as_ref().is_none_or(CrashOutcome::ok);
    let group_ok = group.as_ref().is_none_or(GroupCommitOutcome::ok);
    // Every response across every phase must have echoed the client's
    // X-Request-Id — a single missing or mangled echo fails the run.
    let ids_missing = steady.missing_ids
        + overload.as_ref().map_or(0, |o| o.missing_ids)
        + cache.as_ref().map_or(0, |c| c.phase.missing_ids)
        + chaos.as_ref().map_or(0, |c| c.phase.missing_ids)
        + tenants.as_ref().map_or(0, |t| t.default_phase.missing_ids + t.scale_phase.missing_ids);
    println!(
        "request ids: {}",
        if ids_missing == 0 {
            "every response echoed X-Request-Id".to_owned()
        } else {
            format!("{ids_missing} responses missing X-Request-Id")
        }
    );
    if !(requests_agree
        && shed_agree
        && timeouts_agree
        && chaos_agree
        && cache_ok
        && tenants_ok
        && crash_ok
        && group_ok)
        || ids_missing > 0
    {
        eprintln!(
            "error: client tallies and /metrics deltas disagree, a response lost its \
             X-Request-Id, the cache hit rate fell below 90%, the multi-tenant \
             phase failed isolation/reconciliation, the crash-recovery phase \
             lost an acked upsert or a runtime-loaded tenant, or the group-commit \
             phase did not amortize fsyncs below the ack count"
        );
        std::process::exit(1);
    }
}
