//! Ablations of the design choices DESIGN.md §6 calls out, measured on the
//! full benchmark:
//!
//! 1. predicate **paths** (len ≤ 4) vs single predicates only — the paper's
//!    §7 third contribution ("uncle of" questions need paths);
//! 2. **implicit wildcard edges** on/off — the bare-NP fallback;
//! 3. heuristic **argument rules** on/off (also in `exp4`, repeated here
//!    for the full grid);
//! 4. **neighborhood pruning** on/off — answers must not change, only work;
//! 5. the **aggregation extension** on/off.

use gqa_bench::{print_table, score, store, SystemOutput};
use gqa_core::arguments::ArgumentRules;
use gqa_core::pipeline::{GAnswer, GAnswerConfig};
use gqa_datagen::patty::mini_dict;
use gqa_datagen::qald::benchmark;
use gqa_paraphrase::ParaphraseDict;

fn run(sys: &GAnswer<'_>) -> (usize, usize) {
    let mut right = 0usize;
    let mut partial = 0usize;
    for q in &benchmark() {
        let s = score(q, &SystemOutput::from_response(&sys.answer(q.text)));
        if s.right {
            right += 1;
        } else if s.partial {
            partial += 1;
        }
    }
    (right, partial)
}

fn single_predicate_dict(store: &gqa_rdf::Store) -> ParaphraseDict {
    let mut dict = mini_dict(store);
    dict.retain_mappings(|m| m.path.len() == 1);
    dict
}

fn main() {
    let st = store();
    let mut rows = Vec::new();

    let configs: Vec<(&str, GAnswerConfig, ParaphraseDict)> = vec![
        ("full system (paper defaults)", GAnswerConfig::default(), mini_dict(&st)),
        ("single predicates only (no paths)", GAnswerConfig::default(), single_predicate_dict(&st)),
        (
            "no implicit edges",
            GAnswerConfig { implicit_edges: false, ..Default::default() },
            mini_dict(&st),
        ),
        (
            "no argument rules 1-4",
            GAnswerConfig { rules: ArgumentRules::none(), ..Default::default() },
            mini_dict(&st),
        ),
        (
            "no neighborhood pruning",
            GAnswerConfig { neighborhood_pruning: false, ..Default::default() },
            mini_dict(&st),
        ),
        (
            "aggregation extension on",
            GAnswerConfig { enable_aggregates: true, ..Default::default() },
            mini_dict(&st),
        ),
    ];

    for (name, cfg, dict) in configs {
        let sys = GAnswer::new(&st, dict, cfg);
        let (right, partial) = run(&sys);
        rows.push(vec![name.to_owned(), right.to_string(), partial.to_string()]);
    }

    print_table(
        "Design-choice ablations on the 99-question benchmark",
        &["configuration", "right", "partial"],
        &rows,
    );
    println!(
        "\nexpected shape: paths > single-predicate (uncle/come-from questions need them);\n\
         implicit edges recover bare-NP questions; rules 1-4 as in Table 9;\n\
         pruning changes work, not answers; aggregation extension adds the Table-10 bucket."
    );
}
