//! Exp 4 / Table 9 — ablation of the §4.1.2 heuristic argument rules.
//!
//! Two configurations are compared on the full benchmark: all four rules
//! on (default) vs all off. Reported, as in Table 9: how many questions
//! get both arguments of every detected relation (proxy: at least one
//! complete semantic relation extracted where the dictionary matched), and
//! how many questions are answered exactly right end to end.

use gqa_bench::{print_table, score, store, SystemOutput};
use gqa_core::arguments::ArgumentRules;
use gqa_core::pipeline::{GAnswer, GAnswerConfig};
use gqa_datagen::patty::mini_dict;
use gqa_datagen::qald::benchmark;

fn run(rules: ArgumentRules) -> (usize, usize) {
    let st = store();
    let sys = GAnswer::new(&st, mini_dict(&st), GAnswerConfig { rules, ..Default::default() });
    let questions = benchmark();
    let mut with_args = 0usize;
    let mut right = 0usize;
    for q in &questions {
        if let Some(u) = sys.understand(q.text) {
            if !u.relations.is_empty() {
                with_args += 1;
            }
        }
        let r = sys.answer(q.text);
        if score(q, &SystemOutput::from_response(&r)).right {
            right += 1;
        }
    }
    (with_args, right)
}

fn main() {
    let (args_off, right_off) = run(ArgumentRules::none());
    let (args_on, right_on) = run(ArgumentRules::all());

    print_table(
        "Table 9 — evaluating the heuristic rules",
        &["metric", "without the four rules", "using the four rules"],
        &[
            vec![
                "questions with complete arguments".into(),
                args_off.to_string(),
                args_on.to_string(),
            ],
            vec![
                "questions answered correctly".into(),
                right_off.to_string(),
                right_on.to_string(),
            ],
        ],
    );
    println!(
        "\npaper Table 9: arguments 32 → 48, correct answers 21 → 32 (rules must strictly help)"
    );
    assert!(args_on > args_off, "rules should recover more arguments");
    assert!(right_on > right_off, "rules should answer more questions");
}
