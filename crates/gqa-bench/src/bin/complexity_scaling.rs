//! Tables 3 / 12 — empirical stage complexity, plus the matcher ablations.
//!
//! Three sweeps:
//!
//! 1. **question length** — question-understanding time vs `|Y|` must grow
//!    polynomially (ours) while DEANNA's joint step grows exponentially in
//!    the number of ambiguous phrases (Table 12's claim);
//! 2. **graph size** — query-evaluation time vs triples, on scaled graphs;
//! 3. **ablations** — TA early termination vs exhaustive enumeration, and
//!    neighborhood pruning on/off (the §4.2.2 design decisions).

use gqa_bench::print_table;
use gqa_core::matcher::{find_matches, MatcherConfig};
use gqa_core::topk::top_k;
use gqa_datagen::scale::{scale_graph, ScaleConfig};
use gqa_rdf::schema::Schema;
use std::time::Instant;

fn main() {
    question_length_sweep();
    graph_size_sweep();
    matcher_ablations();
}

/// Longer and longer chained questions: understanding must stay polynomial.
fn question_length_sweep() {
    let st = gqa_bench::store();
    let sys = gqa_bench::ganswer(&st);
    let base = gqa_bench::deanna(&st);
    let questions = [
        "Who developed Minecraft?",
        "Who was married to an actor?",
        "Who was married to an actor that played in Philadelphia?",
        "Who was married to an actor that played in Philadelphia and died in Berlin?",
        "Who was married to an actor that played in Philadelphia and died in Berlin and was born in Vienna?",
    ];
    let mut rows = Vec::new();
    for q in questions {
        let tokens = q.split_whitespace().count();
        let mut ours = f64::MAX;
        let mut theirs = f64::MAX;
        let mut probes = 0usize;
        for _ in 0..3 {
            let t0 = Instant::now();
            let _ = sys.understand(q);
            ours = ours.min(t0.elapsed().as_secs_f64());
            let d = base.answer(q);
            theirs = theirs.min(d.understanding_time.as_secs_f64());
            probes = d.coherence_probes;
        }
        rows.push(vec![
            tokens.to_string(),
            format!("{:.3}", ours * 1e3),
            format!("{:.3}", theirs * 1e3),
            probes.to_string(),
        ]);
    }
    print_table(
        "Tables 3/12 — question understanding time vs question length (ms)",
        &[
            "|Y| (tokens)",
            "ours understand",
            "DEANNA understand (joint ILP)",
            "DEANNA coherence probes",
        ],
        &rows,
    );
}

/// Evaluation time vs graph size on synthetic graphs with a planted query.
fn graph_size_sweep() {
    let mut rows = Vec::new();
    for &entities in &[2_000usize, 10_000, 50_000, 200_000] {
        let store = scale_graph(&ScaleConfig {
            entities,
            predicates: 40,
            classes: 12,
            avg_degree: 4.0,
            seed: 3,
        });
        let schema = Schema::new(&store);
        // Planted 2-edge star query over the most frequent predicates.
        let p0 = store.expect_iri("p:P0");
        let p1 = store.expect_iri("p:P1");
        // Anchor: a vertex carrying both a P0 and a P1 edge, so the planted
        // query has at least one match at every scale.
        let anchor = store
            .with_predicate(p0)
            .map(|t| t.s)
            .find(|&s| {
                store.out_edges_with(s, p1).next().is_some()
                    || store.in_edges_with(s, p1).next().is_some()
            })
            .expect("anchor with P0 and P1 edges");
        let q = gqa_core::mapping::MappedQuery {
            sqg: {
                let mut g = gqa_core::sqg::SemanticQueryGraph::default();
                for (i, t) in ["x", "anchor", "y"].iter().enumerate() {
                    g.vertices.push(gqa_core::sqg::SqgVertex {
                        node: i,
                        text: (*t).into(),
                        is_wh: i == 0,
                        is_target: i == 0,
                        is_proper: false,
                    });
                }
                g.edges.push(gqa_core::sqg::SqgEdge {
                    from: 0,
                    to: 1,
                    phrase: Some((0, "p0".into())),
                });
                g.edges.push(gqa_core::sqg::SqgEdge {
                    from: 1,
                    to: 2,
                    phrase: Some((1, "p1".into())),
                });
                g
            },
            vertices: vec![
                gqa_core::mapping::VertexBinding::Variable { classes: vec![] },
                gqa_core::mapping::VertexBinding::Candidates(vec![
                    gqa_core::mapping::VertexCandidate {
                        id: anchor,
                        confidence: 1.0,
                        is_class: false,
                    },
                ]),
                gqa_core::mapping::VertexBinding::Variable { classes: vec![] },
            ],
            edges: vec![
                gqa_core::mapping::EdgeCandidates {
                    list: vec![(gqa_rdf::PathPattern::single(p0), 1.0)],
                    wildcard: None,
                },
                gqa_core::mapping::EdgeCandidates {
                    list: vec![(gqa_rdf::PathPattern::single(p1), 0.9)],
                    wildcard: None,
                },
            ],
        };
        let mut best = f64::MAX;
        let mut found = 0usize;
        for _ in 0..3 {
            let t0 = Instant::now();
            let (ms, _) = top_k(&store, &schema, &q, &MatcherConfig::default(), 10);
            best = best.min(t0.elapsed().as_secs_f64());
            found = ms.len();
        }
        rows.push(vec![
            entities.to_string(),
            store.len().to_string(),
            format!("{:.3}", best * 1e3),
            found.to_string(),
        ]);
    }
    print_table(
        "Query evaluation time vs graph size (planted 2-edge query, top-10)",
        &["entities", "triples", "top-k time (ms)", "matches"],
        &rows,
    );
}

/// TA early termination and neighborhood pruning ablations.
fn matcher_ablations() {
    let st = gqa_bench::store();
    let questions = [
        "Who was married to an actor that played in Philadelphia?",
        "Who is the uncle of John F. Kennedy, Jr.?",
        "Which books by Kerouac were published by Viking Press?",
    ];
    let mut rows = Vec::new();
    for q in questions {
        // With pruning + TA (default).
        let sys = gqa_bench::ganswer(&st);
        let u = sys.understand(q).expect("understand");
        let mapped = sys.map(&u.sqg).expect("map");
        let schema = Schema::new(&st);

        let t0 = Instant::now();
        let (ta_matches, stats) = top_k(&st, &schema, &mapped, &MatcherConfig::default(), 10);
        let ta_time = t0.elapsed();

        // Exhaustive enumeration (no TA).
        let t1 = Instant::now();
        let all = find_matches(&st, &schema, &mapped, &MatcherConfig::default(), None);
        let exhaustive_time = t1.elapsed();

        // No neighborhood pruning.
        let cfg = MatcherConfig { neighborhood_pruning: false, ..Default::default() };
        let t2 = Instant::now();
        let (_noprune, _) = top_k(&st, &schema, &mapped, &cfg, 10);
        let noprune_time = t2.elapsed();

        rows.push(vec![
            q.split_whitespace().take(5).collect::<Vec<_>>().join(" ") + "…",
            format!("{:.3}", ta_time.as_secs_f64() * 1e3),
            format!("{:.3}", exhaustive_time.as_secs_f64() * 1e3),
            format!("{:.3}", noprune_time.as_secs_f64() * 1e3),
            format!("{} / {}", ta_matches.len(), all.len()),
            format!("{:?}", stats.early_terminated),
        ]);
    }
    print_table(
        "Ablations — TA top-k vs exhaustive, pruning on/off (ms)",
        &["question", "TA+prune", "exhaustive", "no pruning", "topk/all matches", "early stop"],
        &rows,
    );

    // Fabricated high-ambiguity case: TA must terminate early.
    let mut b = gqa_rdf::StoreBuilder::new();
    for i in 0..200 {
        b.add_iri(&format!("a{i}"), "spouse", &format!("b{i}"));
    }
    let store = b.build();
    let schema = Schema::new(&store);
    let spouse = store.expect_iri("spouse");
    let cands: Vec<_> = (0..200)
        .map(|i| gqa_core::mapping::VertexCandidate {
            id: store.expect_iri(&format!("b{i}")),
            confidence: 1.0 / (i as f64 + 1.0),
            is_class: false,
        })
        .collect();
    let q = gqa_core::mapping::MappedQuery {
        sqg: {
            let mut g = gqa_core::sqg::SemanticQueryGraph::default();
            g.vertices.push(gqa_core::sqg::SqgVertex {
                node: 0,
                text: "who".into(),
                is_wh: true,
                is_target: true,
                is_proper: false,
            });
            g.vertices.push(gqa_core::sqg::SqgVertex {
                node: 1,
                text: "b".into(),
                is_wh: false,
                is_target: false,
                is_proper: true,
            });
            g.edges.push(gqa_core::sqg::SqgEdge {
                from: 0,
                to: 1,
                phrase: Some((0, "be married to".into())),
            });
            g
        },
        vertices: vec![
            gqa_core::mapping::VertexBinding::Variable { classes: vec![] },
            gqa_core::mapping::VertexBinding::Candidates(cands),
        ],
        edges: vec![gqa_core::mapping::EdgeCandidates {
            list: vec![(gqa_rdf::PathPattern::single(spouse), 1.0)],
            wildcard: None,
        }],
    };
    let (ms, stats) = top_k(&store, &schema, &q, &MatcherConfig::default(), 5);
    println!(
        "\n200-candidate ambiguity stress: top-5 found after {} rounds ({} probes), early-terminated: {} ({} matches)",
        stats.rounds, stats.probes, stats.early_terminated, ms.len()
    );
}
