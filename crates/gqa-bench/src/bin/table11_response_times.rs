//! Table 11 — the questions answered exactly right, with per-question
//! response time in milliseconds (warm run, best of 3).

use gqa_bench::{ganswer, print_table, score, store, SystemOutput};
use gqa_datagen::qald::benchmark;

fn main() {
    let st = store();
    let sys = ganswer(&st);
    let mut rows = Vec::new();
    let mut times = Vec::new();
    for q in &benchmark() {
        let r = sys.answer(q.text);
        if !score(q, &SystemOutput::from_response(&r)).right {
            continue;
        }
        // Warm timing: best of three runs.
        let best = (0..3).map(|_| sys.answer(q.text).total_time()).min().unwrap_or_default();
        times.push(best);
        rows.push(vec![
            format!("Q{}", q.id),
            q.text.to_owned(),
            format!("{:.3}", best.as_secs_f64() * 1e3),
        ]);
    }
    print_table(
        "Table 11 — questions answered correctly, with response time",
        &["ID", "Question", "Response Time (ms)"],
        &rows,
    );
    let total: f64 = times.iter().map(|t| t.as_secs_f64()).sum();
    println!(
        "\n{} questions answered correctly; mean response {:.3} ms (paper: 32 correct, 250–2565 ms on DBpedia-scale data)",
        rows.len(),
        1e3 * total / times.len().max(1) as f64
    );
}
