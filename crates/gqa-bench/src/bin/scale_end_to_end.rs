//! End-to-end Q/A scaling: the full pipeline (parse → extract → link →
//! match) over synthetic graphs of growing size, with machine-computed
//! gold answers. Extends Table 11 / Figure 6 beyond the curated graph:
//! the paper's response times (250–2565 ms on 60 M triples) correspond to
//! this sweep's trend line.

use gqa_bench::print_table;
use gqa_core::pipeline::{GAnswer, GAnswerConfig};
use gqa_datagen::scaleqa::{scale_qa, ScaleQaConfig};
use gqa_paraphrase::miner::{mine, MinerConfig};
use std::time::Instant;

fn main() {
    let mut rows = Vec::new();
    for &entities in &[2_000usize, 10_000, 50_000, 150_000] {
        let cfg = ScaleQaConfig {
            entities,
            edges_per_predicate: entities / 2,
            noise_predicates: 15,
            noise_edges: entities / 4,
            questions: 40,
            two_hop_fraction: 0.25,
            seed: 17,
        };
        let qa = scale_qa(&cfg);

        let t_mine = Instant::now();
        let dict = mine(&qa.store, &qa.phrases, &MinerConfig { theta: 2, ..Default::default() });
        let mine_time = t_mine.elapsed();

        let sys = GAnswer::new(&qa.store, dict, GAnswerConfig::default());
        let mut right = 0usize;
        let mut partial = 0usize;
        let mut total_time = 0.0f64;
        let mut worst = 0.0f64;
        for q in &qa.questions {
            let t0 = Instant::now();
            let r = sys.answer(&q.text);
            let dt = t0.elapsed().as_secs_f64();
            total_time += dt;
            worst = worst.max(dt);
            let got: Vec<&str> = r.texts();
            let inter = got.iter().filter(|g| q.gold.iter().any(|x| x == *g)).count();
            if inter == q.gold.len() && inter == got.len() {
                right += 1;
            } else if inter > 0 {
                partial += 1;
            }
        }
        rows.push(vec![
            entities.to_string(),
            qa.store.len().to_string(),
            format!("{right}/{}", qa.questions.len()),
            partial.to_string(),
            format!("{:.3}", 1e3 * total_time / qa.questions.len() as f64),
            format!("{:.3}", 1e3 * worst),
            format!("{:.2}", mine_time.as_secs_f64()),
        ]);
    }
    print_table(
        "End-to-end Q/A at scale (40 template questions per size)",
        &[
            "entities",
            "triples",
            "right",
            "partial",
            "mean ms/question",
            "worst ms",
            "mine s (θ=2)",
        ],
        &rows,
    );
}
