//! Exp 2 / Tables 4, 5, 7 — dataset statistics and offline mining time.
//!
//! Two generated relation-phrase datasets play the roles of
//! wordnet-wikipedia (smaller) and freebase-wikipedia (larger); the miner
//! is timed at θ = 2 and θ = 4 (Table 7's two columns). Absolute numbers
//! are machine- and scale-dependent; the paper's *shape* — superlinear
//! growth in θ, roughly linear growth in dataset size — is what must hold.

use gqa_bench::{median, percentile, print_table, threads_arg, write_bench_artifact};
use gqa_datagen::patty::{synthetic_phrase_dataset, SyntheticPhraseConfig};
use gqa_datagen::scale::{scale_graph, ScaleConfig};
use gqa_paraphrase::miner::{mine, mine_with_cache, MinerConfig};
use gqa_rdf::cache::PathCache;
use gqa_rdf::stats::StoreStats;
use std::time::Instant;

fn main() {
    let store = scale_graph(&ScaleConfig {
        entities: 20_000,
        predicates: 60,
        classes: 20,
        avg_degree: 4.0,
        seed: 21,
    });
    let stats = StoreStats::collect(&store);
    print_table(
        "Table 4 — statistics of the RDF graph (scaled synthetic stand-in)",
        &["metric", "value"],
        &[
            vec!["Number of Entities".into(), stats.entities.to_string()],
            vec!["Number of Triples".into(), stats.triples.to_string()],
            vec!["Number of Predicates".into(), stats.predicates.to_string()],
            vec!["Size of RDF Graph".into(), format!("{:.1} MB", stats.bytes as f64 / 1e6)],
        ],
    );

    // Two phrase datasets: "wn-like" (smaller) and "fb-like" (larger).
    let wn = synthetic_phrase_dataset(
        &store,
        &SyntheticPhraseConfig {
            phrases: 350,
            pairs_per_phrase: 11,
            noise_fraction: 0.33,
            max_truth_len: 3,
            seed: 1,
        },
    );
    let fb = synthetic_phrase_dataset(
        &store,
        &SyntheticPhraseConfig {
            phrases: 1600,
            pairs_per_phrase: 9,
            noise_fraction: 0.33,
            max_truth_len: 3,
            seed: 2,
        },
    );
    let mut rows = Vec::new();
    for (name, ds) in [("wn-like", &wn.dataset), ("fb-like", &fb.dataset)] {
        let s = ds.stats();
        rows.push(vec![
            name.into(),
            s.phrases.to_string(),
            s.entity_pairs.to_string(),
            format!("{:.0}", s.avg_pairs_per_phrase),
            format!("{:.2}", ds.resolvable_fraction(&store)),
        ]);
    }
    print_table(
        "Table 5 — statistics of the relation-phrase datasets",
        &["dataset", "#patterns", "#entity pairs", "avg pairs/pattern", "resolvable"],
        &rows,
    );

    // Table 7: offline time, θ = 2 vs θ = 4, both datasets, plus a
    // 4-thread column (phrases are independent — the parallel speedup is
    // near-linear, an engineering extension over the paper's offline run).
    let mut rows = Vec::new();
    for (name, ds) in [("wn-like", &wn.dataset), ("fb-like", &fb.dataset)] {
        let mut cols = vec![name.to_owned()];
        for (theta, threads) in [(2usize, 1usize), (4, 1), (4, 4)] {
            let t0 = Instant::now();
            let dict =
                mine(&store, ds, &MinerConfig { theta, top_k: 3, threads, ..Default::default() });
            let dt = t0.elapsed();
            cols.push(format!("{:.2}s ({} phrases)", dt.as_secs_f64(), dict.len()));
        }
        rows.push(cols);
    }
    print_table(
        "Table 7 — running time of offline processing",
        &["dataset", "θ = 2 (1 thread)", "θ = 4 (1 thread)", "θ = 4 (4 threads)"],
        &rows,
    );
    println!(
        "
(host has {} CPU(s); the 4-thread column only helps on multi-core machines)",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );

    // The path-enumeration cache: same mining, memoized BFS. Timed over
    // several repetitions for the BENCH_offline.json artifact.
    let threads = threads_arg().unwrap_or(4).max(1);
    const REPS: usize = 3;
    let mut dataset_entries = Vec::new();
    let mut rows = Vec::new();
    for (name, ds) in [("wn-like", &wn.dataset), ("fb-like", &fb.dataset)] {
        let cfg = MinerConfig { theta: 4, top_k: 3, threads, ..Default::default() };
        let mut uncached = Vec::new();
        let mut cached = Vec::new();
        for _ in 0..REPS {
            let t0 = Instant::now();
            let plain = mine(&store, ds, &cfg);
            uncached.push(t0.elapsed().as_secs_f64());
            let t1 = Instant::now();
            let cache = PathCache::new(cfg.path_config(&store));
            let memo = mine_with_cache(&store, ds, &cfg, ds.entries.len(), &cache);
            cached.push(t1.elapsed().as_secs_f64());
            assert_eq!(plain.len(), memo.len(), "cache changed mining results");
        }
        // Hit rate of one representative cached run (stats are monotonic,
        // so a fresh cache gives the per-run rate).
        let cache = PathCache::new(cfg.path_config(&store));
        mine_with_cache(&store, ds, &cfg, ds.entries.len(), &cache);
        let stats = cache.stats();
        rows.push(vec![
            name.to_owned(),
            format!("{:.2}s", median(&uncached)),
            format!("{:.2}s", median(&cached)),
            format!("{:.1}%", stats.hit_rate() * 100.0),
            format!(
                "{:.1}%",
                stats.frontier_hits as f64
                    / (stats.frontier_hits + stats.frontier_misses).max(1) as f64
                    * 100.0
            ),
        ]);
        dataset_entries.push(format!(
            "{{\"dataset\": \"{name}\", \"theta\": 4, \"reps\": {REPS}, \"uncached\": \
             {{\"median_s\": {:.6}, \"p95_s\": {:.6}}}, \"cached\": {{\"median_s\": {:.6}, \
             \"p95_s\": {:.6}}}, \"pair_hit_rate\": {:.6}, \"frontier_hit_rate\": {:.6}}}",
            median(&uncached),
            percentile(&uncached, 95.0),
            median(&cached),
            percentile(&cached, 95.0),
            stats.hit_rate(),
            stats.frontier_hits as f64
                / (stats.frontier_hits + stats.frontier_misses).max(1) as f64
        ));
    }
    print_table(
        "Offline mining with the path-enumeration cache (θ = 4)",
        &["dataset", "uncached median", "cached median", "pair hit rate", "frontier hit rate"],
        &rows,
    );

    let host = std::thread::available_parallelism().map_or(1, usize::from);
    let json = format!(
        "{{\n  \"benchmark\": \"exp2_offline_time\",\n  \"host_threads\": {host},\n  \
         \"threads\": {threads},\n  \"datasets\": [\n    {}\n  ]\n}}\n",
        dataset_entries.join(",\n    ")
    );
    write_bench_artifact("BENCH_offline.json", &json);
}
