//! Exp 5 / Table 10 — failure analysis.
//!
//! Classifies every question our system does not answer exactly right by
//! failure reason, mirroring Table 10's taxonomy (entity linking, relation
//! extraction, aggregation, others), then re-runs with the aggregation
//! extension enabled to show how much of the aggregation bucket the
//! future-work feature recovers.

use gqa_bench::{ganswer, print_table, score, store, SystemOutput};
use gqa_core::pipeline::{Failure, GAnswer, GAnswerConfig};
use gqa_datagen::patty::mini_dict;
use gqa_datagen::qald::benchmark;

fn failure_bucket(f: &Option<Failure>) -> &'static str {
    match f {
        Some(Failure::EntityLinking(_)) => "Entity Linking Failure",
        Some(Failure::RelationExtraction(_)) | Some(Failure::NoMatch) => {
            "Relation Extraction Failure"
        }
        Some(Failure::Aggregation) => "Aggregation Query",
        Some(Failure::Parse) => "Others",
        None => "Others", // produced wrong/partial output
    }
}

fn main() {
    let st = store();
    let sys = ganswer(&st);
    let questions = benchmark();

    let mut buckets: Vec<(&'static str, usize, Vec<String>)> = vec![
        ("Entity Linking Failure", 0, Vec::new()),
        ("Relation Extraction Failure", 0, Vec::new()),
        ("Aggregation Query", 0, Vec::new()),
        ("Others", 0, Vec::new()),
    ];
    let mut failed = 0usize;
    for q in &questions {
        let r = sys.answer(q.text);
        let s = score(q, &SystemOutput::from_response(&r));
        if s.right {
            continue;
        }
        failed += 1;
        let bucket = failure_bucket(&r.failure);
        for b in &mut buckets {
            if b.0 == bucket {
                b.1 += 1;
                if b.2.len() < 2 {
                    b.2.push(format!("Q{}: {}", q.id, q.text));
                }
            }
        }
    }

    let rows: Vec<Vec<String>> = buckets
        .iter()
        .map(|(name, n, examples)| {
            vec![
                (*name).to_owned(),
                format!("{n} ({:.0}%)", 100.0 * *n as f64 / failed.max(1) as f64),
                examples.join(" / "),
            ]
        })
        .collect();
    print_table(
        "Table 10 — failure analysis (our method, default config)",
        &["Reason", "#(Ratio)", "Sample"],
        &rows,
    );
    println!("\npaper Table 10: entity linking 17 (27%), relation extraction 14 (22%), aggregation 22 (35%), others 10 (16%)");

    // Extension: aggregation enabled.
    let sys2 = GAnswer::new(
        &st,
        mini_dict(&st),
        GAnswerConfig { enable_aggregates: true, ..Default::default() },
    );
    let mut agg_right = 0usize;
    let mut agg_total = 0usize;
    for q in &questions {
        if q.category != gqa_datagen::qald::Category::Aggregation {
            continue;
        }
        agg_total += 1;
        let r = sys2.answer(q.text);
        if score(q, &SystemOutput::from_response(&r)).right {
            agg_right += 1;
        }
    }
    println!(
        "\nWith the aggregation extension (future work in the paper): {agg_right}/{agg_total} aggregation questions answered exactly right."
    );
}
