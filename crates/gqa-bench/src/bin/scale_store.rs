//! Million-to-ten-million-triple store benchmarks: build time, CSR vs.
//! reference-layout resident bytes per triple, binary snapshot write/load
//! vs. N-Triples re-parse, BFS throughput, and end-to-end answer latency
//! against store size. Writes `BENCH_scale.json`.
//!
//! ```text
//! cargo run --release -p gqa-bench --bin scale_store
//! cargo run --release -p gqa-bench --bin scale_store -- --sizes 1000000 --answer-entities 30000
//! ```
//!
//! Exits nonzero if the snapshot round-trip or a sampled CSR-vs-reference
//! equivalence check ever disagrees — this binary is also the CI
//! `scale-smoke` gate.

use gqa_bench::{percentile, print_table, write_bench_artifact};
use gqa_core::pipeline::{GAnswer, GAnswerConfig};
use gqa_datagen::scale::{scale_graph, ScaleConfig};
use gqa_datagen::scaleqa::{scale_qa, ScaleQaConfig};
use gqa_paraphrase::miner::{mine, MinerConfig};
use gqa_rdf::csr::reference::RefIndexes;
use gqa_rdf::{graph, read_snapshot, write_snapshot, Store, Triple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

struct Args {
    /// Triple-count targets for the store benchmark.
    sizes: Vec<usize>,
    /// Entity counts for the answer-latency sweep (0 = skip).
    answer_entities: Vec<usize>,
}

fn parse_args() -> Args {
    let mut sizes = vec![100_000usize, 1_000_000, 10_000_000];
    let mut answer_entities = vec![2_000usize, 10_000, 50_000];
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let list = |s: Option<String>, what: &str| -> Vec<usize> {
            s.unwrap_or_else(|| panic!("{what} needs a comma-separated list"))
                .split(',')
                .filter(|x| !x.is_empty())
                .map(|x| x.parse().unwrap_or_else(|e| panic!("bad {what}: {e}")))
                .collect()
        };
        match a.as_str() {
            "--sizes" => sizes = list(args.next(), "--sizes"),
            "--answer-entities" => answer_entities = list(args.next(), "--answer-entities"),
            "--no-answers" => answer_entities.clear(),
            other => {
                eprintln!(
                    "unknown argument {other:?}\n\
                     usage: scale_store [--sizes N,N,...] [--answer-entities N,N,...] [--no-answers]"
                );
                std::process::exit(2);
            }
        }
    }
    Args { sizes, answer_entities }
}

/// Sampled equivalence of the live CSR store against the reference
/// permutation layout: out/in/predicate scans for `samples` seeded vertices
/// must be bit-identical.
fn csr_matches_reference(store: &Store, rf: &RefIndexes, samples: usize, seed: u64) -> bool {
    let ts: Vec<Triple> = store.triples().collect();
    if ts.is_empty() {
        return true;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..samples {
        let t = ts[rng.gen_range(0..ts.len())];
        for v in [t.s, t.o, t.p] {
            let outs: Vec<Triple> = store.out_edges(v).collect();
            if outs != rf.out_edges(&ts, v) {
                return false;
            }
            let ins: Vec<Triple> = store.in_edges(v).collect();
            if ins != rf.in_edges(&ts, v) {
                return false;
            }
        }
        let got: Vec<Triple> = store.in_edges_with(t.o, t.p).collect();
        if got != rf.in_edges_with(&ts, t.o, t.p) {
            return false;
        }
        let got: Vec<Triple> = store.with_predicate_object(t.p, t.o).collect();
        if got != rf.with_predicate_object(&ts, t.p, t.o) {
            return false;
        }
        let got: Vec<Triple> = store.with_predicate(t.p).take(2_000).collect();
        let want: Vec<Triple> = rf.with_predicate(&ts, t.p).into_iter().take(2_000).collect();
        if got != want {
            return false;
        }
    }
    true
}

/// Full undirected neighborhood sweeps from seeded start vertices:
/// edges traversed per second through the public BFS surface.
fn bfs_throughput(store: &Store, sweeps: usize, seed: u64) -> (u64, f64) {
    let ts: Vec<Triple> = store.triples().collect();
    if ts.is_empty() {
        return (0, 0.0);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = 0u64;
    let t0 = Instant::now();
    for _ in 0..sweeps {
        let v = ts[rng.gen_range(0..ts.len())].s;
        edges += graph::neighbors(store, v).count() as u64;
        // One 2-hop frontier from the first neighbor keeps the sweep
        // honest about in-edge decoding, not just out-slices.
        if let Some(n) = graph::neighbors(store, v).next() {
            edges += graph::neighbors(store, n.other).count() as u64;
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    (edges, if dt > 0.0 { edges as f64 / dt } else { 0.0 })
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_owned()
    }
}

fn main() {
    let args = parse_args();
    let mut rows = Vec::new();
    let mut size_blocks = Vec::new();
    let mut all_ok = true;

    for &target in &args.sizes {
        // avg_degree 6 + 1 typing edge per entity ≈ 7 triples per entity.
        let entities = (target / 7).max(2);
        let cfg = ScaleConfig { entities, ..Default::default() };

        let t0 = Instant::now();
        let store = scale_graph(&cfg);
        let build_s = t0.elapsed().as_secs_f64();
        let n = store.len();
        let terms = store.dict().len();
        let sections = store.section_bytes();
        let csr_index_bytes = sections.indexes.total();

        let all_triples: Vec<Triple> = store.triples().collect();
        let t0 = Instant::now();
        let rf = RefIndexes::build(&all_triples);
        let ref_build_s = t0.elapsed().as_secs_f64();
        let ref_index_bytes = rf.bytes();

        let equal = csr_matches_reference(&store, &rf, 200, 7);
        all_ok &= equal;

        // Reload contest: re-parsing the N-Triples text is what a reload
        // costs without snapshots. Both contenders run REPEATS times and
        // report the minimum — single-shot wall clock on a shared box
        // mixes in scheduler noise and one-off page-fault storms, and the
        // repeated (allocator-warm) cost is what a reloading server pays.
        const REPEATS: usize = 3;
        let t0 = Instant::now();
        let text = gqa_rdf::ntriples::serialize(&store);
        let nt_write_s = t0.elapsed().as_secs_f64();
        let nt_bytes = text.len();
        let mut nt_parse_runs = Vec::new();
        for r in 0..REPEATS {
            let t0 = Instant::now();
            let (reparsed, pstats) = gqa_rdf::ntriples::parse_lenient(&text);
            nt_parse_runs.push(t0.elapsed().as_secs_f64());
            if r == 0 {
                all_ok &= pstats.skipped == 0 && reparsed.len() == n;
            }
        }
        drop(text);
        let nt_parse_s = nt_parse_runs.iter().copied().fold(f64::INFINITY, f64::min);

        let t0 = Instant::now();
        let snap = write_snapshot(&store);
        let snap_write_s = t0.elapsed().as_secs_f64();
        let mut load_runs = Vec::new();
        let mut roundtrip = true;
        for r in 0..REPEATS {
            let t0 = Instant::now();
            let loaded = match read_snapshot(&snap) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: snapshot failed to load at {target}: {e}");
                    std::process::exit(1);
                }
            };
            load_runs.push(t0.elapsed().as_secs_f64());
            if r == 0 {
                roundtrip = loaded.triples().eq(store.triples())
                    && loaded.dict().len() == store.dict().len()
                    && csr_matches_reference(&loaded, &rf, 50, 11);
                all_ok &= roundtrip;
            }
        }
        let snap_load_s = load_runs.iter().copied().fold(f64::INFINITY, f64::min);

        let (bfs_edges, bfs_eps) = bfs_throughput(&store, 500, 23);

        let per = |b: usize| b as f64 / n.max(1) as f64;
        let speedup = if snap_load_s > 0.0 { nt_parse_s / snap_load_s } else { f64::INFINITY };
        rows.push(vec![
            n.to_string(),
            format!("{build_s:.2}"),
            format!("{:.2}", per(csr_index_bytes)),
            format!("{:.2}", per(ref_index_bytes)),
            format!("{snap_load_s:.3}"),
            format!("{nt_parse_s:.2}"),
            format!("{speedup:.1}x"),
            format!("{:.2}M/s", bfs_eps / 1e6),
            (equal && roundtrip).to_string(),
        ]);

        size_blocks.push(format!(
            concat!(
                "    {{\n",
                "      \"target_triples\": {},\n",
                "      \"triples\": {},\n",
                "      \"terms\": {},\n",
                "      \"build_s\": {},\n",
                "      \"csr\": {{\"index_bytes\": {}, \"index_bytes_per_triple\": {}, ",
                "\"total_bytes_per_triple\": {}}},\n",
                "      \"reference\": {{\"index_bytes\": {}, \"index_bytes_per_triple\": {}, ",
                "\"total_bytes_per_triple\": {}, \"build_index_s\": {}}},\n",
                "      \"snapshot\": {{\"file_bytes\": {}, \"write_s\": {}, \"load_s\": {}, ",
                "\"load_s_runs\": [{}], \"ntriples_bytes\": {}, \"ntriples_serialize_s\": {}, ",
                "\"ntriples_parse_s\": {}, \"ntriples_parse_s_runs\": [{}], ",
                "\"load_speedup\": {}}},\n",
                "      \"bfs\": {{\"sweeps\": 500, \"edges_traversed\": {}, \"edges_per_s\": {}}},\n",
                "      \"answers_identical\": {},\n",
                "      \"roundtrip_identical\": {}\n",
                "    }}"
            ),
            target,
            n,
            terms,
            json_f(build_s),
            csr_index_bytes,
            json_f(per(csr_index_bytes)),
            json_f(per(sections.triples + csr_index_bytes)),
            ref_index_bytes,
            json_f(per(ref_index_bytes)),
            json_f(per(sections.triples + ref_index_bytes)),
            json_f(ref_build_s),
            snap.len(),
            json_f(snap_write_s),
            json_f(snap_load_s),
            load_runs.iter().map(|&v| json_f(v)).collect::<Vec<_>>().join(", "),
            nt_bytes,
            json_f(nt_write_s),
            json_f(nt_parse_s),
            nt_parse_runs.iter().map(|&v| json_f(v)).collect::<Vec<_>>().join(", "),
            json_f(speedup),
            bfs_edges,
            json_f(bfs_eps),
            equal,
            roundtrip,
        ));
    }

    print_table(
        "Store scale: CSR layout, snapshots, BFS",
        &[
            "triples",
            "build s",
            "csr B/t",
            "ref B/t",
            "snap load s",
            "nt parse s",
            "speedup",
            "bfs",
            "identical",
        ],
        &rows,
    );

    // End-to-end answer latency against store size (full pipeline over the
    // QA-ready synthetic graphs; mining included in setup, not latency).
    let mut answer_blocks = Vec::new();
    let mut answer_rows = Vec::new();
    for &entities in &args.answer_entities {
        let cfg = ScaleQaConfig {
            entities,
            edges_per_predicate: entities / 2,
            noise_predicates: 15,
            noise_edges: entities / 4,
            questions: 20,
            two_hop_fraction: 0.25,
            seed: 17,
        };
        let qa = scale_qa(&cfg);
        let t0 = Instant::now();
        let dict = mine(&qa.store, &qa.phrases, &MinerConfig { theta: 2, ..Default::default() });
        let mine_s = t0.elapsed().as_secs_f64();
        let sys = GAnswer::new(&qa.store, dict, GAnswerConfig::default());
        let mut lat_ms: Vec<f64> = Vec::new();
        let mut answered = 0usize;
        for q in &qa.questions {
            let t0 = Instant::now();
            let r = sys.answer(&q.text);
            lat_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            answered += usize::from(r.failure.is_none());
        }
        let mean = lat_ms.iter().sum::<f64>() / lat_ms.len().max(1) as f64;
        let p95 = percentile(&lat_ms, 95.0);
        answer_rows.push(vec![
            entities.to_string(),
            qa.store.len().to_string(),
            format!("{answered}/{}", qa.questions.len()),
            format!("{mean:.3}"),
            format!("{p95:.3}"),
            format!("{mine_s:.2}"),
        ]);
        answer_blocks.push(format!(
            concat!(
                "    {{\"entities\": {}, \"triples\": {}, \"questions\": {}, ",
                "\"answered\": {}, \"mean_ms\": {}, \"p95_ms\": {}, \"mine_s\": {}}}"
            ),
            entities,
            qa.store.len(),
            qa.questions.len(),
            answered,
            json_f(mean),
            json_f(p95),
            json_f(mine_s),
        ));
    }
    if !answer_rows.is_empty() {
        print_table(
            "End-to-end answer latency vs store size",
            &["entities", "triples", "answered", "mean ms", "p95 ms", "mine s"],
            &answer_rows,
        );
    }

    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let json = format!(
        "{{\n  \"host_threads\": {},\n  \"sizes\": [\n{}\n  ],\n  \"answer_latency\": [\n{}\n  ]\n}}\n",
        host_threads,
        size_blocks.join(",\n"),
        answer_blocks.join(",\n"),
    );
    write_bench_artifact("BENCH_scale.json", &json);

    if !all_ok {
        eprintln!("error: CSR/reference or snapshot round-trip mismatch (see table)");
        std::process::exit(1);
    }
}
