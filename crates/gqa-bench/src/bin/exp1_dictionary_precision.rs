#![allow(clippy::needless_range_loop)] // bucket index IS the path length
//! Exp 1 / Table 6 — precision of the mined paraphrase dictionary.
//!
//! The paper samples 1000 relation phrases per dataset, shows human judges
//! the top-3 mined predicates/paths and grades each 2 (correct, highly
//! relevant) / 1 (correct, less relevant) / 0 (irrelevant); P@3 ≈ 50 % at
//! path length 1, dropping as length grows.
//!
//! Here the judge is the generator: every synthetic phrase is planted on a
//! known true pattern, so grading is mechanical — 2 when a mined pattern
//! equals the planted truth, 1 when it shares the truth's boundary
//! predicate (a near-miss a human judge would call "correct but less
//! relevant"), 0 otherwise. The same sweep is reported per path length, and
//! a raw-frequency ranking (no idf) is included as the ablation the tf-idf
//! design decision is measured against.
//!
//! Also prints the Table-6-style sample of the curated dictionary.

use gqa_bench::print_table;
use gqa_datagen::patty::{synthetic_phrase_dataset, SyntheticPhraseConfig};
use gqa_datagen::scale::{scale_graph, ScaleConfig};
use gqa_paraphrase::miner::{mine, MinerConfig};
use gqa_paraphrase::tfidf::{document_frequency, PathSetSummary};
use gqa_rdf::paths::{simple_paths, PathConfig, PathPattern};
use gqa_rdf::Store;

fn grade(mined: &PathPattern, truth: &PathPattern) -> u32 {
    if mined == truth || *mined == truth.reversed() {
        return 2;
    }
    let (mf, ml) = (mined.0[0].pred, mined.0[mined.len() - 1].pred);
    let (tf, tl) = (truth.0[0].pred, truth.0[truth.len() - 1].pred);
    if mf == tf || ml == tl || mf == tl || ml == tf {
        1
    } else {
        0
    }
}

fn main() {
    // A mid-size random graph: big enough for paths, small enough to mine
    // 200 phrases quickly.
    let store = scale_graph(&ScaleConfig {
        entities: 3_000,
        predicates: 40,
        classes: 10,
        avg_degree: 4.0,
        seed: 11,
    });
    let syn = synthetic_phrase_dataset(
        &store,
        &SyntheticPhraseConfig {
            phrases: 200,
            pairs_per_phrase: 8,
            noise_fraction: 0.33,
            max_truth_len: 3,
            seed: 5,
        },
    );
    println!("synthetic dataset: {} phrases, truth lengths 1..=3", syn.dataset.len());
    println!("resolvable support fraction: {:.2}", syn.dataset.resolvable_fraction(&store));

    let dict =
        mine(&store, &syn.dataset, &MinerConfig { theta: 4, top_k: 3, ..Default::default() });

    // P@3 bucketed by the *mined* path's length (the paper's axis: "the
    // precision (P@3) is about 50% when the path length is 1 … while
    // increasing of path length, the precision goes down greatly").
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); 5]; // index = mined length
    let mut top1_hits = 0usize;
    let mut phrases = 0usize;
    for (entry, truth) in syn.dataset.entries.iter().zip(&syn.truth) {
        let Some(maps) = dict.lookup(&entry.text) else { continue };
        phrases += 1;
        for m in maps.iter().take(3) {
            let len = m.path.len().min(4);
            buckets[len].push(grade(&m.path, truth));
        }
        if maps.first().map(|m| grade(&m.path, truth) == 2).unwrap_or(false) {
            top1_hits += 1;
        }
    }
    let mut rows = Vec::new();
    for len in 1..=4usize {
        let graded = &buckets[len];
        if graded.is_empty() {
            continue;
        }
        let p = graded.iter().filter(|&&g| g > 0).count() as f64 / graded.len() as f64;
        let strict = graded.iter().filter(|&&g| g == 2).count() as f64 / graded.len() as f64;
        rows.push(vec![
            len.to_string(),
            graded.len().to_string(),
            format!("{p:.2}"),
            format!("{strict:.2}"),
        ]);
    }
    print_table(
        "Exp 1 — P@3 by mined path length (tf-idf ranking)",
        &["mined path length", "#mappings", "P@3 (grade>0)", "P@3 (grade=2)"],
        &rows,
    );
    println!(
        "top-1 exact over all {phrases} phrases: {:.2}",
        top1_hits as f64 / phrases.max(1) as f64
    );
    println!("(paper: ~50% at length 1, dropping as length grows)");

    // Ablation: raw frequency (tf only, no idf) ranking.
    let raw = mine_raw_frequency(&store, &syn.dataset);
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); 5];
    let mut raw_top1 = 0usize;
    for ((_, truth), maps) in syn.dataset.entries.iter().zip(&syn.truth).zip(&raw) {
        for m in maps.iter().take(3) {
            buckets[m.len().min(4)].push(grade(m, truth));
        }
        if maps.first().map(|m| grade(m, truth) == 2).unwrap_or(false) {
            raw_top1 += 1;
        }
    }
    let mut rows = Vec::new();
    for len in 1..=4usize {
        let graded = &buckets[len];
        if graded.is_empty() {
            continue;
        }
        let p = graded.iter().filter(|&&g| g > 0).count() as f64 / graded.len() as f64;
        rows.push(vec![len.to_string(), format!("{p:.2}")]);
    }
    print_table(
        "Ablation — raw-frequency ranking (no idf)",
        &["mined path length", "P@3 (grade>0)"],
        &rows,
    );
    println!(
        "raw-frequency top-1 exact: {:.2} (tf-idf must beat this)",
        raw_top1 as f64 / phrases.max(1) as f64
    );

    // Table-6-style sample over the curated mini graph.
    let mini = gqa_bench::store();
    let mini_dict = gqa_bench::dict(&mini);
    let mut sample_rows = Vec::new();
    for phrase in [
        "be married to",
        "play in",
        "uncle of",
        "mayor of",
        "come from",
        "largest city in",
        "be buried in",
    ] {
        if let Some(maps) = mini_dict.lookup(phrase) {
            for m in maps.iter().take(2) {
                sample_rows.push(vec![
                    format!("{phrase:?}"),
                    m.path.display(&mini).to_string(),
                    format!("{:.2}", m.confidence),
                ]);
            }
        }
    }
    print_table(
        "Table 6 — sample of the mined paraphrase dictionary (mini-DBpedia)",
        &["Relation Phrase", "Predicate / Predicate Path", "Confidence"],
        &sample_rows,
    );
}

/// The no-idf ablation: rank patterns of each phrase by tf alone.
fn mine_raw_frequency(
    store: &Store,
    dataset: &gqa_paraphrase::PhraseDataset,
) -> Vec<Vec<PathPattern>> {
    let cfg = PathConfig::default().skip_schema_predicates(store);
    let mut out = Vec::new();
    let mut summaries = Vec::new();
    for entry in &dataset.entries {
        let mut summary = PathSetSummary::default();
        for (a, b) in &entry.support {
            let (Some(va), Some(vb)) = (store.iri(a), store.iri(b)) else { continue };
            let paths = simple_paths(store, va, vb, &cfg);
            summary.record_pair(paths.iter().map(|p| p.pattern()));
        }
        summaries.push(summary);
    }
    let _ = document_frequency(summaries.iter());
    for summary in &summaries {
        let mut scored: Vec<(u32, PathPattern)> =
            summary.tf.iter().map(|(p, &tf)| (tf, p.clone())).collect();
        scored.sort_by(|a, b| {
            b.0.cmp(&a.0).then_with(|| a.1.len().cmp(&b.1.len())).then_with(|| a.1.cmp(&b.1))
        });
        out.push(scored.into_iter().take(3).map(|(_, p)| p).collect());
    }
    out
}
