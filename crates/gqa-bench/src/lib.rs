//! # gqa-bench — experiment harnesses
//!
//! Shared machinery for the binaries that regenerate every table and figure
//! of the paper's §6 (see DESIGN.md's per-experiment index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `exp1_dictionary_precision` | Exp 1 / Table 6 (P@3 of the mined dictionary) |
//! | `exp2_offline_time` | Tables 4, 5, 7 (dataset stats + offline mining time) |
//! | `exp3_end_to_end` | Exp 3 / Table 8 (QALD-style end-to-end evaluation) |
//! | `exp4_heuristic_rules` | Exp 4 / Table 9 (argument-rule ablation) |
//! | `exp5_failure_analysis` | Exp 5 / Table 10 (failure taxonomy) |
//! | `table11_response_times` | Table 11 (per-question response time) |
//! | `fig6_online_time` | Figure 6 (gAnswer vs DEANNA, per-question time) |
//! | `complexity_scaling` | Tables 3/12 (empirical stage complexity + ablations) |
//!
//! This library holds the common setup (store + dictionary + systems) and
//! the QALD-3 scoring rules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gqa_baselines::{Deanna, DeannaConfig};
use gqa_core::pipeline::{GAnswer, GAnswerConfig, Response};
use gqa_datagen::minidbp::mini_dbpedia;
use gqa_datagen::patty::mini_dict;
use gqa_datagen::qald::{BenchQuestion, Gold};
use gqa_obs::{Obs, DURATION_BUCKETS};
use gqa_paraphrase::ParaphraseDict;
use gqa_rdf::{Store, Term};

/// Build the standard evaluation store.
pub fn store() -> Store {
    mini_dbpedia()
}

/// Build the standard dictionary for a store.
pub fn dict(store: &Store) -> ParaphraseDict {
    mini_dict(store)
}

/// The gAnswer system under the paper's default configuration.
pub fn ganswer(store: &Store) -> GAnswer<'_> {
    GAnswer::new(store, mini_dict(store), GAnswerConfig::default())
}

/// Like [`ganswer`], but with metrics collection enabled so the binary can
/// report per-stage timings at the end (see [`emit_metrics`]).
pub fn ganswer_instrumented(store: &Store) -> GAnswer<'_> {
    GAnswer::with_obs(store, mini_dict(store), GAnswerConfig::default(), Obs::new())
}

/// Print a per-stage metrics summary for an instrumented system and, when
/// `--metrics FILE` (or `GQA_METRICS=FILE`) is given, write the full
/// Prometheus exposition to FILE. A no-op for uninstrumented systems.
pub fn emit_metrics(system: &GAnswer<'_>) {
    system.publish_metrics();
    let obs = system.obs();
    let Some(registry) = obs.registry() else { return };
    println!("\nper-stage metrics:");
    for stage in ["understand", "map", "topk"] {
        let h = registry.histogram(
            "gqa_pipeline_stage_duration_seconds",
            &[("stage", stage)],
            DURATION_BUCKETS,
        );
        let n = h.count();
        let mean_ms = if n > 0 { h.sum() * 1e3 / n as f64 } else { 0.0 };
        println!("  {stage:<10} n={n:<4} total={:.4}s mean={mean_ms:.4}ms", h.sum());
    }
    let c = |name: &str, labels: &[(&str, &str)]| registry.counter(name, labels).get();
    println!(
        "  questions={} topk probes={} rounds={} early-terminations={}",
        c("gqa_pipeline_questions_total", &[]),
        c("gqa_topk_probes_total", &[]),
        c("gqa_topk_rounds_total", &[]),
        c("gqa_topk_early_terminations_total", &[]),
    );
    println!(
        "  rdf lookups spo/pos/osp={}/{}/{} bfs-expansions={} linker calls={} (hit {} / miss {})",
        c("gqa_rdf_index_lookups_total", &[("index", "spo")]),
        c("gqa_rdf_index_lookups_total", &[("index", "pos")]),
        c("gqa_rdf_index_lookups_total", &[("index", "osp")]),
        c("gqa_rdf_bfs_expansions_total", &[]),
        c("gqa_linker_link_calls_total", &[]),
        c("gqa_linker_link_hits_total", &[]),
        c("gqa_linker_link_misses_total", &[]),
    );
    if let Some(path) = metrics_file() {
        match std::fs::write(&path, obs.prometheus()) {
            Ok(()) => println!("  exposition written to {path}"),
            Err(e) => eprintln!("error: cannot write {path}: {e}"),
        }
    }
}

/// The `--metrics FILE` argument or `GQA_METRICS` environment variable.
fn metrics_file() -> Option<String> {
    if let Ok(p) = std::env::var("GQA_METRICS") {
        if !p.is_empty() {
            return Some(p);
        }
    }
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--metrics" {
            return args.next();
        }
    }
    None
}

/// The DEANNA baseline sharing the same substrates.
pub fn deanna(store: &Store) -> Deanna<'_> {
    Deanna::new(store, mini_dict(store), DeannaConfig::default())
}

/// The `--threads N` argument, if present (benchmark binaries share the
/// CLI's flag name; `GQA_THREADS` still applies when absent).
pub fn threads_arg() -> Option<usize> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--threads" {
            return args.next().and_then(|v| v.parse().ok());
        }
    }
    None
}

/// Nearest-rank percentile (`p` in `[0, 100]`) of unsorted samples; 0 for
/// an empty slice. Used for the median/p95 lines of the `BENCH_*.json`
/// artifacts.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Median (50th nearest-rank percentile) of unsorted samples.
pub fn median(samples: &[f64]) -> f64 {
    percentile(samples, 50.0)
}

/// Where benchmark artifacts like `BENCH_online.json` live: the repository
/// root (two levels above this crate), so the perf trajectory is tracked
/// in one predictable place across PRs.
pub fn bench_artifact_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(name)
}

/// Write a benchmark artifact at the repo root, echoing the path.
pub fn write_bench_artifact(name: &str, json: &str) {
    let path = bench_artifact_path(name);
    match std::fs::write(&path, json) {
        Ok(()) => println!("\nbenchmark artifact written to {}", path.display()),
        Err(e) => eprintln!("error: cannot write {}: {e}", path.display()),
    }
}

/// Per-question evaluation outcome, QALD-3 style.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QScore {
    /// The system produced *some* output.
    pub processed: bool,
    /// Output exactly equals the gold set.
    pub right: bool,
    /// Output overlaps the gold set without equalling it.
    pub partial: bool,
    /// Precision |A∩G|/|A| (0 when A is empty).
    pub precision: f64,
    /// Recall |A∩G|/|G| (0 when G is unattainable and A nonempty).
    pub recall: f64,
}

impl QScore {
    /// F1 of this question.
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }
}

/// A system's answer in comparable form.
#[derive(Clone, Debug, Default)]
pub struct SystemOutput {
    /// Answer texts (entity labels / literal lexical forms).
    pub answers: Vec<String>,
    /// Boolean verdict, when produced.
    pub boolean: Option<bool>,
    /// Count, when produced.
    pub count: Option<usize>,
}

impl SystemOutput {
    /// From the gAnswer response.
    pub fn from_response(r: &Response) -> Self {
        SystemOutput {
            answers: r.answers.iter().map(|a| a.text.clone()).collect(),
            boolean: r.boolean,
            count: r.count,
        }
    }

    /// From a bare answer list.
    pub fn from_texts(answers: Vec<String>) -> Self {
        SystemOutput { answers, boolean: None, count: None }
    }

    /// Did the system output anything at all?
    pub fn is_empty(&self) -> bool {
        self.answers.is_empty() && self.boolean.is_none() && self.count.is_none()
    }
}

/// Gold answers rendered to comparable label text.
pub fn gold_labels(gold: &Gold) -> Vec<String> {
    match gold {
        Gold::Resources(rs) => rs.iter().map(|iri| Term::iri(*iri).label().into_owned()).collect(),
        Gold::Literals(ls) => ls.iter().map(|s| (*s).to_owned()).collect(),
        _ => Vec::new(),
    }
}

/// Score one system output against one question's gold (QALD-3 rules).
pub fn score(question: &BenchQuestion, out: &SystemOutput) -> QScore {
    let mut s = QScore { processed: !out.is_empty(), ..Default::default() };
    match &question.gold {
        Gold::Boolean(b) => match out.boolean {
            Some(x) => {
                s.processed = true;
                s.right = x == *b;
                s.precision = if s.right { 1.0 } else { 0.0 };
                s.recall = s.precision;
            }
            None => {
                // Answer lists cannot satisfy a boolean question.
                s.right = false;
            }
        },
        Gold::Count(n) => {
            if let Some(c) = out.count {
                s.processed = true;
                s.right = c == *n;
                s.precision = if s.right { 1.0 } else { 0.0 };
                s.recall = s.precision;
            }
        }
        Gold::OutOfScope => {
            // Not representable: any produced answer is wrong; empty output
            // still counts as a failure (the information was asked for).
            s.right = false;
            s.precision = 0.0;
            s.recall = 0.0;
        }
        gold @ (Gold::Resources(_) | Gold::Literals(_)) => {
            let g = gold_labels(gold);
            let inter = out.answers.iter().filter(|a| g.contains(a)).count();
            if !out.answers.is_empty() {
                s.precision = inter as f64 / out.answers.len() as f64;
            }
            if !g.is_empty() {
                s.recall = inter as f64 / g.len() as f64;
            }
            s.right = inter == g.len() && inter == out.answers.len() && !g.is_empty();
            s.partial = inter > 0 && !s.right;
        }
    }
    s
}

/// Aggregate scores, Table-8 style.
#[derive(Clone, Copy, Debug, Default)]
pub struct TableRow {
    /// Questions with any output.
    pub processed: usize,
    /// Exactly right.
    pub right: usize,
    /// Partially right.
    pub partial: usize,
    /// Macro-averaged recall over all questions.
    pub recall: f64,
    /// Macro-averaged precision over all questions.
    pub precision: f64,
}

impl TableRow {
    /// Accumulate per-question scores (macro average over `total`).
    pub fn aggregate(scores: &[QScore]) -> Self {
        let total = scores.len().max(1) as f64;
        TableRow {
            processed: scores.iter().filter(|s| s.processed).count(),
            right: scores.iter().filter(|s| s.right).count(),
            partial: scores.iter().filter(|s| s.partial).count(),
            recall: scores.iter().map(|s| s.recall).sum::<f64>() / total,
            precision: scores.iter().map(|s| s.precision).sum::<f64>() / total,
        }
    }

    /// Macro F1.
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }
}

/// Print a Markdown-ish table header + rows (all harness binaries share the
/// visual format).
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    println!("{}", header.join(" | "));
    println!("{}", header.iter().map(|h| "-".repeat(h.len())).collect::<Vec<_>>().join(" | "));
    for r in rows {
        println!("{}", r.join(" | "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqa_datagen::qald::Category;

    fn q(gold: Gold) -> BenchQuestion {
        BenchQuestion { id: 0, text: "", gold, category: Category::Normal }
    }

    #[test]
    fn exact_match_is_right() {
        let question = q(Gold::Resources(vec!["dbr:Ottawa"]));
        let s = score(&question, &SystemOutput::from_texts(vec!["Ottawa".into()]));
        assert!(s.right && !s.partial);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
    }

    #[test]
    fn overlap_is_partial() {
        let question = q(Gold::Resources(vec!["dbr:A", "dbr:B"]));
        let s = score(&question, &SystemOutput::from_texts(vec!["A".into(), "C".into()]));
        assert!(!s.right && s.partial);
        assert!((s.precision - 0.5).abs() < 1e-12);
        assert!((s.recall - 0.5).abs() < 1e-12);
        assert!((s.f1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn boolean_scoring() {
        let question = q(Gold::Boolean(true));
        let yes = SystemOutput { boolean: Some(true), ..Default::default() };
        let no = SystemOutput { boolean: Some(false), ..Default::default() };
        assert!(score(&question, &yes).right);
        assert!(!score(&question, &no).right);
        assert!(score(&question, &no).processed);
    }

    #[test]
    fn count_scoring() {
        let question = q(Gold::Count(3));
        let ok = SystemOutput { count: Some(3), ..Default::default() };
        let bad = SystemOutput { count: Some(2), ..Default::default() };
        assert!(score(&question, &ok).right);
        assert!(!score(&question, &bad).right);
    }

    #[test]
    fn out_of_scope_never_scores() {
        let question = q(Gold::OutOfScope);
        let s = score(&question, &SystemOutput::from_texts(vec!["junk".into()]));
        assert!(!s.right);
        assert_eq!(s.precision, 0.0);
    }

    #[test]
    fn aggregate_row() {
        let scores = vec![
            QScore { processed: true, right: true, partial: false, precision: 1.0, recall: 1.0 },
            QScore { processed: true, right: false, partial: true, precision: 0.5, recall: 0.5 },
            QScore::default(),
        ];
        let row = TableRow::aggregate(&scores);
        assert_eq!(row.processed, 2);
        assert_eq!(row.right, 1);
        assert_eq!(row.partial, 1);
        assert!((row.precision - 0.5).abs() < 1e-12);
    }

    #[test]
    fn setup_builds() {
        let st = store();
        let g = ganswer(&st);
        assert!(g.dict().len() > 20);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(median(&xs), 3.0);
        assert_eq!(percentile(&xs, 95.0), 5.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(median(&[7.0]), 7.0);
        // Even count: nearest-rank median is the lower middle.
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.0);
    }

    #[test]
    fn bench_artifacts_land_at_the_repo_root() {
        let p = bench_artifact_path("BENCH_online.json");
        let root = p.parent().unwrap();
        assert!(root.join("Cargo.toml").exists(), "{} is not the repo root", root.display());
    }
}
