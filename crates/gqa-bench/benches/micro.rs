//! Criterion microbenchmarks, one group per pipeline stage — the
//! per-component complement of the table-level harness binaries. Run with
//! `cargo bench -p gqa-bench`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gqa_core::matcher::MatcherConfig;
use gqa_core::topk::top_k;
use gqa_datagen::minidbp::{ambiguous_dbpedia, mini_dbpedia};
use gqa_datagen::patty::{mini_dict, mini_phrase_dataset};
use gqa_datagen::scale::{scale_graph, ScaleConfig};
use gqa_nlp::DependencyParser;
use gqa_paraphrase::miner::{mine, MinerConfig};
use gqa_rdf::paths::{simple_paths, PathConfig};
use gqa_rdf::schema::Schema;

const RUNNING_EXAMPLE: &str = "Who was married to an actor that played in Philadelphia?";

fn bench_nlp(c: &mut Criterion) {
    let parser = DependencyParser::new();
    c.bench_function("nlp/parse_running_example", |b| {
        b.iter(|| parser.parse(std::hint::black_box(RUNNING_EXAMPLE)))
    });
    c.bench_function("nlp/parse_long_coordination", |b| {
        b.iter(|| {
            parser.parse(std::hint::black_box(
                "Give me all people that were born in Vienna and died in Berlin and played in Philadelphia?",
            ))
        })
    });
}

fn bench_understanding(c: &mut Criterion) {
    let store = mini_dbpedia();
    let sys = gqa_bench::ganswer(&store);
    c.bench_function("understand/running_example", |b| {
        b.iter(|| sys.understand(std::hint::black_box(RUNNING_EXAMPLE)))
    });
    c.bench_function("answer/running_example_end_to_end", |b| {
        b.iter(|| sys.answer(std::hint::black_box(RUNNING_EXAMPLE)))
    });
}

fn bench_matching(c: &mut Criterion) {
    let store = ambiguous_dbpedia(8, 42);
    let sys = gqa_core::pipeline::GAnswer::new(
        &store,
        mini_dict(&store),
        gqa_core::pipeline::GAnswerConfig::default(),
    );
    let u = sys.understand(RUNNING_EXAMPLE).expect("understanding");
    let mapped = sys.map(&u.sqg).expect("mapping");
    let schema = Schema::new(&store);
    c.bench_function("match/topk_running_example_ambiguous", |b| {
        b.iter(|| {
            top_k(&store, &schema, std::hint::black_box(&mapped), &MatcherConfig::default(), 10)
        })
    });
    let no_prune = MatcherConfig { neighborhood_pruning: false, ..Default::default() };
    c.bench_function("match/topk_no_pruning", |b| {
        b.iter(|| top_k(&store, &schema, std::hint::black_box(&mapped), &no_prune, 10))
    });
}

fn bench_mining(c: &mut Criterion) {
    let store = mini_dbpedia();
    let dataset = mini_phrase_dataset();
    c.bench_function("mine/curated_dataset_theta4", |b| {
        b.iter_batched(
            || dataset.clone(),
            |ds| mine(&store, &ds, &MinerConfig::default()),
            BatchSize::SmallInput,
        )
    });
    let ted = store.expect_iri("dbr:Ted_Kennedy");
    let jr = store.expect_iri("dbr:John_F._Kennedy,_Jr.");
    let cfg = PathConfig::with_max_len(4).skip_schema_predicates(&store);
    c.bench_function("paths/simple_paths_theta4", |b| {
        b.iter(|| simple_paths(&store, std::hint::black_box(ted), jr, &cfg))
    });
}

fn bench_sparql(c: &mut Criterion) {
    let store = scale_graph(&ScaleConfig {
        entities: 20_000,
        predicates: 40,
        classes: 12,
        avg_degree: 4.0,
        seed: 9,
    });
    let query = "SELECT DISTINCT ?x WHERE { ?x <p:P0> ?y . ?y <p:P1> ?z . } LIMIT 50";
    c.bench_function("sparql/two_hop_join_20k_entities", |b| {
        b.iter(|| gqa_sparql::run(&store, std::hint::black_box(query)).unwrap())
    });
    c.bench_function("sparql/parse_only", |b| {
        b.iter(|| gqa_sparql::parse_query(std::hint::black_box(query)).unwrap())
    });
}

fn bench_linking(c: &mut Criterion) {
    let store = ambiguous_dbpedia(8, 42);
    let schema = Schema::new(&store);
    let linker = gqa_linker::Linker::new(&store, &schema);
    c.bench_function("link/ambiguous_mention", |b| {
        b.iter(|| linker.link(std::hint::black_box("Philadelphia")))
    });
}

criterion_group!(
    benches,
    bench_nlp,
    bench_understanding,
    bench_matching,
    bench_mining,
    bench_sparql,
    bench_linking
);
criterion_main!(benches);
