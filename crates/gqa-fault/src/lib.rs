//! Deterministic fault injection and cooperative resource budgets.
//!
//! Two small, zero-dependency primitives shared by every crate on the
//! answering hot path:
//!
//! * [`FaultPlan`] — a seeded set of injection rules attached to *named
//!   sites* (`rdf.bfs`, `linker.lookup`, `ta.probe`, `server.worker`;
//!   the durability layer adds `wal.append`, `wal.fsync`,
//!   `engine.compact`, and `manifest.write`).
//!   Code on the hot path calls [`FaultPlan::fire`] (usually via
//!   [`Exec::fire`]) at each site; with an empty plan this is a single
//!   `Option` branch, with rules it deterministically injects a panic,
//!   artificial latency, a spurious error, or allocation pressure.
//!   Determinism is per *call index*, not per thread schedule: rule `i`
//!   at site `s` fires on call `n` iff `hash(seed, s, i, n) < prob`, so
//!   the number of injected faults over `N` calls is a pure function of
//!   `(plan, N)` no matter how threads interleave.
//!
//! * [`Budget`] + [`Exec`] — per-question resource limits (BFS frontier
//!   nodes, candidate mappings per phrase, TA rounds, approximate bytes)
//!   plus a deadline, checked *cooperatively inside* the exploration
//!   loops. Exhaustion does not unwind: loops observe
//!   [`Exec::should_stop`] / a `false` return from a `charge_*` call,
//!   stop expanding, and return whatever partial results they already
//!   have. The pipeline inspects [`Exec::tripped`] afterwards and
//!   reports a degraded (or deadline-expired) answer.
//!
//! Both types are `Option<Arc<_>>` under the hood: `Default`/`none()`
//! cost nothing on the hot path, so the instrumentation is compiled in
//! always and enabled per run.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Fault plans
// ---------------------------------------------------------------------------

/// What an injection rule does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `panic!` at the site (exercises worker isolation / `catch_unwind`).
    Panic,
    /// Sleep `param` milliseconds before returning (exercises deadlines).
    Latency,
    /// Return a [`FaultError`] from `fire` (exercises error taxonomy).
    Error,
    /// Allocate-and-touch `param` bytes, then free them (memory pressure).
    Alloc,
    /// Return a [`FaultError`] with [`FaultError::torn`] set — a write
    /// failed after part of it may already have reached disk. Durable
    /// sinks (the WAL) respond by writing a deliberately partial record
    /// and poisoning themselves, so torn-tail recovery after restart is
    /// exercised end to end.
    Torn,
}

impl FaultKind {
    fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "panic" => Some(FaultKind::Panic),
            "latency" => Some(FaultKind::Latency),
            "error" => Some(FaultKind::Error),
            "alloc" => Some(FaultKind::Alloc),
            "torn" => Some(FaultKind::Torn),
            _ => None,
        }
    }

    fn default_param(self) -> u64 {
        match self {
            FaultKind::Latency => 10,    // ms
            FaultKind::Alloc => 1 << 20, // bytes
            FaultKind::Panic | FaultKind::Error | FaultKind::Torn => 0,
        }
    }
}

/// The spurious error injected by a `FaultKind::Error` rule.
///
/// Sites that can observe it degrade locally (an empty candidate list, an
/// empty probe result); nothing on the hot path propagates it upward as a
/// hard failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// The site the error was injected at.
    pub site: String,
    /// `true` for [`FaultKind::Torn`] rules: the failed operation may
    /// have left a partial write behind, and the observing sink should
    /// simulate exactly that (instead of failing cleanly before writing).
    pub torn: bool,
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = if self.torn { "torn write" } else { "spurious error" };
        write!(f, "injected fault: {what} at site {:?}", self.site)
    }
}

impl std::error::Error for FaultError {}

#[derive(Debug)]
struct Rule {
    site: String,
    kind: FaultKind,
    prob: f64,
    param: u64,
    calls: AtomicU64,
    fired: AtomicU64,
}

#[derive(Debug)]
struct PlanInner {
    seed: u64,
    rules: Vec<Rule>,
}

/// A seeded, deterministic set of fault-injection rules.
///
/// Cloning shares the underlying rules *and their counters*, so a plan
/// handed to several components still reports one coherent
/// [`fired`](FaultPlan::fired) tally.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan(Option<Arc<PlanInner>>);

/// FNV-1a, for folding site names into the decision hash.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// splitmix64 finalizer — decorrelates the combined (seed, site, rule,
/// call) word into 64 uniform bits.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Deterministic per-call firing decision.
fn decide(seed: u64, site_hash: u64, rule_idx: usize, call: u64, prob: f64) -> bool {
    if prob >= 1.0 {
        return true;
    }
    if prob <= 0.0 {
        return false;
    }
    let word = seed
        ^ site_hash
        ^ (rule_idx as u64).wrapping_mul(0x9e3779b97f4a7c15)
        ^ call.wrapping_mul(0xd1b54a32d192ed03);
    // 53 uniform mantissa bits -> [0, 1).
    let unit = (splitmix64(word) >> 11) as f64 / (1u64 << 53) as f64;
    unit < prob
}

impl FaultPlan {
    /// The empty plan: every `fire` is a single branch and never injects.
    pub fn none() -> FaultPlan {
        FaultPlan(None)
    }

    /// `true` when the plan has at least one rule.
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Parse a plan spec: rules separated by `;` or `,`, each
    /// `site:kind[:prob[:param]]`.
    ///
    /// `kind` is one of `panic`, `latency`, `error`, `alloc`; `prob`
    /// defaults to 1.0; `param` is milliseconds for `latency` (default
    /// 10) and bytes for `alloc` (default 1 MiB). Examples:
    ///
    /// ```text
    /// server.worker:panic:0.05
    /// rdf.bfs:latency:0.5:20;linker.lookup:error:0.3
    /// ```
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, String> {
        let mut rules = Vec::new();
        for part in spec.split([';', ',']) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let fields: Vec<&str> = part.split(':').collect();
            if fields.len() < 2 || fields.len() > 4 {
                return Err(format!("bad fault rule {part:?}: want site:kind[:prob[:param]]"));
            }
            let site = fields[0].trim();
            if site.is_empty() {
                return Err(format!("bad fault rule {part:?}: empty site"));
            }
            let kind = FaultKind::parse(fields[1].trim())
                .ok_or_else(|| format!("bad fault kind {:?} in {part:?}", fields[1]))?;
            let prob: f64 = match fields.get(2) {
                Some(p) => p
                    .trim()
                    .parse()
                    .map_err(|e| format!("bad probability {:?} in {part:?}: {e}", fields[2]))?,
                None => 1.0,
            };
            if !(0.0..=1.0).contains(&prob) {
                return Err(format!("probability {prob} out of [0,1] in {part:?}"));
            }
            let param: u64 = match fields.get(3) {
                Some(p) => p
                    .trim()
                    .parse()
                    .map_err(|e| format!("bad parameter {:?} in {part:?}: {e}", fields[3]))?,
                None => kind.default_param(),
            };
            rules.push(Rule {
                site: site.to_owned(),
                kind,
                prob,
                param,
                calls: AtomicU64::new(0),
                fired: AtomicU64::new(0),
            });
        }
        if rules.is_empty() {
            return Ok(FaultPlan::none());
        }
        Ok(FaultPlan(Some(Arc::new(PlanInner { seed, rules }))))
    }

    /// Build a plan from `GQA_FAULTS` (spec) and `GQA_FAULT_SEED`
    /// (default 0). Empty/unset spec means the empty plan; a malformed
    /// spec is an error so chaos runs fail loudly instead of running
    /// clean.
    pub fn from_env() -> Result<FaultPlan, String> {
        let spec = match std::env::var("GQA_FAULTS") {
            Ok(s) if !s.trim().is_empty() => s,
            _ => return Ok(FaultPlan::none()),
        };
        let seed = match std::env::var("GQA_FAULT_SEED") {
            Ok(s) => s.trim().parse().map_err(|e| format!("bad GQA_FAULT_SEED {s:?}: {e}"))?,
            Err(_) => 0,
        };
        FaultPlan::parse(&spec, seed)
    }

    /// Pass through the named site: injects panics / latency / allocation
    /// pressure inline and returns `Err` for `error` rules.
    #[inline]
    pub fn fire(&self, site: &str) -> Result<(), FaultError> {
        self.fire_counted(site).1
    }

    /// [`FaultPlan::fire`], additionally reporting how many rules fired on
    /// *this* call — the per-request attribution the flight recorder and
    /// access log use (the cumulative [`FaultPlan::fired`] tally cannot be
    /// attributed to one request under concurrency). A `panic` rule
    /// unwinds before the count is returned; callers see that request as a
    /// 500 instead.
    #[inline]
    pub fn fire_counted(&self, site: &str) -> (u64, Result<(), FaultError>) {
        match &self.0 {
            None => (0, Ok(())),
            Some(inner) => inner.fire_counted(site),
        }
    }

    /// Total number of times rules at `site` have fired.
    pub fn fired(&self, site: &str) -> u64 {
        self.0.as_ref().map_or(0, |p| {
            p.rules.iter().filter(|r| r.site == site).map(|r| r.fired.load(Ordering::Relaxed)).sum()
        })
    }

    /// Total number of times any rule has fired.
    pub fn fired_total(&self) -> u64 {
        self.0.as_ref().map_or(0, |p| p.rules.iter().map(|r| r.fired.load(Ordering::Relaxed)).sum())
    }

    /// Total number of `fire` passes through rules at `site` (fired or
    /// not).
    pub fn calls(&self, site: &str) -> u64 {
        self.0.as_ref().map_or(0, |p| {
            p.rules.iter().filter(|r| r.site == site).map(|r| r.calls.load(Ordering::Relaxed)).sum()
        })
    }
}

impl PlanInner {
    fn fire_counted(&self, site: &str) -> (u64, Result<(), FaultError>) {
        let mut fired = 0u64;
        for (idx, rule) in self.rules.iter().enumerate() {
            if rule.site != site {
                continue;
            }
            let call = rule.calls.fetch_add(1, Ordering::Relaxed);
            if !decide(self.seed, fnv1a(site), idx, call, rule.prob) {
                continue;
            }
            rule.fired.fetch_add(1, Ordering::Relaxed);
            fired += 1;
            match rule.kind {
                FaultKind::Panic => {
                    panic!("injected fault: panic at site {site:?} (call {call})")
                }
                FaultKind::Latency => std::thread::sleep(Duration::from_millis(rule.param)),
                FaultKind::Alloc => {
                    // Touch a byte per page so the allocation is really
                    // committed, then drop it.
                    let mut buf = vec![0u8; rule.param as usize];
                    let mut i = 0;
                    while i < buf.len() {
                        buf[i] = 1;
                        i += 4096;
                    }
                    std::hint::black_box(&buf);
                }
                FaultKind::Error => {
                    return (fired, Err(FaultError { site: site.to_owned(), torn: false }))
                }
                FaultKind::Torn => {
                    return (fired, Err(FaultError { site: site.to_owned(), torn: true }))
                }
            }
        }
        (fired, Ok(()))
    }
}

// ---------------------------------------------------------------------------
// Budgets
// ---------------------------------------------------------------------------

/// Per-question resource limits. The default is unlimited everywhere, in
/// which case carrying a `Budget` costs nothing (see [`Exec::new`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Max nodes pushed onto any BFS/backtracking frontier, summed over
    /// the whole question.
    pub max_frontier: usize,
    /// Max candidate mappings kept per phrase during query mapping.
    pub max_candidates: usize,
    /// Max TA rounds during top-k matching.
    pub max_ta_rounds: usize,
    /// Approximate bytes of match/result state materialized.
    pub max_bytes: usize,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget {
            max_frontier: usize::MAX,
            max_candidates: usize::MAX,
            max_ta_rounds: usize::MAX,
            max_bytes: usize::MAX,
        }
    }
}

impl Budget {
    /// The default: no limit on anything.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// `true` when every limit is `usize::MAX`.
    pub fn is_unlimited(&self) -> bool {
        *self == Budget::default()
    }
}

/// Which budget tripped first for a question.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    Frontier,
    Candidates,
    TaRounds,
    Bytes,
    Deadline,
}

impl BudgetKind {
    /// Stable label, used in HTTP responses and metric label values.
    pub fn as_str(self) -> &'static str {
        match self {
            BudgetKind::Frontier => "frontier",
            BudgetKind::Candidates => "candidates",
            BudgetKind::TaRounds => "ta_rounds",
            BudgetKind::Bytes => "bytes",
            BudgetKind::Deadline => "deadline",
        }
    }

    /// Every kind, for metric pre-registration.
    pub const ALL: [BudgetKind; 5] = [
        BudgetKind::Frontier,
        BudgetKind::Candidates,
        BudgetKind::TaRounds,
        BudgetKind::Bytes,
        BudgetKind::Deadline,
    ];

    fn from_u8(v: u8) -> Option<BudgetKind> {
        match v {
            1 => Some(BudgetKind::Frontier),
            2 => Some(BudgetKind::Candidates),
            3 => Some(BudgetKind::TaRounds),
            4 => Some(BudgetKind::Bytes),
            5 => Some(BudgetKind::Deadline),
            _ => None,
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            BudgetKind::Frontier => 1,
            BudgetKind::Candidates => 2,
            BudgetKind::TaRounds => 3,
            BudgetKind::Bytes => 4,
            BudgetKind::Deadline => 5,
        }
    }
}

/// How often `charge_*` calls re-read the clock for the deadline check.
const DEADLINE_STRIDE: usize = 64;

#[derive(Debug)]
struct ExecInner {
    plan: FaultPlan,
    limits: Budget,
    deadline: Option<Instant>,
    frontier: AtomicUsize,
    bytes: AtomicUsize,
    rounds: AtomicUsize,
    ticks: AtomicUsize,
    tripped: AtomicU8,
    fires: AtomicU64,
}

/// Per-question execution context: the fault plan, the budget counters,
/// and the deadline, shared by every loop that works on one question.
///
/// `Exec::none()` (and `Exec::new` with nothing configured) is a `None`
/// handle: every check is a single branch, preserving the pre-budget
/// fast path bit for bit.
#[derive(Debug, Clone, Default)]
pub struct Exec(Option<Arc<ExecInner>>);

impl Exec {
    /// The inert context: nothing to inject, nothing to limit.
    pub fn none() -> Exec {
        Exec(None)
    }

    /// Build a context for one question. Returns the inert handle when
    /// the plan is empty, the budget unlimited, and there is no
    /// deadline — so unconfigured runs skip all accounting.
    pub fn new(plan: &FaultPlan, limits: Budget, deadline: Option<Instant>) -> Exec {
        if !plan.is_active() && limits.is_unlimited() && deadline.is_none() {
            return Exec(None);
        }
        Exec(Some(Arc::new(ExecInner {
            plan: plan.clone(),
            limits,
            deadline,
            frontier: AtomicUsize::new(0),
            bytes: AtomicUsize::new(0),
            rounds: AtomicUsize::new(0),
            ticks: AtomicUsize::new(0),
            tripped: AtomicU8::new(0),
            fires: AtomicU64::new(0),
        })))
    }

    /// `true` when this is the inert handle.
    pub fn is_none(&self) -> bool {
        self.0.is_none()
    }

    /// Fault-injection pass-through for the named site, accumulating the
    /// per-question fired count for [`Exec::faults_fired`].
    #[inline]
    pub fn fire(&self, site: &str) -> Result<(), FaultError> {
        match &self.0 {
            None => Ok(()),
            Some(inner) => {
                let (n, out) = inner.plan.fire_counted(site);
                if n > 0 {
                    inner.fires.fetch_add(n, Ordering::Relaxed);
                }
                out
            }
        }
    }

    /// Number of fault injections that fired within *this* question's
    /// context — the request-scoped view the response and flight recorder
    /// report (a `panic` injection unwinds before being counted here; the
    /// request surfaces as a 500 instead).
    pub fn faults_fired(&self) -> u64 {
        self.0.as_ref().map_or(0, |i| i.fires.load(Ordering::Relaxed))
    }

    /// Account `n` frontier nodes. Returns `false` when the caller
    /// should stop exploring (this or an earlier check tripped).
    #[inline]
    pub fn charge_frontier(&self, n: usize) -> bool {
        let Some(inner) = &self.0 else { return true };
        inner.charge(&inner.frontier, n, inner.limits.max_frontier, BudgetKind::Frontier)
    }

    /// Account `n` approximate bytes of materialized results.
    #[inline]
    pub fn charge_bytes(&self, n: usize) -> bool {
        let Some(inner) = &self.0 else { return true };
        inner.charge(&inner.bytes, n, inner.limits.max_bytes, BudgetKind::Bytes)
    }

    /// Account the start of one TA round. Returns `false` when the round
    /// budget is exhausted and the TA loop should cut off.
    #[inline]
    pub fn begin_round(&self) -> bool {
        let Some(inner) = &self.0 else { return true };
        inner.charge(&inner.rounds, 1, inner.limits.max_ta_rounds, BudgetKind::TaRounds)
    }

    /// Cap a candidate list length to the per-phrase budget, recording a
    /// trip when it actually truncates. (Truncation degrades the answer
    /// but does not stop the pipeline, so this does not set the stop
    /// flag other loops observe.)
    #[inline]
    pub fn cap_candidates(&self, len: usize) -> usize {
        let Some(inner) = &self.0 else { return len };
        let cap = inner.limits.max_candidates;
        if len > cap {
            inner.trip(BudgetKind::Candidates);
            cap
        } else {
            len
        }
    }

    /// Cheap cooperative check for loop heads: `true` once any budget or
    /// the deadline has tripped. Also advances the strided deadline
    /// probe, so pure read loops stay deadline-aware without charging.
    #[inline]
    pub fn should_stop(&self) -> bool {
        let Some(inner) = &self.0 else { return false };
        if inner.stopped() {
            return true;
        }
        !inner.check_deadline()
    }

    /// The first budget that tripped, if any.
    pub fn tripped(&self) -> Option<BudgetKind> {
        self.0.as_ref().and_then(|i| BudgetKind::from_u8(i.tripped.load(Ordering::Relaxed)))
    }

    /// Frontier nodes charged so far.
    pub fn frontier_used(&self) -> usize {
        self.0.as_ref().map_or(0, |i| i.frontier.load(Ordering::Relaxed))
    }

    /// Approximate bytes charged so far.
    pub fn bytes_used(&self) -> usize {
        self.0.as_ref().map_or(0, |i| i.bytes.load(Ordering::Relaxed))
    }

    /// TA rounds charged so far.
    pub fn rounds_used(&self) -> usize {
        self.0.as_ref().map_or(0, |i| i.rounds.load(Ordering::Relaxed))
    }
}

impl ExecInner {
    fn stopped(&self) -> bool {
        // Candidate truncation degrades without stopping other loops.
        matches!(
            BudgetKind::from_u8(self.tripped.load(Ordering::Relaxed)),
            Some(k) if k != BudgetKind::Candidates
        )
    }

    fn trip(&self, kind: BudgetKind) {
        // Keep the first trip; later ones are consequences of it.
        let _ =
            self.tripped.compare_exchange(0, kind.to_u8(), Ordering::Relaxed, Ordering::Relaxed);
    }

    fn charge(&self, counter: &AtomicUsize, n: usize, limit: usize, kind: BudgetKind) -> bool {
        if self.stopped() {
            return false;
        }
        if limit != usize::MAX {
            let total = counter.fetch_add(n, Ordering::Relaxed).saturating_add(n);
            if total > limit {
                self.trip(kind);
                return false;
            }
        }
        self.check_deadline()
    }

    /// Re-reads the clock every `DEADLINE_STRIDE` calls; returns `false`
    /// once the deadline has passed.
    fn check_deadline(&self) -> bool {
        let Some(d) = self.deadline else { return true };
        if !self.ticks.fetch_add(1, Ordering::Relaxed).is_multiple_of(DEADLINE_STRIDE) {
            return true;
        }
        if Instant::now() > d {
            self.trip(BudgetKind::Deadline);
            false
        } else {
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_injects() {
        let plan = FaultPlan::none();
        for _ in 0..1000 {
            plan.fire("rdf.bfs").unwrap();
        }
        assert_eq!(plan.fired_total(), 0);
        assert!(!plan.is_active());
    }

    #[test]
    fn parse_accepts_the_documented_grammar() {
        let plan = FaultPlan::parse("server.worker:panic:0.05; rdf.bfs:latency:0.5:20", 7).unwrap();
        assert!(plan.is_active());
        let plan2 = FaultPlan::parse("linker.lookup:error:0.3,ta.probe:alloc", 7).unwrap();
        assert!(plan2.is_active());
        assert!(FaultPlan::parse("", 7).unwrap().0.is_none());
        assert!(FaultPlan::parse("  ;  ", 7).unwrap().0.is_none());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in ["nocolon", "x:frob", "x:panic:2.0", "x:panic:-0.1", "x:panic:nan:1:2", ":panic"]
        {
            assert!(FaultPlan::parse(bad, 0).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn error_rules_return_err_and_count() {
        let plan = FaultPlan::parse("linker.lookup:error:1.0", 0).unwrap();
        assert!(plan.fire("linker.lookup").is_err());
        assert!(plan.fire("other.site").is_ok());
        assert_eq!(plan.fired("linker.lookup"), 1);
        assert_eq!(plan.calls("linker.lookup"), 1);
        assert_eq!(plan.fired("other.site"), 0);
    }

    #[test]
    fn torn_rules_flag_the_error_as_torn() {
        let plan = FaultPlan::parse("wal.append:torn:1.0", 0).unwrap();
        let err = plan.fire("wal.append").unwrap_err();
        assert!(err.torn);
        assert!(err.to_string().contains("torn write"), "{err}");
        // Plain error rules stay un-torn.
        let plan = FaultPlan::parse("wal.fsync:error:1.0", 0).unwrap();
        assert!(!plan.fire("wal.fsync").unwrap_err().torn);
    }

    #[test]
    fn firing_counts_are_deterministic_in_the_seed() {
        let count = |seed: u64| {
            let plan = FaultPlan::parse("ta.probe:error:0.25", seed).unwrap();
            (0..400).filter(|_| plan.fire("ta.probe").is_err()).count() as u64
        };
        let a = count(42);
        assert_eq!(a, count(42), "same seed, same firing pattern");
        assert_eq!(a, {
            let plan = FaultPlan::parse("ta.probe:error:0.25", 42).unwrap();
            (0..400).filter(|_| plan.fire("ta.probe").is_err()).count() as u64
        });
        // ~25% of 400, loosely.
        assert!((50..=150).contains(&a), "fired {a} of 400 at p=0.25");
        assert_ne!(count(42), count(43), "different seeds decorrelate");
    }

    #[test]
    fn firing_count_is_schedule_independent() {
        // Same total number of calls split across threads fires the same
        // number of faults as a serial run, because decisions key on the
        // per-rule call index.
        let serial = FaultPlan::parse("ta.probe:error:0.3", 9).unwrap();
        for _ in 0..300 {
            let _ = serial.fire("ta.probe");
        }
        let threaded = FaultPlan::parse("ta.probe:error:0.3", 9).unwrap();
        std::thread::scope(|s| {
            for _ in 0..3 {
                let plan = threaded.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        let _ = plan.fire("ta.probe");
                    }
                });
            }
        });
        assert_eq!(serial.fired("ta.probe"), threaded.fired("ta.probe"));
        assert_eq!(threaded.calls("ta.probe"), 300);
    }

    #[test]
    fn panic_rules_panic_with_a_recognizable_payload() {
        let plan = FaultPlan::parse("server.worker:panic", 0).unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = plan.fire("server.worker");
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected fault"), "payload was {msg:?}");
        assert_eq!(plan.fired("server.worker"), 1);
    }

    #[test]
    fn latency_rules_sleep() {
        let plan = FaultPlan::parse("rdf.bfs:latency:1.0:30", 0).unwrap();
        let t0 = Instant::now();
        plan.fire("rdf.bfs").unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn alloc_rules_allocate_and_return() {
        let plan = FaultPlan::parse("ta.probe:alloc:1.0:65536", 0).unwrap();
        plan.fire("ta.probe").unwrap();
        assert_eq!(plan.fired("ta.probe"), 1);
    }

    #[test]
    fn fire_counted_reports_per_call_fires() {
        let plan = FaultPlan::parse("linker.lookup:error:1.0", 0).unwrap();
        let (n, out) = plan.fire_counted("linker.lookup");
        assert_eq!(n, 1);
        assert!(out.is_err());
        let (n, out) = plan.fire_counted("other.site");
        assert_eq!(n, 0);
        assert!(out.is_ok());
        // Two always-fire latency rules at the same site both count.
        let plan = FaultPlan::parse("a:latency:1.0:0;a:latency:1.0:0", 0).unwrap();
        assert_eq!(plan.fire_counted("a").0, 2);
    }

    #[test]
    fn exec_accumulates_faults_fired_per_question() {
        let plan = FaultPlan::parse("ta.probe:error:1.0", 0).unwrap();
        let exec = Exec::new(&plan, Budget::default(), None);
        assert_eq!(exec.faults_fired(), 0);
        let _ = exec.fire("ta.probe");
        let _ = exec.fire("ta.probe");
        let _ = exec.fire("rdf.bfs");
        assert_eq!(exec.faults_fired(), 2);
        // A fresh exec over the same (shared) plan starts from zero even
        // though the plan's cumulative tally keeps growing.
        let exec2 = Exec::new(&plan, Budget::default(), None);
        assert_eq!(exec2.faults_fired(), 0);
        assert_eq!(plan.fired("ta.probe"), 2);
    }

    #[test]
    fn inert_exec_charges_nothing() {
        let exec = Exec::new(&FaultPlan::none(), Budget::default(), None);
        assert!(exec.is_none());
        assert!(exec.charge_frontier(1 << 40));
        assert!(exec.charge_bytes(1 << 40));
        assert!(exec.begin_round());
        assert!(!exec.should_stop());
        assert_eq!(exec.tripped(), None);
        assert_eq!(exec.cap_candidates(1000), 1000);
        assert_eq!(exec.faults_fired(), 0);
    }

    #[test]
    fn frontier_budget_trips_once_and_sticks() {
        let budget = Budget { max_frontier: 100, ..Budget::default() };
        let exec = Exec::new(&FaultPlan::none(), budget, None);
        assert!(!exec.is_none());
        let mut stopped_at = None;
        for i in 0..100 {
            if !exec.charge_frontier(10) {
                stopped_at = Some(i);
                break;
            }
        }
        assert_eq!(stopped_at, Some(10), "101st..110th node overflows the 100 limit");
        assert_eq!(exec.tripped(), Some(BudgetKind::Frontier));
        assert!(exec.should_stop());
        // Later charges of any kind observe the trip.
        assert!(!exec.charge_bytes(1));
        assert!(!exec.begin_round());
    }

    #[test]
    fn round_budget_trips() {
        let budget = Budget { max_ta_rounds: 3, ..Budget::default() };
        let exec = Exec::new(&FaultPlan::none(), budget, None);
        assert!(exec.begin_round());
        assert!(exec.begin_round());
        assert!(exec.begin_round());
        assert!(!exec.begin_round());
        assert_eq!(exec.tripped(), Some(BudgetKind::TaRounds));
    }

    #[test]
    fn candidate_cap_truncates_without_stopping() {
        let budget = Budget { max_candidates: 5, ..Budget::default() };
        let exec = Exec::new(&FaultPlan::none(), budget, None);
        assert_eq!(exec.cap_candidates(3), 3);
        assert_eq!(exec.tripped(), None);
        assert_eq!(exec.cap_candidates(9), 5);
        assert_eq!(exec.tripped(), Some(BudgetKind::Candidates));
        // Truncation alone must not halt the rest of the pipeline.
        assert!(!exec.should_stop());
        assert!(exec.charge_frontier(1));
    }

    #[test]
    fn deadline_trips_inside_charge_loops() {
        let deadline = Instant::now() - Duration::from_millis(1);
        let exec = Exec::new(&FaultPlan::none(), Budget::default(), Some(deadline));
        assert!(!exec.is_none());
        let mut stopped = false;
        for _ in 0..(DEADLINE_STRIDE * 2 + 2) {
            if !exec.charge_frontier(1) {
                stopped = true;
                break;
            }
        }
        assert!(stopped, "expired deadline must stop a charge loop within a stride");
        assert_eq!(exec.tripped(), Some(BudgetKind::Deadline));
    }

    #[test]
    fn should_stop_alone_observes_the_deadline() {
        let deadline = Instant::now() - Duration::from_millis(1);
        let exec = Exec::new(&FaultPlan::none(), Budget::default(), Some(deadline));
        let hit = (0..(DEADLINE_STRIDE * 2 + 2)).any(|_| exec.should_stop());
        assert!(hit);
        assert_eq!(exec.tripped(), Some(BudgetKind::Deadline));
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let deadline = Instant::now() + Duration::from_secs(3600);
        let exec = Exec::new(&FaultPlan::none(), Budget::default(), Some(deadline));
        for _ in 0..500 {
            assert!(exec.charge_frontier(1));
        }
        assert_eq!(exec.tripped(), None);
    }

    #[test]
    fn exec_clones_share_counters() {
        let budget = Budget { max_frontier: 10, ..Budget::default() };
        let exec = Exec::new(&FaultPlan::none(), budget, None);
        let clone = exec.clone();
        assert!(exec.charge_frontier(8));
        assert!(!clone.charge_frontier(8));
        assert_eq!(exec.tripped(), Some(BudgetKind::Frontier));
    }

    #[test]
    fn budget_kind_labels_are_stable() {
        let labels: Vec<&str> = BudgetKind::ALL.iter().map(|k| k.as_str()).collect();
        assert_eq!(labels, ["frontier", "candidates", "ta_rounds", "bytes", "deadline"]);
    }
}
