//! Use the pipeline as a natural-language → SPARQL translator: the top-k
//! subgraph matches each determine one executable SPARQL query (Algorithm
//! 3's title: "Generating Top-k SPARQL Queries"), which this example runs
//! back through the bundled SPARQL engine to verify.
//!
//! ```text
//! cargo run --release --example nl2sparql
//! ```

use ganswer::prelude::*;

fn main() {
    let store = ganswer::datagen::mini_dbpedia();
    let system = GAnswer::new(&store, ganswer::mini_dict(&store), GAnswerConfig::default());

    let questions = [
        "Who is the mayor of Berlin?",
        "Which books by Kerouac were published by Viking Press?",
        "Who is the uncle of John F. Kennedy, Jr.?",
        "Is Michelle Obama the wife of Barack Obama?",
    ];

    for q in questions {
        println!("Q: {q}");
        let response = system.answer(q);
        for sparql in response.sparql.iter().take(2) {
            println!("  SPARQL: {sparql}");
            // Round trip: the generated query is executable and returns the
            // same answers.
            let rs = ganswer::sparql::run(&store, sparql).expect("generated SPARQL parses");
            if let Some(b) = rs.boolean {
                println!("    → {b}");
            }
            for row in rs.rows.iter().take(5) {
                println!("    → {}", store.term(row[0]));
            }
        }
        println!();
    }
}
