//! Quickstart: build the system and ask a question.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ganswer::prelude::*;

fn main() {
    // 1. A knowledge graph. Any `Store` works — load your own N-Triples via
    //    `ganswer::rdf::ntriples::parse` — here we use the bundled
    //    mini-DBpedia.
    let store = ganswer::datagen::mini_dbpedia();

    // 2. The offline phase: mine the paraphrase dictionary (relation
    //    phrase → predicate / predicate path, scored by tf-idf).
    let dict = ganswer::mini_dict(&store);

    // 3. The online system.
    let system = GAnswer::new(&store, dict, GAnswerConfig::default());

    // 4. Ask.
    let question = "Who was married to an actor that played in Philadelphia?";
    let response = system.answer(question);

    println!("Q: {question}");
    for a in &response.answers {
        println!("A: {}   (score {:.3})", a.text, a.score);
    }
    println!("\nSemantic query graph:\n{}", response.sqg.as_ref().expect("answered"));
    println!("Generated SPARQL:");
    for q in &response.sparql {
        println!("  {q}");
    }
    println!(
        "\nunderstanding: {:?}, evaluation: {:?}",
        response.understanding_time, response.evaluation_time
    );
}
