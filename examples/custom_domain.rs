//! Build a Q/A system over your *own* domain from scratch: a music
//! knowledge base authored as N-Triples text, a hand-listed relation-phrase
//! dataset, mining, and questions — the full user-facing workflow on data
//! the library has never seen.
//!
//! ```text
//! cargo run --release --example custom_domain
//! ```

use ganswer::paraphrase::miner::{mine, MinerConfig};
use ganswer::paraphrase::{PhraseDataset, PhraseEntry};
use ganswer::prelude::*;

const MUSIC_KB: &str = r#"
<mb:The_Beatles> <rdf:type> <mo:Band> .
<mb:The_Beatles> <mo:member> <mb:John_Lennon> .
<mb:The_Beatles> <mo:member> <mb:Paul_McCartney> .
<mb:The_Beatles> <mo:member> <mb:George_Harrison> .
<mb:The_Beatles> <mo:member> <mb:Ringo_Starr> .
<mb:John_Lennon> <rdf:type> <mo:Musician> .
<mb:Paul_McCartney> <rdf:type> <mo:Musician> .
<mb:George_Harrison> <rdf:type> <mo:Musician> .
<mb:Ringo_Starr> <rdf:type> <mo:Musician> .
<mb:Abbey_Road> <rdf:type> <mo:Album> .
<mb:Abbey_Road> <mo:recordedBy> <mb:The_Beatles> .
<mb:Let_It_Be> <rdf:type> <mo:Album> .
<mb:Let_It_Be> <mo:recordedBy> <mb:The_Beatles> .
<mb:Imagine> <rdf:type> <mo:Album> .
<mb:Imagine> <mo:recordedBy> <mb:John_Lennon> .
<mb:John_Lennon> <mo:spouse> <mb:Yoko_Ono> .
<mb:Yoko_Ono> <rdf:type> <mo:Musician> .
<mb:Nirvana> <rdf:type> <mo:Band> .
<mb:Nirvana> <mo:member> <mb:Kurt_Cobain> .
<mb:Nirvana> <mo:member> <mb:Dave_Grohl> .
<mb:Kurt_Cobain> <rdf:type> <mo:Musician> .
<mb:Dave_Grohl> <rdf:type> <mo:Musician> .
<mb:Nevermind> <rdf:type> <mo:Album> .
<mb:Nevermind> <mo:recordedBy> <mb:Nirvana> .
<mb:Foo_Fighters> <rdf:type> <mo:Band> .
<mb:Foo_Fighters> <mo:member> <mb:Dave_Grohl> .
<mo:Band> <rdfs:label> "band" .
<mo:Album> <rdfs:label> "album" .
<mo:Musician> <rdfs:label> "musician" .
"#;

fn main() {
    // 1. Parse the hand-authored knowledge base.
    let store = ganswer::rdf::ntriples::parse(MUSIC_KB).expect("valid N-Triples");
    println!("{}\n", ganswer::rdf::stats::StoreStats::collect(&store));

    // 2. List relation phrases with a few supporting pairs each (in a
    //    production setting these come from a Patty/ReVerb-style corpus).
    let phrases = PhraseDataset::new(vec![
        PhraseEntry::new(
            "member of",
            vec![
                ("mb:John_Lennon".into(), "mb:The_Beatles".into()),
                ("mb:Kurt_Cobain".into(), "mb:Nirvana".into()),
            ],
        ),
        PhraseEntry::new(
            "record",
            vec![
                ("mb:The_Beatles".into(), "mb:Abbey_Road".into()),
                ("mb:Nirvana".into(), "mb:Nevermind".into()),
            ],
        ),
        PhraseEntry::new("be married to", vec![("mb:John_Lennon".into(), "mb:Yoko_Ono".into())]),
        // A "bandmate of" phrase only realizable as a 2-hop path:
        // musician ←member— band —member→ musician.
        PhraseEntry::new(
            "bandmate of",
            vec![
                ("mb:John_Lennon".into(), "mb:Ringo_Starr".into()),
                ("mb:Paul_McCartney".into(), "mb:George_Harrison".into()),
            ],
        ),
    ]);

    // 3. Mine and inspect the dictionary.
    let dict = mine(&store, &phrases, &MinerConfig::default());
    println!("mined dictionary:");
    for (phrase, maps) in dict.iter() {
        for m in maps.iter().take(1) {
            println!(
                "  {:16} → {}  (conf {:.2})",
                format!("{phrase:?}"),
                m.path.display(&store),
                m.confidence
            );
        }
    }

    // 4. Ask.
    let system = GAnswer::new(&store, dict, GAnswerConfig::default());
    for q in [
        "Give me all members of Nirvana.",
        "Which albums were recorded by The Beatles?",
        "Who is married to John Lennon?",
        "Who is the bandmate of Ringo Starr?",
        "Give me all albums.",
    ] {
        let r = system.answer(q);
        println!("\nQ: {q}");
        if let Some(f) = &r.failure {
            println!("   no answer ({f:?})");
        }
        for a in &r.answers {
            println!("   {}", a.text);
        }
    }
}
