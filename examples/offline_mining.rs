//! The offline phase end to end: mine a paraphrase dictionary from relation
//! phrases + supporting entity pairs (Algorithm 1), serialize it, and
//! exercise the maintenance operations of §3 (incremental re-mining for new
//! predicates, dropping removed predicates).
//!
//! ```text
//! cargo run --release --example offline_mining
//! ```

use ganswer::paraphrase::miner::{
    drop_removed_predicates, mine, remine_for_new_predicates, MinerConfig,
};
use ganswer::paraphrase::ParaphraseDict;
use ganswer::rdf::StoreBuilder;

fn main() {
    // A small family graph: "uncle of" needs a length-3 predicate path and
    // a hasGender noise hub exists (the paper's Figure 4).
    let mut b = StoreBuilder::new();
    for (s, p, o) in [
        ("Joseph_Sr", "hasChild", "Ted"),
        ("Joseph_Sr", "hasChild", "JFK"),
        ("JFK", "hasChild", "JFK_jr"),
        ("JFK", "hasChild", "Caroline"),
        ("Melanie", "spouse", "Antonio"),
        ("Jackie", "spouse", "JFK"),
    ] {
        b.add_iri(s, p, o);
    }
    for p in ["Ted", "JFK", "JFK_jr", "Joseph_Sr", "Antonio"] {
        b.add_iri(p, "hasGender", "male");
    }
    for p in ["Melanie", "Jackie", "Caroline"] {
        b.add_iri(p, "hasGender", "female");
    }
    let store = b.build();

    // Relation phrases with supporting pairs (the paper's Table 2).
    let dataset = ganswer::paraphrase::PhraseDataset::new(vec![
        ganswer::paraphrase::PhraseEntry::new(
            "uncle of",
            vec![("Ted".into(), "JFK_jr".into()), ("Ted".into(), "Caroline".into())],
        ),
        ganswer::paraphrase::PhraseEntry::new(
            "be married to",
            vec![("Melanie".into(), "Antonio".into()), ("Jackie".into(), "JFK".into())],
        ),
        ganswer::paraphrase::PhraseEntry::new(
            "know",
            vec![("Ted".into(), "Antonio".into()), ("Joseph_Sr".into(), "Antonio".into())],
        ),
    ]);

    // Algorithm 1.
    let dict = mine(&store, &dataset, &MinerConfig::default());
    println!("mined dictionary (Figure 3 format):");
    for (phrase, maps) in dict.iter() {
        for m in maps {
            println!(
                "  {:22} {:48} conf {:.2}  tf-idf {:.2}",
                format!("{phrase:?}"),
                m.path.display(&store).to_string(),
                m.confidence,
                m.tfidf
            );
        }
    }

    // Serialization round trip.
    let text = dict.to_text(&store);
    let reloaded = ParaphraseDict::from_text(&text, &store).expect("parse dictionary");
    println!("\nserialized {} bytes; reloaded {} phrases", text.len(), reloaded.len());

    // Maintenance: a new predicate arrives → re-mine only affected phrases.
    let mut b = StoreBuilder::new();
    b.extend_from(&store);
    b.add_iri("Ted", "knows", "Antonio");
    b.add_iri("Joseph_Sr", "knows", "Antonio");
    let updated = b.build();
    let mut dict2 = ParaphraseDict::from_text(&text, &updated).expect("reload on updated store");
    remine_for_new_predicates(&mut dict2, &updated, &dataset, &["knows"], &MinerConfig::default());
    println!("\nafter adding ⟨knows⟩ and re-mining, \"know\" maps to:");
    if let Some(maps) = dict2.lookup("know") {
        for m in maps.iter().take(2) {
            println!("  {} conf {:.2}", m.path.display(&updated), m.confidence);
        }
    }

    // Maintenance: a predicate is removed → drop its mappings.
    let spouse = updated.expect_iri("spouse");
    drop_removed_predicates(&mut dict2, &[spouse]);
    println!(
        "\nafter removing ⟨spouse⟩: \"be married to\" resolves? {}",
        dict2.lookup("be married to").is_some()
    );
}
