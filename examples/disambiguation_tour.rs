//! A walkthrough of the paper's core idea: ambiguity is kept alive through
//! question understanding and resolved *by the data* during matching.
//!
//! ```text
//! cargo run --release --example disambiguation_tour
//! ```

use ganswer::core::pipeline::{GAnswer, GAnswerConfig};
use ganswer::linker::Linker;
use ganswer::rdf::schema::Schema;

fn main() {
    let store = ganswer::datagen::mini_dbpedia();
    let schema = Schema::new(&store);
    let linker = Linker::new(&store, &schema);
    let system = GAnswer::new(&store, ganswer::mini_dict(&store), GAnswerConfig::default());

    let question = "Who was married to an actor that played in Philadelphia?";
    println!("Q: {question}\n");

    // Stage 1 — the mention "Philadelphia" is ambiguous and STAYS ambiguous.
    println!("entity linking keeps every candidate alive:");
    for c in linker.link("Philadelphia") {
        println!(
            "  {} (confidence {:.2}{})",
            store.term(c.id),
            c.confidence,
            if c.is_class { ", class" } else { "" }
        );
    }

    // …and so does the relation phrase "play in".
    println!("\nparaphrase dictionary keeps every predicate candidate alive:");
    if let Some(maps) = system.dict().lookup("play in") {
        for m in maps {
            println!("  {} (confidence {:.2})", m.path.display(&store), m.confidence);
        }
    }

    // Stage 2 — the subgraph match decides.
    let u = system.understand(question).expect("parse");
    println!("\nsemantic query graph (Definition 2):\n{}", u.sqg);

    let response = system.answer(question);
    println!("top matches (Definition 6 scores):");
    for m in response.matches.iter().take(3) {
        let bound: Vec<String> = m.bindings.iter().map(|&b| store.term(b).to_string()).collect();
        println!("  score {:+.3}: {}", m.score, bound.join(" · "));
    }
    println!("\nanswer: {:?}", response.texts());
    println!(
        "\nThe city ⟨dbr:Philadelphia⟩ and the team ⟨dbr:Philadelphia_76ers⟩ were \
         never explicitly ruled out — no subgraph match uses them, so the \
         disambiguation cost was never paid (the paper's §1.2 point)."
    );
}
